"""Deterministic fault injection for the simulated device.

Production GPU clusters lose kernels to transient launch failures, exchanges
to flaky interconnect links, and allocations to memory pressure.  This module
lets a test (or the CI chaos job) script those failures *deterministically*:
a :class:`FaultPlan` counts matching events per fault site and raises at
chosen occurrence indices, so the same plan over the same program always
fails at exactly the same kernel launch.

Fault sites
-----------

* ``kernel`` — a :meth:`Device.charge` call whose kernel name matches;
  raises :class:`~repro.errors.TransientDeviceError` (retryable).
* ``alloc`` — a :meth:`Device.allocate` call whose label matches; raises
  :class:`~repro.errors.DeviceOutOfMemoryError` *before* any pool state
  changes (an injected allocation failure).
* ``exchange`` — a ``device_to_device`` / ``broadcast_to`` transfer whose
  label matches; raises :class:`~repro.errors.ExchangeError` carrying the
  receiving peer (the sharded evaluator's shard-crash signal).

Plans install per device (``Device(fault_plan=...)``) or process-wide via the
``REPRO_FAULT_PLAN`` environment variable.  Sharing one plan instance across
shard devices gives cluster-global occurrence counting (the single-threaded
evaluator makes the ordering deterministic).

Spec string format (used by the env var and :meth:`FaultPlan.parse`)::

    kind:pattern:at=3          fire on the 3rd matching event
    kind:pattern:at=3,7        fire on the 3rd and 7th
    kind:pattern:every=97      fire on every 97th (capped by times=)
    kind:pattern:every=97:times=2

Multiple specs are separated by ``;``.  ``pattern`` is an ``fnmatch`` glob
over the kernel name / allocation label.  Three names are special: ``none``
(explicitly no faults, overriding the environment), ``ci-default`` (the
chaos-mode plan used by CI: sparse transient faults on join kernels, an
injected allocation failure, and one exchange fault), and ``serving-chaos``
(bounded faults aimed at serving-epoch sites — delta-fixpoint kernels, DRed
rebuilds, shard exchanges — that the serving engine's whole-epoch replay
ladder must absorb).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

import numpy as np

from ..errors import DeviceOutOfMemoryError, ExchangeError, SchemaError, TransientDeviceError

__all__ = [
    "FAULT_PLAN_ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "resolve_fault_plan",
]

#: Environment variable supplying the default fault plan (the CI chaos job
#: exports ``REPRO_FAULT_PLAN=ci-default``, mirroring ``REPRO_BACKEND``).
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

KIND_KERNEL = "kernel"
KIND_ALLOC = "alloc"
KIND_EXCHANGE = "exchange"
_KINDS = (KIND_KERNEL, KIND_ALLOC, KIND_EXCHANGE)

#: The chaos-mode plan CI installs process-wide: sparse retryable faults on
#: join kernels (every label of the join chain contains ``<-``), one injected
#: allocation failure on a relation's ``new`` buffer, and one exchange fault.
#: Sparse on purpose — the default retry budget (3) must absorb it without
#: per-test tuning.
CI_DEFAULT_SPEC = "kernel:*<-*:every=211:times=3;alloc:*.new:at=7;exchange:*:at=3"

#: Chaos plan aimed at the *serving* fault sites: epoch delta-fixpoint joins,
#: DRed retraction rebuilds, and shard exchanges all charge kernels/transfers
#: after the bootstrap horizon these occurrence indices target.  Every spec is
#: ``times``-bounded so a whole-epoch replay (the serving ladder's rung above
#: the evaluator's per-version retries) eventually runs fault-free — the plan
#: exercises rollback, not permanent outage.
SERVING_CHAOS_SPEC = "kernel:*:every=131:times=2;exchange:*:at=4:times=1"


@dataclass
class FaultSpec:
    """One scripted fault: fire on chosen occurrences of matching events."""

    kind: str
    pattern: str = "*"
    #: explicit 1-based occurrence indices that fire
    at: tuple[int, ...] = ()
    #: additionally fire whenever the occurrence count is a multiple of this
    every: int = 0
    #: total firings allowed (None = unlimited); explicit ``at`` indices
    #: default to firing once each
    times: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SchemaError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        self.at = tuple(sorted(int(i) for i in self.at))
        if any(i <= 0 for i in self.at):
            raise SchemaError("fault occurrence indices are 1-based and positive")
        self.every = int(self.every)
        if not self.at and self.every <= 0:
            raise SchemaError(f"fault spec {self.kind}:{self.pattern} never fires (no at= or every=)")
        if self.times is None and not self.every:
            self.times = len(self.at)

    def matches(self, name: str) -> bool:
        return fnmatchcase(name, self.pattern)

    def should_fire(self, occurrence: int, fired: int) -> bool:
        if self.times is not None and fired >= self.times:
            return False
        if occurrence in self.at:
            return True
        return self.every > 0 and occurrence % self.every == 0


@dataclass
class _SpecState:
    spec: FaultSpec
    occurrences: int = 0
    fired: int = 0


class FaultPlan:
    """A deterministic schedule of injected device faults.

    The plan is *stateful*: each spec counts the events matching it, across
    every device the plan is installed on.  Counting (not randomness at fire
    time) is what makes a plan reproducible — :meth:`seeded` derives its
    occurrence indices from a seed once, up front.
    """

    def __init__(self, specs: "list[FaultSpec] | tuple[FaultSpec, ...]" = (), *, name: str = "") -> None:
        self.name = name
        self._states = [_SpecState(spec) for spec in specs]
        #: every fault the plan has raised, as (kind, name, occurrence) —
        #: lets tests assert a scenario actually exercised its fault path
        self.fired_events: list[tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan | None":
        """Parse a spec string (see module docstring); named plans accepted."""
        text = text.strip()
        if not text or text.lower() in {"none", "off", "0"}:
            return None
        if text.lower() == "ci-default":
            plan = cls.parse(CI_DEFAULT_SPEC)
            assert plan is not None
            plan.name = "ci-default"
            return plan
        if text.lower() == "serving-chaos":
            plan = cls.parse(SERVING_CHAOS_SPEC)
            assert plan is not None
            plan.name = "serving-chaos"
            return plan
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) < 3:
                raise SchemaError(
                    f"bad fault spec {chunk!r}; expected kind:pattern:at=N or kind:pattern:every=N"
                )
            kind, pattern = parts[0].strip(), parts[1].strip()
            at: tuple[int, ...] = ()
            every = 0
            times: int | None = None
            for option in parts[2:]:
                key, _, value = option.partition("=")
                key = key.strip()
                try:
                    if key == "at":
                        at = tuple(int(v) for v in value.split(","))
                    elif key == "every":
                        every = int(value)
                    elif key == "times":
                        times = int(value)
                    else:
                        raise SchemaError(f"unknown fault spec option {key!r} in {chunk!r}")
                except ValueError as error:
                    raise SchemaError(f"bad fault spec option {option!r} in {chunk!r}") from error
            specs.append(FaultSpec(kind=kind, pattern=pattern, at=at, every=every, times=times))
        if not specs:
            return None
        return cls(specs, name=text)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        kinds: tuple[str, ...] = (KIND_KERNEL,),
        pattern: str = "*",
        faults: int = 1,
        horizon: int = 500,
    ) -> "FaultPlan":
        """Derive a random-looking but fully reproducible plan from ``seed``.

        Picks ``faults`` distinct occurrence indices in ``[1, horizon]`` for
        each kind; the same seed always yields the same plan.
        """
        rng = np.random.default_rng(int(seed))
        specs = []
        for kind in kinds:
            count = min(int(faults), int(horizon))
            indices = rng.choice(np.arange(1, int(horizon) + 1), size=count, replace=False)
            specs.append(FaultSpec(kind=kind, pattern=pattern, at=tuple(int(i) for i in indices)))
        return cls(specs, name=f"seeded:{seed}")

    # ------------------------------------------------------------------
    # Event hooks (called by Device / DeviceKernels)
    # ------------------------------------------------------------------
    def _check(self, kind: str, name: str) -> "FaultSpec | None":
        for state in self._states:
            if state.spec.kind != kind or not state.spec.matches(name):
                continue
            state.occurrences += 1
            if state.spec.should_fire(state.occurrences, state.fired):
                state.fired += 1
                self.fired_events.append((kind, name, state.occurrences))
                return state.spec
        return None

    def on_kernel(self, kernel: str) -> None:
        """Raise :class:`TransientDeviceError` if a kernel fault is due."""
        if self._check(KIND_KERNEL, kernel) is not None:
            raise TransientDeviceError(
                f"injected transient fault in kernel {kernel!r} (plan {self.name or 'anonymous'!r})",
                kernel=kernel,
            )

    def on_alloc(self, label: str, nbytes: int, pool) -> None:
        """Raise an injected :class:`DeviceOutOfMemoryError` if due."""
        if self._check(KIND_ALLOC, label or "device_malloc") is not None:
            raise DeviceOutOfMemoryError(int(nbytes), pool.in_use_bytes, pool.capacity_bytes)

    def on_exchange(self, label: str, peer) -> None:
        """Raise :class:`ExchangeError` if an exchange fault is due."""
        if self._check(KIND_EXCHANGE, label) is not None:
            raise ExchangeError(
                f"injected exchange fault on transfer {label!r} (plan {self.name or 'anonymous'!r})",
                device=peer,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def specs(self) -> list[FaultSpec]:
        return [state.spec for state in self._states]

    @property
    def fault_count(self) -> int:
        """Total faults the plan has raised so far."""
        return len(self.fired_events)

    def reset(self) -> None:
        """Forget all counters (the plan will replay from the beginning)."""
        for state in self._states:
            state.occurrences = 0
            state.fired = 0
        self.fired_events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(name={self.name!r}, specs={len(self._states)}, fired={self.fault_count})"


def resolve_fault_plan(plan: "FaultPlan | str | None") -> "FaultPlan | None":
    """Resolve a ``fault_plan=`` argument to an installed plan.

    ``None`` defers to ``REPRO_FAULT_PLAN`` (a fresh plan per call, so two
    independently created devices do not share counters unless the caller
    shares an explicit instance); a string is parsed (``"none"`` explicitly
    disables injection even when the environment sets a plan).
    """
    if isinstance(plan, FaultPlan):
        return plan
    if isinstance(plan, str):
        return FaultPlan.parse(plan)
    if plan is None:
        text = os.environ.get(FAULT_PLAN_ENV_VAR, "").strip()
        if text:
            return FaultPlan.parse(text)
        return None
    raise SchemaError(f"fault_plan must be a FaultPlan, spec string, or None; got {plan!r}")
