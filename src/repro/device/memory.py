"""Simulated device memory pool.

The pool tracks every live allocation on the simulated device so that

* experiments can report peak memory footprint (memory columns of Tables 1-3),
* the cuDF-like and GPUJoin-like baselines can hit out-of-memory conditions
  exactly where the paper reports ``OOM`` entries, and
* the eager buffer manager (Section 5.3) has a concrete allocator whose
  latency it amortises.

The pool stores only *sizes*; actual NumPy arrays live in host memory, which
keeps the simulator cheap while preserving the accounting the paper relies on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..errors import DeviceBufferError, DeviceOutOfMemoryError


@dataclass
class Buffer:
    """Handle to one live allocation in a :class:`MemoryPool`."""

    buffer_id: int
    nbytes: int
    label: str = ""
    freed: bool = False


@dataclass
class MemoryStats:
    """Aggregate allocator statistics for one run."""

    capacity_bytes: int
    in_use_bytes: int = 0
    peak_bytes: int = 0
    total_allocated_bytes: int = 0
    allocation_count: int = 0
    free_count: int = 0
    oom_count: int = 0

    @property
    def peak_gib(self) -> float:
        return self.peak_bytes / 1024**3

    @property
    def in_use_gib(self) -> float:
        return self.in_use_bytes / 1024**3


class MemoryPool:
    """Bump-accounting allocator for the simulated device memory."""

    def __init__(self, capacity_bytes: int, *, oom_enabled: bool = True) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._capacity = int(capacity_bytes)
        self._oom_enabled = bool(oom_enabled)
        self._buffers: dict[int, Buffer] = {}
        self._ids = itertools.count(1)
        self._stats = MemoryStats(capacity_bytes=self._capacity)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def oom_enabled(self) -> bool:
        return self._oom_enabled

    @property
    def in_use_bytes(self) -> int:
        return self._stats.in_use_bytes

    @property
    def peak_bytes(self) -> int:
        return self._stats.peak_bytes

    @property
    def free_bytes(self) -> int:
        return self._capacity - self._stats.in_use_bytes

    @property
    def stats(self) -> MemoryStats:
        return self._stats

    def live_buffers(self) -> list[Buffer]:
        """Return every live (not yet freed) buffer."""
        return [buf for buf in self._buffers.values() if not buf.freed]

    # ------------------------------------------------------------------
    # Allocation interface
    # ------------------------------------------------------------------
    def allocate(self, nbytes: int, label: str = "") -> Buffer:
        """Allocate ``nbytes`` of simulated device memory.

        Raises :class:`DeviceOutOfMemoryError` when the request would exceed
        the pool capacity and OOM enforcement is enabled.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self._oom_enabled and self._stats.in_use_bytes + nbytes > self._capacity:
            self._stats.oom_count += 1
            raise DeviceOutOfMemoryError(nbytes, self._stats.in_use_bytes, self._capacity)
        buffer = Buffer(buffer_id=next(self._ids), nbytes=nbytes, label=label)
        self._buffers[buffer.buffer_id] = buffer
        self._stats.in_use_bytes += nbytes
        self._stats.total_allocated_bytes += nbytes
        self._stats.allocation_count += 1
        self._stats.peak_bytes = max(self._stats.peak_bytes, self._stats.in_use_bytes)
        return buffer

    def free(self, buffer: Buffer) -> None:
        """Release ``buffer``; double frees and use-after-free raise
        :class:`DeviceBufferError`."""
        stored = self._buffers.get(buffer.buffer_id)
        if stored is None or stored.freed or buffer.freed:
            raise DeviceBufferError(f"buffer {buffer.buffer_id} is not a live allocation")
        stored.freed = True
        self._stats.in_use_bytes -= stored.nbytes
        self._stats.free_count += 1
        del self._buffers[buffer.buffer_id]

    def resize(self, buffer: Buffer, nbytes: int, label: str | None = None) -> Buffer:
        """Free ``buffer`` and allocate a replacement of ``nbytes``.

        Resizing a stale handle raises :class:`DeviceBufferError` (via
        :meth:`free`) before any allocation happens.
        """
        self.free(buffer)
        return self.allocate(nbytes, label if label is not None else buffer.label)

    def would_fit(self, nbytes: int) -> bool:
        """True if an allocation of ``nbytes`` would currently succeed."""
        if not self._oom_enabled:
            return True
        return self._stats.in_use_bytes + int(nbytes) <= self._capacity

    def reset_peak(self) -> None:
        """Reset the peak-usage watermark to the current usage."""
        self._stats.peak_bytes = self._stats.in_use_bytes
