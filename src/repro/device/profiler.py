"""Phase-aware profiler for the simulated device.

The paper's Figure 6 breaks CSPA runtime into five phases (deduplication,
indexing delta, indexing full, merge delta/full, join).  The profiler collects
per-kernel simulated times, attributes them to the phase active at launch
time, and exposes aggregation helpers used by the experiment drivers and the
figure-regeneration benchmarks.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .cost import LINK_INTERCONNECT, KernelCost

# Canonical phase names used by the engines; free-form names are also allowed.
PHASE_JOIN = "join"
PHASE_DEDUPLICATION = "deduplication"
PHASE_INDEX_DELTA = "indexing_delta"
PHASE_INDEX_FULL = "indexing_full"
PHASE_MERGE = "merge_delta_full"
PHASE_POPULATE_DELTA = "populate_delta"
PHASE_LOAD = "load"
PHASE_OTHER = "other"
#: Host<->device PCIe transfers (the to_host / from_host backend edges).
PHASE_TRANSFER = "host_transfer"
#: Device<->device interconnect transfers (delta routing between shards).
PHASE_SHARD_EXCHANGE = "shard_exchange"
#: Iteration-boundary checkpoint snapshots (full/delta D2H downloads).
PHASE_CHECKPOINT = "checkpoint"
#: Fault-recovery work: retry backoff, checkpoint restores, device rebuilds.
PHASE_RECOVERY = "fault_recovery"
#: Serving retraction epochs: membership probes, compaction and the index
#: rebuilds that apply a DRed deletion to resident relation state.
PHASE_RETRACTION = "retraction"
#: Negative credits for exchange time hidden behind overlapped compute.
PHASE_EXCHANGE_OVERLAP = "exchange_overlap"

FIGURE6_PHASES = (
    PHASE_DEDUPLICATION,
    PHASE_INDEX_DELTA,
    PHASE_INDEX_FULL,
    PHASE_MERGE,
    PHASE_JOIN,
)


def phase_fractions_from_seconds(
    seconds: dict[str, float], phases: tuple[str, ...] = FIGURE6_PHASES
) -> dict[str, float]:
    """Fractions of total time per phase, unlisted phases folded into "other".

    Shared by :meth:`Profiler.phase_fractions` and the sharded-run result
    builder (which aggregates seconds across several profilers first), so
    both report the same convention.
    """
    total = sum(seconds.values())
    if total <= 0:
        return {name: 0.0 for name in phases}
    fractions = {name: seconds.get(name, 0.0) / total for name in phases}
    accounted = sum(seconds.get(name, 0.0) for name in phases)
    fractions[PHASE_OTHER] = (total - accounted) / total
    return fractions


@dataclass(frozen=True)
class ProfileEvent:
    """One recorded kernel launch with its simulated duration.

    ``fixed_seconds`` is the data-independent part (kernel-launch latency and
    allocation latency); the remainder scales with the data volume.  The
    experiment harness uses the split to project scaled-dataset runs back to
    the paper's full-size workloads.
    """

    phase: str
    kernel: str
    seconds: float
    cost: KernelCost
    iteration: int | None = None
    fixed_seconds: float = 0.0

    @property
    def variable_seconds(self) -> float:
        if self.seconds < 0.0:
            # Overlap credits are negative and carry a negative fixed share
            # mirroring the hidden window's fixed/variable mix; the remainder
            # is the variable refund.  Don't clamp — clamping would strand
            # the whole credit in one bucket.
            return self.seconds - self.fixed_seconds
        return max(0.0, self.seconds - self.fixed_seconds)


@dataclass
class PhaseSummary:
    """Aggregated statistics for one phase."""

    phase: str
    seconds: float = 0.0
    launches: int = 0
    sequential_bytes: float = 0.0
    random_bytes: float = 0.0
    ops: float = 0.0
    alloc_bytes: float = 0.0
    allocations: int = 0
    transfer_bytes: float = 0.0

    def add(self, event: ProfileEvent) -> None:
        self.seconds += event.seconds
        self.launches += event.cost.launches
        self.sequential_bytes += event.cost.sequential_bytes
        self.random_bytes += event.cost.random_bytes
        self.ops += event.cost.ops
        self.alloc_bytes += event.cost.alloc_bytes
        self.allocations += event.cost.allocations
        self.transfer_bytes += event.cost.transfer_bytes


class Profiler:
    """Records kernel events grouped by phase and fixpoint iteration."""

    def __init__(self) -> None:
        self._events: list[ProfileEvent] = []
        self._phase_stack: list[str] = []
        self._iteration: int | None = None
        # Overlap-window bookkeeping (double-buffered exchange schedule).
        self._window_depth = 0
        self._window_exchange = 0.0
        self._window_exchange_fixed = 0.0
        self._window_compute = 0.0
        self._pipeline_compute: float | None = None
        self._overlap_hidden = 0.0
        self._overlap_exchange = 0.0

    # ------------------------------------------------------------------
    # Phase / iteration context management
    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else PHASE_OTHER

    @property
    def current_iteration(self) -> int | None:
        return self._iteration

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all kernels launched inside the block to phase ``name``."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    @contextmanager
    def iteration(self, index: int) -> Iterator[None]:
        """Tag kernels launched inside the block with fixpoint iteration ``index``."""
        previous = self._iteration
        self._iteration = index
        try:
            yield
        finally:
            self._iteration = previous

    # ------------------------------------------------------------------
    # Overlap scheduling (double-buffered exchanges)
    # ------------------------------------------------------------------
    def begin_overlap_schedule(self) -> None:
        """Start (or restart) a double-buffered exchange schedule.

        The first window after this call earns no credit — the pipeline has
        no in-flight predecessor to hide behind.  The sharded evaluator calls
        this at fixpoint entry and again after every fault rollback, since a
        restore drains whatever transfer was in flight.
        """
        self._pipeline_compute = None
        self._window_exchange = 0.0
        self._window_exchange_fixed = 0.0
        self._window_compute = 0.0

    @contextmanager
    def overlap_window(self) -> Iterator[None]:
        """One overlapped window (one fixpoint iteration on this device).

        While the window is open, ``record`` splits event seconds into an
        exchange bucket (``shard_exchange`` phase) and a compute bucket
        (everything else except checkpoint/recovery, which a real runtime
        cannot overlap with an in-flight transfer).  On close, the window's
        exchange time is charged as ``max(compute, transfer)`` instead of
        their sum: the part of this window's exchange that fits under the
        *previous* window's compute — the delta shipped for iteration i+1
        while iteration i's join runs — is refunded as a negative-seconds
        event in the :data:`PHASE_EXCHANGE_OVERLAP` phase.
        """
        self._window_depth += 1
        if self._window_depth == 1:
            self._window_exchange = 0.0
            self._window_exchange_fixed = 0.0
            self._window_compute = 0.0
        try:
            yield
        finally:
            self._window_depth -= 1
            if self._window_depth == 0:
                exchange = self._window_exchange
                exchange_fixed = self._window_exchange_fixed
                compute = self._window_compute
                self._overlap_exchange += exchange
                if self._pipeline_compute is not None:
                    hidden = min(exchange, self._pipeline_compute)
                    if hidden > 0.0:
                        self._overlap_hidden += hidden
                        # Refund fixed and variable time in the same ratio the
                        # window's exchange accrued them, so the fixed/variable
                        # split used for full-size projection stays meaningful.
                        hidden_fixed = (
                            hidden * (exchange_fixed / exchange) if exchange > 0.0 else 0.0
                        )
                        self._events.append(
                            ProfileEvent(
                                phase=PHASE_EXCHANGE_OVERLAP,
                                kernel="exchange_overlap_credit",
                                seconds=-hidden,
                                cost=KernelCost(
                                    kernel="exchange_overlap_credit", launches=0
                                ),
                                iteration=self._iteration,
                                fixed_seconds=-hidden_fixed,
                            )
                        )
                self._pipeline_compute = compute

    @property
    def overlap_hidden_seconds(self) -> float:
        """Exchange seconds refunded because they fit under overlapped compute."""
        return self._overlap_hidden

    @property
    def overlap_window_exchange_seconds(self) -> float:
        """Exchange seconds that occurred inside overlap windows."""
        return self._overlap_exchange

    # ------------------------------------------------------------------
    # Recording and aggregation
    # ------------------------------------------------------------------
    def record(
        self,
        cost: KernelCost,
        seconds: float,
        phase: str | None = None,
        fixed_seconds: float = 0.0,
    ) -> ProfileEvent:
        """Record one kernel launch; returns the stored event.

        An active checkpoint/recovery phase dominates the caller's explicit
        phase tag: the D2H/H2D transfers a snapshot or restore performs must
        be attributed to fault-tolerance overhead (what the robustness
        benchmark gates on), not folded into ordinary host-transfer time.
        """
        stack_top = self._phase_stack[-1] if self._phase_stack else None
        if stack_top in (PHASE_CHECKPOINT, PHASE_RECOVERY):
            phase = stack_top
        event = ProfileEvent(
            phase=phase or self.current_phase,
            kernel=cost.kernel,
            seconds=float(seconds),
            cost=cost,
            iteration=self._iteration,
            fixed_seconds=float(fixed_seconds),
        )
        self._events.append(event)
        if self._window_depth > 0 and event.seconds > 0.0:
            if event.phase == PHASE_SHARD_EXCHANGE:
                self._window_exchange += event.seconds
                self._window_exchange_fixed += min(event.fixed_seconds, event.seconds)
            elif event.phase not in (PHASE_CHECKPOINT, PHASE_RECOVERY):
                self._window_compute += event.seconds
        return event

    @property
    def events(self) -> list[ProfileEvent]:
        return list(self._events)

    @property
    def total_seconds(self) -> float:
        return sum(event.seconds for event in self._events)

    @property
    def fixed_seconds(self) -> float:
        """Total data-independent overhead (launch + allocation latency)."""
        return sum(event.fixed_seconds for event in self._events)

    @property
    def variable_seconds(self) -> float:
        """Total data-proportional time (bandwidth, compute, first touch)."""
        return sum(event.variable_seconds for event in self._events)

    @property
    def transfer_bytes(self) -> float:
        """Total bytes moved across any device boundary (PCIe + interconnect)."""
        return sum(event.cost.transfer_bytes for event in self._events)

    @property
    def interconnect_bytes(self) -> float:
        """Bytes moved across the device<->device interconnect (shard exchange).

        Counted on the *sending* device only, so summing this over every
        shard's profiler yields the total exchange volume without double
        counting.
        """
        return sum(
            event.cost.transfer_bytes
            for event in self._events
            if event.cost.transfer_link == LINK_INTERCONNECT
        )

    @property
    def interconnect_recv_bytes(self) -> float:
        """Bytes this device *received* over the interconnect.

        The mirror of :attr:`interconnect_bytes`: summed over all shards the
        two totals match, but per shard they differ and their spread is the
        exchange skew surfaced on ``EvaluationResult``.
        """
        return sum(event.cost.recv_bytes for event in self._events)

    def phase_summaries(self) -> dict[str, PhaseSummary]:
        """Aggregate recorded events by phase."""
        summaries: dict[str, PhaseSummary] = {}
        for event in self._events:
            summary = summaries.setdefault(event.phase, PhaseSummary(phase=event.phase))
            summary.add(event)
        return summaries

    def phase_seconds(self) -> dict[str, float]:
        """Simulated seconds per phase."""
        return {name: summary.seconds for name, summary in self.phase_summaries().items()}

    def phase_fractions(self, phases: tuple[str, ...] = FIGURE6_PHASES) -> dict[str, float]:
        """Fraction of total runtime spent in each of ``phases``.

        Phases not listed are folded into ``"other"``; fractions sum to 1.0
        when any time has been recorded at all.
        """
        return phase_fractions_from_seconds(self.phase_seconds(), phases)

    def iteration_seconds(self) -> dict[int, float]:
        """Simulated seconds per fixpoint iteration (untagged events excluded)."""
        seconds: dict[int, float] = defaultdict(float)
        for event in self._events:
            if event.iteration is not None:
                seconds[event.iteration] += event.seconds
        return dict(seconds)

    def kernel_seconds(self) -> dict[str, float]:
        """Simulated seconds per kernel name."""
        seconds: dict[str, float] = defaultdict(float)
        for event in self._events:
            seconds[event.kernel] += event.seconds
        return dict(seconds)

    def reset(self) -> None:
        """Discard all recorded events (phase/iteration context is kept)."""
        self._events.clear()
        self._window_exchange = 0.0
        self._window_compute = 0.0
        self._pipeline_compute = None
        self._overlap_hidden = 0.0
        self._overlap_exchange = 0.0

    def merge_from(self, other: "Profiler") -> None:
        """Append every event recorded by ``other`` into this profiler."""
        self._events.extend(other._events)
        self._overlap_hidden += other._overlap_hidden
        self._overlap_exchange += other._overlap_exchange
