"""Hardware specifications for the simulated SIMT devices.

The paper evaluates GPUlog on NVIDIA H100/A100 and AMD MI250/MI50 data-center
GPUs and compares against CPU engines on AMD EPYC (Milan / Zen 3) hosts.  We
cannot run CUDA here, so every experiment runs on a *device simulator* whose
performance model is parameterised by a :class:`DeviceSpec`.

The model deliberately captures only the two levers the paper identifies as
decisive for Datalog workloads:

* **memory bandwidth** — the paper attributes the 35-45x CSPA speedup to HBM
  bandwidth (3.35 TB/s on H100 vs 0.19 TB/s on EPYC Milan);
* **SIMT occupancy / divergence** — the motivation for temporarily
  materialized n-way joins (Section 5.2).

Compute throughput, kernel-launch latency and allocation latency are also
modelled because they shape the eager-buffer-management results (Table 1) and
the tail-iteration behaviour of REACH.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

GIB = 1024**3
GB = 10**9


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a (simulated) execution device.

    Attributes
    ----------
    name:
        Human readable device name, e.g. ``"NVIDIA H100"``.
    kind:
        Either ``"gpu"`` or ``"cpu"``; used by engines to select cost models
        and by the SIMT model to pick the lane width.
    sm_count:
        Number of streaming multiprocessors (GPUs) or physical cores (CPUs)
        available to a single-device run.  The MI250 preset already halves
        its compute units because GPUlog is a single-GPU system and can only
        drive one of the two chiplets (Section 6.6).
    cores_per_sm:
        FP32 cores per SM (GPUs) or SIMD lanes per core (CPUs).
    clock_ghz:
        Sustained clock in GHz.
    memory_bandwidth_gbps:
        Peak memory bandwidth in GB/s (HBM for GPUs, DDR for CPUs).
    memory_capacity_bytes:
        VRAM (GPU) or RAM (CPU) capacity in bytes.  Experiments scale this
        down by the dataset scale factor so that OOM behaviour matches the
        paper despite the smaller synthetic inputs.
    warp_size:
        SIMT execution width; threads in a warp finish only when the slowest
        lane finishes, which is what the divergence model charges for.
    kernel_launch_us:
        Fixed per-kernel launch (GPU) or parallel-region fork/join (CPU)
        latency in microseconds.
    alloc_latency_us:
        Fixed latency of a device memory allocation (``cudaMalloc`` is ~100x
        more expensive than ``malloc``); the eager buffer manager exists to
        amortise exactly this cost plus the first-touch cost below.
    alloc_bandwidth_gbps:
        Bandwidth at which freshly allocated buffers are initialised /
        first-touched.
    pcie_bandwidth_gbps:
        Host<->device transfer bandwidth (the PCIe edge charged by the
        ``to_host`` / ``from_host`` kernels).  ``None`` selects an effective
        PCIe 4.0 x16 link for GPUs and streaming memory bandwidth for CPUs
        (a CPU "transfer" is just a memcpy).
    interconnect_bandwidth_gbps:
        Device<->device transfer bandwidth (the NVLink/xGMI edge charged by
        the ``device_to_device`` kernel of sharded evaluation).  ``None``
        selects an NVLink-class default for GPUs (~300 GB/s effective) and
        streaming memory bandwidth for CPUs (two CPU "devices" exchange
        through shared memory).
    sequential_efficiency:
        Fraction of peak bandwidth achieved by coalesced / streaming access.
    random_efficiency:
        Fraction of peak bandwidth achieved by random (hash-probe) access.
    compute_efficiency:
        Fraction of peak FLOP/integer throughput achievable by the irregular
        relational kernels in this workload.
    launch_threads:
        Number of hardware threads a kernel launch can keep resident; used
        for the stride-iteration model of Section 5.1.
    notes:
        Free-form provenance notes.
    """

    name: str
    kind: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    memory_bandwidth_gbps: float
    memory_capacity_bytes: int
    warp_size: int = 32
    kernel_launch_us: float = 5.0
    alloc_latency_us: float = 100.0
    alloc_bandwidth_gbps: float | None = None
    pcie_bandwidth_gbps: float | None = None
    interconnect_bandwidth_gbps: float | None = None
    sequential_efficiency: float = 0.75
    random_efficiency: float = 0.12
    compute_efficiency: float = 0.35
    launch_threads: int | None = None
    notes: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ValueError(f"device kind must be 'gpu' or 'cpu', got {self.kind!r}")
        if self.sm_count <= 0 or self.cores_per_sm <= 0:
            raise ValueError("sm_count and cores_per_sm must be positive")
        if self.memory_bandwidth_gbps <= 0:
            raise ValueError("memory_bandwidth_gbps must be positive")
        if self.memory_capacity_bytes <= 0:
            raise ValueError("memory_capacity_bytes must be positive")
        if not 0 < self.sequential_efficiency <= 1:
            raise ValueError("sequential_efficiency must be in (0, 1]")
        if not 0 < self.random_efficiency <= 1:
            raise ValueError("random_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Total parallel lanes (SMs x cores per SM)."""
        return self.sm_count * self.cores_per_sm

    @property
    def peak_ops_per_second(self) -> float:
        """Peak simple-integer-operation throughput in ops/s."""
        return self.total_cores * self.clock_ghz * 1e9

    @property
    def effective_ops_per_second(self) -> float:
        """Sustained throughput for the irregular kernels in this workload."""
        return self.peak_ops_per_second * self.compute_efficiency

    @property
    def sequential_bandwidth_bytes(self) -> float:
        """Achievable streaming bandwidth in bytes/s."""
        return self.memory_bandwidth_gbps * GB * self.sequential_efficiency

    @property
    def random_bandwidth_bytes(self) -> float:
        """Achievable random-access bandwidth in bytes/s."""
        return self.memory_bandwidth_gbps * GB * self.random_efficiency

    @property
    def allocation_bandwidth_bytes(self) -> float:
        """Bandwidth used when initialising freshly allocated buffers."""
        gbps = self.alloc_bandwidth_gbps
        if gbps is None:
            gbps = self.memory_bandwidth_gbps * 0.5
        return gbps * GB

    @property
    def pcie_bandwidth_bytes(self) -> float:
        """Host<->device transfer bandwidth in bytes/s (the PCIe edge).

        GPUs default to an effective PCIe 4.0 x16 link (~25 GB/s); a CPU
        "device" crosses no bus — its transfers are host memcpys, charged at
        streaming memory bandwidth.
        """
        if self.pcie_bandwidth_gbps is not None:
            return self.pcie_bandwidth_gbps * GB
        if self.kind == "cpu":
            return self.sequential_bandwidth_bytes
        return 25.0 * GB

    @property
    def interconnect_bandwidth_bytes(self) -> float:
        """Device<->device transfer bandwidth in bytes/s (the NVLink edge).

        GPUs default to an NVLink-class link (~300 GB/s effective per
        direction — an order of magnitude above PCIe, an order below HBM);
        CPU "devices" exchange through shared memory, charged at streaming
        memory bandwidth.
        """
        if self.interconnect_bandwidth_gbps is not None:
            return self.interconnect_bandwidth_gbps * GB
        if self.kind == "cpu":
            return self.sequential_bandwidth_bytes
        return 300.0 * GB

    @property
    def resident_threads(self) -> int:
        """Threads a single kernel launch keeps resident (stride width)."""
        if self.launch_threads is not None:
            return self.launch_threads
        # The paper recommends a stride of 32x the number of stream processors.
        return self.sm_count * self.warp_size * 32

    def with_memory_capacity(self, capacity_bytes: int) -> "DeviceSpec":
        """Return a copy of this spec with a different memory capacity.

        Experiments use this to scale VRAM by the dataset scale factor.
        """
        return replace(self, memory_capacity_bytes=int(capacity_bytes))

    def scaled(self, scale: float) -> "DeviceSpec":
        """Return a copy with memory capacity divided by ``scale``."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return self.with_memory_capacity(max(1, int(self.memory_capacity_bytes / scale)))


# ----------------------------------------------------------------------
# Presets used throughout the paper's evaluation (Section 6.1 and 6.6)
# ----------------------------------------------------------------------

NVIDIA_H100 = DeviceSpec(
    name="NVIDIA H100 80GB",
    kind="gpu",
    sm_count=114,
    cores_per_sm=128,
    clock_ghz=1.76,
    memory_bandwidth_gbps=3350.0,
    memory_capacity_bytes=80 * GIB,
    kernel_launch_us=5.0,
    alloc_latency_us=120.0,
    pcie_bandwidth_gbps=50.0,
    interconnect_bandwidth_gbps=450.0,
    sequential_efficiency=0.78,
    random_efficiency=0.14,
    compute_efficiency=0.35,
    notes=(
        "Primary evaluation GPU; HBM3, 3.35 TB/s (Section 6.5); PCIe 5.0 host link; "
        "NVLink 4 peer link (900 GB/s bidirectional, 450 GB/s per direction)."
    ),
)

NVIDIA_A100 = DeviceSpec(
    name="NVIDIA A100 80GB",
    kind="gpu",
    sm_count=108,
    cores_per_sm=64,
    clock_ghz=1.41,
    memory_bandwidth_gbps=1555.0,
    memory_capacity_bytes=80 * GIB,
    kernel_launch_us=5.0,
    alloc_latency_us=120.0,
    interconnect_bandwidth_gbps=300.0,
    sequential_efficiency=0.75,
    random_efficiency=0.13,
    compute_efficiency=0.35,
    notes=(
        "Secondary NVIDIA GPU; ~1.5 TB/s HBM2e (Table 5, Table 6, Figure 6); "
        "NVLink 3 peer link (600 GB/s bidirectional, 300 GB/s per direction)."
    ),
)

AMD_MI250 = DeviceSpec(
    name="AMD Instinct MI250 (single chiplet)",
    kind="gpu",
    sm_count=52,
    cores_per_sm=64,
    clock_ghz=1.70,
    memory_bandwidth_gbps=1638.0,
    memory_capacity_bytes=64 * GIB,
    kernel_launch_us=8.0,
    alloc_latency_us=400.0,
    interconnect_bandwidth_gbps=200.0,
    sequential_efficiency=0.42,
    random_efficiency=0.07,
    compute_efficiency=0.25,
    notes=(
        "Dual-chiplet card; GPUlog is single-GPU so only one chiplet (52 of 104 CUs, "
        "half the bandwidth/VRAM) is usable.  ROCm lacks RMM so allocation relies on a "
        "manual pool, modelled as higher allocation latency and lower efficiency (Section 6.6)."
    ),
)

AMD_MI50 = DeviceSpec(
    name="AMD Instinct MI50 32GB",
    kind="gpu",
    sm_count=60,
    cores_per_sm=64,
    clock_ghz=1.53,
    memory_bandwidth_gbps=1024.0,
    memory_capacity_bytes=32 * GIB,
    kernel_launch_us=10.0,
    alloc_latency_us=400.0,
    interconnect_bandwidth_gbps=100.0,
    sequential_efficiency=0.30,
    random_efficiency=0.05,
    compute_efficiency=0.18,
    notes="Half the capacity and roughly half the observed throughput of the MI250 (Table 5).",
)

AMD_EPYC_7543P = DeviceSpec(
    name="AMD EPYC 7543P (32-core Zen 3)",
    kind="cpu",
    sm_count=32,
    cores_per_sm=8,
    clock_ghz=2.8,
    memory_bandwidth_gbps=190.0,
    memory_capacity_bytes=512 * GIB,
    warp_size=8,
    kernel_launch_us=15.0,
    alloc_latency_us=4.0,
    sequential_efficiency=0.65,
    random_efficiency=0.08,
    compute_efficiency=0.30,
    notes="Soufflé baseline host (Section 6.1) and CPU side of Table 6.",
)

AMD_EPYC_7713 = DeviceSpec(
    name="AMD EPYC 7713 (64-core Milan)",
    kind="cpu",
    sm_count=64,
    cores_per_sm=8,
    clock_ghz=2.45,
    memory_bandwidth_gbps=204.0,
    memory_capacity_bytes=512 * GIB,
    warp_size=8,
    kernel_launch_us=15.0,
    alloc_latency_us=4.0,
    sequential_efficiency=0.65,
    random_efficiency=0.08,
    compute_efficiency=0.30,
    notes="CUDA server host CPU (Section 6.1).",
)

INTEL_XEON_6338 = DeviceSpec(
    name="Intel Xeon Gold 6338 (32-core Ice Lake)",
    kind="cpu",
    sm_count=32,
    cores_per_sm=8,
    clock_ghz=2.6,
    memory_bandwidth_gbps=170.0,
    memory_capacity_bytes=512 * GIB,
    warp_size=8,
    kernel_launch_us=15.0,
    alloc_latency_us=4.0,
    sequential_efficiency=0.65,
    random_efficiency=0.08,
    compute_efficiency=0.30,
    notes="Host CPU of the A100 testbed (Section 6.1).",
)


_PRESETS: dict[str, DeviceSpec] = {
    "h100": NVIDIA_H100,
    "a100": NVIDIA_A100,
    "mi250": AMD_MI250,
    "mi50": AMD_MI50,
    "epyc-7543p": AMD_EPYC_7543P,
    "epyc-7713": AMD_EPYC_7713,
    "xeon-6338": INTEL_XEON_6338,
}


def device_preset(name: str) -> DeviceSpec:
    """Return a preset :class:`DeviceSpec` by short name.

    Accepted names (case insensitive): ``h100``, ``a100``, ``mi250``, ``mi50``,
    ``epyc-7543p``, ``epyc-7713``, ``xeon-6338``.
    """
    key = name.strip().lower()
    if key not in _PRESETS:
        known = ", ".join(sorted(_PRESETS))
        raise KeyError(f"unknown device preset {name!r}; known presets: {known}")
    return _PRESETS[key]


def list_device_presets() -> list[str]:
    """Return the short names of all built-in device presets."""
    return sorted(_PRESETS)
