"""SIMT execution model helpers: warp divergence and stride iteration.

Section 5.2 of the paper motivates temporarily materialized n-way joins with
warp divergence: when one lane of a warp finds many matches and its neighbours
find none, the idle lanes wait for the busy one.  We model this exactly as the
hardware does — a warp's execution time is the *maximum* lane time within the
warp — and express it as a multiplicative divergence factor applied to the
kernel's scalar-operation count.
"""

from __future__ import annotations

import numpy as np


def warp_divergence_factor(work_per_item: np.ndarray, warp_size: int) -> float:
    """Return the SIMT divergence factor for a kernel with per-lane work.

    ``work_per_item[i]`` is the number of scalar operations lane ``i`` must
    execute (for a join kernel: the number of inner matches for outer tuple
    ``i``).  Lanes are assigned to warps in launch order, exactly as the
    stride-based iteration of Section 5.1 does.  The factor is::

        sum over warps of (warp_size * max lane work in warp)
        ----------------------------------------------------
                      sum of all lane work

    i.e. the ratio between the work the hardware actually charges (every lane
    occupies a slot until the slowest lane finishes) and the useful work.  A
    perfectly balanced kernel has factor 1.0; the factor grows with skew.
    """
    if warp_size <= 0:
        raise ValueError("warp_size must be positive")
    work = np.asarray(work_per_item, dtype=np.float64).ravel()
    if work.size == 0:
        return 1.0
    total = float(work.sum())
    if total <= 0:
        return 1.0
    pad = (-work.size) % warp_size
    if pad:
        work = np.concatenate([work, np.zeros(pad, dtype=np.float64)])
    per_warp_max = work.reshape(-1, warp_size).max(axis=1)
    charged = float(per_warp_max.sum() * warp_size)
    return max(1.0, charged / total)


def warp_occupancy(work_per_item: np.ndarray, warp_size: int) -> float:
    """Fraction of warp-lane slots doing useful work (inverse of divergence)."""
    factor = warp_divergence_factor(work_per_item, warp_size)
    return 1.0 / factor


def stride_count(n_items: int, resident_threads: int) -> int:
    """Number of strides needed to cover ``n_items`` with ``resident_threads``.

    Section 5.1: the outer relation's data array is accessed in stride units
    whose size equals the number of resident threads; each thread handles the
    tuple at its offset within the stride.
    """
    if resident_threads <= 0:
        raise ValueError("resident_threads must be positive")
    if n_items <= 0:
        return 0
    return (n_items + resident_threads - 1) // resident_threads


def stride_slices(n_items: int, resident_threads: int) -> list[slice]:
    """Return the slice covered by each stride, in launch order."""
    slices = []
    for start in range(0, max(0, n_items), max(1, resident_threads)):
        slices.append(slice(start, min(n_items, start + resident_threads)))
    return slices
