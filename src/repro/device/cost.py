"""Analytic cost model for simulated device kernels.

Every kernel executed by :class:`repro.device.kernels.DeviceKernels` produces a
:class:`KernelCost` describing the work it performed (bytes moved with a given
access pattern, scalar operations executed, divergence factor).  The
:class:`CostModel` converts that work description into simulated seconds for a
specific :class:`~repro.device.spec.DeviceSpec` using a roofline-style model:

``time = launch + max(memory_time, compute_time)``

where memory time separates sequential (coalesced) from random (hash-probe)
traffic and compute time is inflated by the SIMT divergence factor.  This is
deliberately simple: the paper's performance story is a bandwidth story, and
the model keeps that story front and centre while remaining auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import DeviceSpec

#: Host<->device transfer link (the default for ``KernelCost.transfer_bytes``).
LINK_PCIE = "pcie"
#: Device<->device transfer link (NVLink-class, used by shard exchanges).
LINK_INTERCONNECT = "interconnect"


@dataclass(frozen=True)
class KernelCost:
    """Work performed by one kernel launch.

    Attributes
    ----------
    kernel:
        Kernel name, e.g. ``"stable_sort_pass"`` or ``"hash_probe"``.
    sequential_bytes:
        Bytes moved with coalesced/streaming access.
    random_bytes:
        Bytes moved with data-dependent (random) access.
    ops:
        Scalar operations executed across all threads.
    divergence:
        SIMT divergence factor >= 1.  A value of 2.0 means warps spend twice
        the lane-work because the slowest lane dominates (Section 5.2).
    launches:
        Number of kernel launches this cost represents (bulk primitives such
        as a multi-pass radix sort may bundle several).
    alloc_bytes:
        Bytes of fresh device memory allocated (and first-touched) as part of
        this kernel; charged at allocation latency + allocation bandwidth.
    allocations:
        Number of discrete allocations performed.
    transfer_bytes:
        Bytes crossing a device boundary, charged at the link's transfer
        bandwidth *in addition to* the kernel body — a DMA copy does not
        overlap the kernels this simulator serialises.  Only the
        ``to_host`` / ``from_host`` kernels of the array-backend layer and
        the ``device_to_device`` kernel of sharded evaluation produce this;
        everything else stays on device.
    transfer_link:
        Which link ``transfer_bytes`` crosses: ``"pcie"`` (host<->device,
        the default) or ``"interconnect"`` (device<->device, the
        NVLink-class shard-exchange edge).
    recv_bytes:
        Bytes received over the interconnect by *this* device.  The link
        time is charged on the sender (``transfer_bytes``); the receiver's
        payload write is already part of its ``sequential_bytes``, so this
        field adds no simulated time — it exists so per-shard ingress can
        be accounted independently of egress (exchange-skew reporting).
    """

    kernel: str
    sequential_bytes: float = 0.0
    random_bytes: float = 0.0
    ops: float = 0.0
    divergence: float = 1.0
    launches: int = 1
    alloc_bytes: float = 0.0
    allocations: int = 0
    transfer_bytes: float = 0.0
    transfer_link: str = LINK_PCIE
    recv_bytes: float = 0.0

    def combined_with(self, other: "KernelCost", kernel: str | None = None) -> "KernelCost":
        """Return a cost representing this kernel followed by ``other``.

        Transfers over *different* links cannot be folded into one cost
        record (each link has its own bandwidth), so mixing them raises.
        """
        if self.transfer_bytes and other.transfer_bytes and self.transfer_link != other.transfer_link:
            raise ValueError(
                f"cannot combine transfers over different links "
                f"({self.transfer_link!r} vs {other.transfer_link!r})"
            )
        return KernelCost(
            kernel=kernel or self.kernel,
            sequential_bytes=self.sequential_bytes + other.sequential_bytes,
            random_bytes=self.random_bytes + other.random_bytes,
            ops=self.ops + other.ops,
            divergence=max(self.divergence, other.divergence),
            launches=self.launches + other.launches,
            alloc_bytes=self.alloc_bytes + other.alloc_bytes,
            allocations=self.allocations + other.allocations,
            transfer_bytes=self.transfer_bytes + other.transfer_bytes,
            transfer_link=self.transfer_link if self.transfer_bytes else other.transfer_link,
            recv_bytes=self.recv_bytes + other.recv_bytes,
        )


@dataclass
class CostModel:
    """Converts :class:`KernelCost` records into simulated seconds."""

    spec: DeviceSpec

    def memory_seconds(self, cost: KernelCost) -> float:
        """Seconds spent moving data for ``cost`` on this device."""
        seconds = 0.0
        if cost.sequential_bytes:
            seconds += cost.sequential_bytes / self.spec.sequential_bandwidth_bytes
        if cost.random_bytes:
            seconds += cost.random_bytes / self.spec.random_bandwidth_bytes
        return seconds

    def compute_seconds(self, cost: KernelCost) -> float:
        """Seconds spent executing scalar operations, including divergence."""
        if not cost.ops:
            return 0.0
        effective_ops = cost.ops * max(1.0, cost.divergence)
        return effective_ops / self.spec.effective_ops_per_second

    def allocation_seconds(self, cost: KernelCost) -> float:
        """Seconds spent allocating and first-touching fresh buffers."""
        seconds = cost.allocations * self.spec.alloc_latency_us * 1e-6
        if cost.alloc_bytes:
            seconds += cost.alloc_bytes / self.spec.allocation_bandwidth_bytes
        return seconds

    def launch_seconds(self, cost: KernelCost) -> float:
        """Fixed launch overhead for the kernel launches in ``cost``."""
        return cost.launches * self.spec.kernel_launch_us * 1e-6

    def transfer_seconds(self, cost: KernelCost) -> float:
        """Seconds spent moving data across a device boundary.

        ``transfer_link`` selects the charged edge: host<->device transfers
        cross PCIe, shard exchanges cross the NVLink-class interconnect.
        """
        if not cost.transfer_bytes:
            return 0.0
        if cost.transfer_link == LINK_INTERCONNECT:
            return cost.transfer_bytes / self.spec.interconnect_bandwidth_bytes
        return cost.transfer_bytes / self.spec.pcie_bandwidth_bytes

    def seconds(self, cost: KernelCost) -> float:
        """Total simulated seconds for ``cost`` (roofline of memory/compute)."""
        body = max(self.memory_seconds(cost), self.compute_seconds(cost))
        return (
            self.launch_seconds(cost)
            + body
            + self.allocation_seconds(cost)
            + self.transfer_seconds(cost)
        )
