"""The simulated execution device: spec + cost model + memory pool + profiler.

A :class:`Device` is the single object the rest of the library talks to when
it wants to "run on the GPU" (or on a CPU for the baseline engines).  It owns

* a :class:`~repro.device.spec.DeviceSpec` (the hardware description),
* a :class:`~repro.device.cost.CostModel` converting kernel work into seconds,
* a :class:`~repro.device.memory.MemoryPool` enforcing the VRAM capacity, and
* a :class:`~repro.device.profiler.Profiler` accumulating the phase breakdown.

Simulated time only advances through :meth:`Device.charge`, so every second of
every experiment is attributable to a specific kernel in a specific phase.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

from ..backend import ArrayBackend, BackendLike, get_backend
from .cost import CostModel, KernelCost
from .faults import FaultPlan, resolve_fault_plan
from .kernels import DeviceKernels
from .memory import Buffer, MemoryPool, MemoryStats
from .profiler import Profiler
from .spec import DeviceSpec, device_preset


@dataclass(frozen=True)
class DeviceSnapshot:
    """Summary of a device's state after a run (used in experiment reports)."""

    spec_name: str
    elapsed_seconds: float
    peak_memory_bytes: int
    in_use_bytes: int
    allocation_count: int
    oom_count: int


class Device:
    """A simulated SIMT (or multicore CPU) execution device."""

    def __init__(
        self,
        spec: DeviceSpec | str,
        *,
        memory_capacity_bytes: int | None = None,
        oom_enabled: bool = True,
        profiler: Profiler | None = None,
        backend: BackendLike = None,
        fault_plan: "FaultPlan | str | None" = None,
    ) -> None:
        if isinstance(spec, str):
            spec = device_preset(spec)
        self.spec = spec
        self.cost_model = CostModel(spec)
        self.profiler = profiler if profiler is not None else Profiler()
        capacity = memory_capacity_bytes if memory_capacity_bytes is not None else spec.memory_capacity_bytes
        self.pool = MemoryPool(capacity, oom_enabled=oom_enabled)
        #: the array backend every kernel and relational structure of this
        #: device runs on (name, instance, or the ``REPRO_BACKEND`` default)
        self.backend: ArrayBackend = get_backend(backend)
        self.kernels = DeviceKernels(self)
        #: deterministic fault-injection schedule; ``None`` defers to the
        #: ``REPRO_FAULT_PLAN`` environment variable, ``"none"`` disables
        #: injection outright (see :mod:`repro.device.faults`)
        self.fault_plan: FaultPlan | None = resolve_fault_plan(fault_plan)
        #: active kernel-fusion scope (see :meth:`fused`); ``None`` outside
        self._fusion: "list[object] | None" = None

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------
    def charge(self, cost: KernelCost, phase: str | None = None) -> float:
        """Convert ``cost`` into simulated seconds and record it.

        Returns the simulated duration so bespoke kernels can report it.
        """
        if self.fault_plan is not None:
            # An injected fault models a launch that never executed: it is
            # checked before any time is recorded, so the retrying caller's
            # re-execution charges the extra pass, not the failed one.
            self.fault_plan.on_kernel(cost.kernel)
        if self._fusion is not None:
            # Inside a fusion scope: fold this stage's work into the pending
            # fused launch instead of recording it.  The fault check above
            # still ran per stage, so injection schedules keyed on stage
            # names see the same occurrence counts as the unfused pipeline.
            label, launches, accumulated, saved_phase = self._fusion
            combined = cost if accumulated is None else accumulated.combined_with(cost)
            self._fusion = [label, launches, combined, phase if phase is not None else saved_phase]
            return self.cost_model.seconds(cost)
        seconds = self.cost_model.seconds(cost)
        fixed = self.cost_model.launch_seconds(cost) + cost.allocations * self.spec.alloc_latency_us * 1e-6
        self.profiler.record(cost, seconds, phase=phase, fixed_seconds=min(seconds, fixed))
        return seconds

    @contextmanager
    def fused(self, label: str, *, launches: int = 1) -> Iterator[None]:
        """Fuse every charge inside the scope into one kernel launch.

        Models operator fusion: the probe pipeline (gather keys, hash,
        probe, verify, expand matches, guard) is a chain of elementwise
        stages a real engine compiles into a single kernel, so the chain
        should pay one launch latency, not one per stage.  Bytes, ops and
        allocations of the stages are summed (memory traffic and
        ``cudaMalloc`` calls do not fuse away); divergence takes the worst
        stage; the launch count is pinned to ``launches``.

        Nested scopes flatten into the outermost one.  Fault injection is
        unaffected: each stage's fault check still fires under its own
        kernel name before any time is folded in, and an injected fault
        aborts the whole fused launch with nothing recorded.
        """
        if self._fusion is not None:
            # Already fusing: the inner scope is part of the outer kernel.
            yield
            return
        self._fusion = [label, launches, None, None]
        try:
            yield
        except BaseException:
            self._fusion = None
            raise
        label, launches, accumulated, phase = self._fusion
        self._fusion = None
        if accumulated is not None:
            self.charge(replace(accumulated, kernel=label, launches=launches), phase=phase)

    @property
    def elapsed_seconds(self) -> float:
        """Total simulated time charged to this device so far."""
        return self.profiler.total_seconds

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def allocate(self, nbytes: int, label: str = "", *, charge_cost: bool = True) -> Buffer:
        """Allocate simulated device memory, charging allocation latency.

        The charge mirrors ``cudaMalloc`` + first touch; the eager buffer
        manager exists precisely to avoid paying it every iteration.
        """
        if self.fault_plan is not None:
            # Injected allocation failures fire before any pool state
            # changes, so a caller that degrades (smaller chunks) or retries
            # sees the same pool it saw before the fault.
            self.fault_plan.on_alloc(label, nbytes, self.pool)
        buffer = self.pool.allocate(nbytes, label=label)
        if charge_cost:
            self.charge(
                KernelCost(
                    kernel="device_malloc",
                    alloc_bytes=float(nbytes),
                    allocations=1,
                    launches=0,
                )
            )
        return buffer

    def free(self, buffer: Buffer, *, charge_cost: bool = True) -> None:
        """Free a simulated allocation (cheap, but not entirely free)."""
        self.pool.free(buffer)
        if charge_cost:
            self.charge(KernelCost(kernel="device_free", ops=1.0, launches=0))

    @property
    def memory_stats(self) -> MemoryStats:
        return self.pool.stats

    @property
    def peak_memory_bytes(self) -> int:
        return self.pool.peak_bytes

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def snapshot(self) -> DeviceSnapshot:
        """Return an immutable summary of elapsed time and memory usage."""
        stats = self.pool.stats
        return DeviceSnapshot(
            spec_name=self.spec.name,
            elapsed_seconds=self.elapsed_seconds,
            peak_memory_bytes=stats.peak_bytes,
            in_use_bytes=stats.in_use_bytes,
            allocation_count=stats.allocation_count,
            oom_count=stats.oom_count,
        )

    def reset(self) -> None:
        """Clear profiling data and the peak-memory watermark (keep live buffers)."""
        self.profiler.reset()
        self.pool.reset_peak()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Device(spec={self.spec.name!r}, elapsed={self.elapsed_seconds:.6f}s, "
            f"peak_mem={self.peak_memory_bytes} B)"
        )
