"""Simulated SIMT device substrate.

This package replaces the CUDA/HIP hardware the paper runs on with a faithful
software model: real NumPy execution of every bulk primitive, plus an analytic
cost model (bandwidth, compute, launch latency, allocation latency, warp
divergence) parameterised by data-center GPU and CPU specifications.
"""

from .cost import LINK_INTERCONNECT, LINK_PCIE, CostModel, KernelCost
from .device import Device, DeviceSnapshot
from .faults import FAULT_PLAN_ENV_VAR, FaultPlan, FaultSpec, resolve_fault_plan
from .kernels import DeviceKernels, TUPLE_DTYPE, as_rows, pack_rows, rows_nbytes
from .memory import Buffer, MemoryPool, MemoryStats
from .profiler import (
    FIGURE6_PHASES,
    PHASE_CHECKPOINT,
    PHASE_DEDUPLICATION,
    PHASE_INDEX_DELTA,
    PHASE_INDEX_FULL,
    PHASE_JOIN,
    PHASE_LOAD,
    PHASE_MERGE,
    PHASE_OTHER,
    PHASE_POPULATE_DELTA,
    PHASE_RECOVERY,
    PHASE_SHARD_EXCHANGE,
    PHASE_TRANSFER,
    PhaseSummary,
    ProfileEvent,
    Profiler,
)
from .simt import stride_count, stride_slices, warp_divergence_factor, warp_occupancy
from .spec import (
    AMD_EPYC_7543P,
    AMD_EPYC_7713,
    AMD_MI250,
    AMD_MI50,
    INTEL_XEON_6338,
    NVIDIA_A100,
    NVIDIA_H100,
    DeviceSpec,
    device_preset,
    list_device_presets,
)

__all__ = [
    "AMD_EPYC_7543P",
    "AMD_EPYC_7713",
    "AMD_MI250",
    "AMD_MI50",
    "Buffer",
    "CostModel",
    "Device",
    "DeviceKernels",
    "DeviceSnapshot",
    "DeviceSpec",
    "FAULT_PLAN_ENV_VAR",
    "FIGURE6_PHASES",
    "FaultPlan",
    "FaultSpec",
    "INTEL_XEON_6338",
    "KernelCost",
    "LINK_INTERCONNECT",
    "LINK_PCIE",
    "MemoryPool",
    "MemoryStats",
    "NVIDIA_A100",
    "NVIDIA_H100",
    "PHASE_CHECKPOINT",
    "PHASE_DEDUPLICATION",
    "PHASE_INDEX_DELTA",
    "PHASE_INDEX_FULL",
    "PHASE_JOIN",
    "PHASE_LOAD",
    "PHASE_MERGE",
    "PHASE_OTHER",
    "PHASE_POPULATE_DELTA",
    "PHASE_RECOVERY",
    "PHASE_SHARD_EXCHANGE",
    "PHASE_TRANSFER",
    "PhaseSummary",
    "ProfileEvent",
    "Profiler",
    "TUPLE_DTYPE",
    "as_rows",
    "device_preset",
    "list_device_presets",
    "pack_rows",
    "resolve_fault_plan",
    "rows_nbytes",
    "stride_count",
    "stride_slices",
    "warp_divergence_factor",
    "warp_occupancy",
]
