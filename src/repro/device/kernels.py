"""Data-parallel primitive kernels of the simulated device.

These are the Thrust-style bulk primitives GPUlog is built from: gather,
stable (radix-like) sort of tuple rows, exclusive scan, adjacent-difference
deduplication, stream compaction, path merge, raw memory movement, and the
host<->device transfer edges.  Each primitive

1. executes the real algorithm through the device's
   :class:`~repro.backend.base.ArrayBackend` (results are exact on whatever
   array library the backend owns — NumPy by default, CuPy when selected), and
2. charges a :class:`~repro.device.cost.KernelCost` to the owning
   :class:`~repro.device.device.Device`, which converts it into simulated
   seconds via the device's cost model and records it in the profiler.

Higher layers (HISA, the relational operators, the baseline engines) only
touch the device through these primitives plus :meth:`Device.charge` for
bespoke kernels such as the hash-probe join of Algorithm 3.  None of them
calls an array library directly: the backend is the single datapath.

The module-level helpers (:func:`as_rows`, :func:`host_lexsort_columns`, ...)
are the *host-side* NumPy conveniences used by tests, baseline engines and
uncharged oracles; they delegate to the shared reference backend so the host
and device implementations can never diverge.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..backend import (
    HOST_BACKEND,
    INDEX_DTYPE,
    INDEX_ITEMSIZE,
    TUPLE_DTYPE,
    TUPLE_ITEMSIZE,
    Array,
)
from .cost import LINK_INTERCONNECT, KernelCost
from .profiler import PHASE_SHARD_EXCHANGE, PHASE_TRANSFER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .device import Device

__all__ = [
    "DeviceKernels",
    "INDEX_DTYPE",
    "INDEX_ITEMSIZE",
    "TUPLE_DTYPE",
    "TUPLE_ITEMSIZE",
    "as_rows",
    "host_adjacent_unique_mask",
    "host_lexsort_columns",
    "is_monotone",
    "lex_rank_keys",
    "lex_rank_keys_columns",
    "pack_rows",
    "row_search_bounds",
    "rows_nbytes",
]


def as_rows(data: Array) -> np.ndarray:
    """Coerce ``data`` to a C-contiguous 2-D int64 row array (host helper)."""
    return HOST_BACKEND.as_rows(data)


def is_monotone(indices: Array) -> bool:
    """True if ``indices`` is non-decreasing (forward-only, coalescable reads)."""
    return HOST_BACKEND.is_monotone(indices)


def host_lexsort_columns(
    columns: "list[Array] | tuple[Array, ...]", n_rows: int | None = None
) -> np.ndarray:
    """Stable lexicographic argsort over per-column arrays (column 0 primary).

    Host-side delegate of :meth:`ArrayBackend.lexsort`, kept so the row-array
    entry points, tests and uncharged oracles share one sort implementation.
    """
    return HOST_BACKEND.lexsort(columns, n_rows=n_rows)


def host_adjacent_unique_mask(
    columns: "list[Array] | tuple[Array, ...]", n_rows: int | None = None
) -> np.ndarray:
    """Mask of sorted tuples that differ from their predecessor, per column."""
    return HOST_BACKEND.adjacent_unique_mask(columns, n_rows=n_rows)


def rows_nbytes(n_rows: int, arity: int) -> int:
    """Bytes occupied by ``n_rows`` tuples of the given arity."""
    return int(n_rows) * int(arity) * TUPLE_ITEMSIZE


class DeviceKernels:
    """Bulk primitives bound to one simulated :class:`Device`."""

    def __init__(self, device: "Device") -> None:
        self._device = device
        self._backend = device.backend

    @property
    def backend(self):
        """The array backend this device's kernels execute on."""
        return self._backend

    # ------------------------------------------------------------------
    # Host <-> device transfers (the charged PCIe boundary)
    # ------------------------------------------------------------------
    def from_host(self, data: Array, dtype=None, label: str = "h2d_transfer") -> Array:
        """Upload host data into a backend array, charged as a PCIe copy.

        This is the *only* sanctioned way host payloads enter the datapath
        (fact loading, externally supplied new tuples).  The simulated cost
        covers the DMA transfer plus the device-side write of the payload.
        """
        out = self._backend.from_host(data, dtype=dtype)
        nbytes = float(getattr(out, "nbytes", 0))
        self._device.charge(
            KernelCost(
                kernel=label,
                transfer_bytes=nbytes,
                sequential_bytes=nbytes,
                ops=float(getattr(out, "size", 0)),
            ),
            phase=PHASE_TRANSFER,
        )
        return out

    def to_host(self, array: Array, label: str = "d2h_transfer") -> np.ndarray:
        """Download a backend array to host NumPy, charged as a PCIe copy.

        The only sanctioned datapath exit (result collection, row-array
        extraction for host consumers).  Cost covers the device-side read
        plus the DMA transfer.
        """
        out = self._backend.to_host(array)
        nbytes = float(getattr(out, "nbytes", 0))
        self._device.charge(
            KernelCost(
                kernel=label,
                transfer_bytes=nbytes,
                sequential_bytes=nbytes,
                ops=float(getattr(out, "size", 0)),
            ),
            phase=PHASE_TRANSFER,
        )
        return out

    # ------------------------------------------------------------------
    # Device <-> device transfers (the charged interconnect boundary)
    # ------------------------------------------------------------------
    def device_to_device(self, array: Array, peer: "Device", label: str = "d2d_transfer") -> Array:
        """Move a device-resident array to ``peer`` over the interconnect.

        The sanctioned shard-exchange edge of sharded evaluation: delta
        tuples whose join key hashes to a foreign shard cross here.  The
        *sending* device is charged the DMA transfer (at the NVLink-class
        ``DeviceSpec.interconnect_bandwidth_gbps``) plus the device-side
        read; the *receiving* device is charged the payload write at memory
        bandwidth but no kernel launch — a peer DMA writes straight into the
        receiver's memory without the receiver scheduling anything.  Both
        charges land in the ``shard_exchange`` phase.
        """
        if self._device.fault_plan is not None:
            # An exchange fault fires before any payload moves or any cost is
            # charged: the transfer never happened, and the receiving peer is
            # reported as the crashed shard.
            self._device.fault_plan.on_exchange(label, peer)
        # Raw (uncharged) backend movement: simulated peers share host RAM,
        # so the physical copy is a no-op reinterpretation — the simulated
        # cost below is the entire point of this kernel.
        out = peer.backend.asarray(self._backend.to_host(array))
        nbytes = float(getattr(out, "nbytes", 0))
        size = float(getattr(out, "size", 0))
        self._device.charge(
            KernelCost(
                kernel=label,
                transfer_bytes=nbytes,
                transfer_link=LINK_INTERCONNECT,
                sequential_bytes=nbytes,
                ops=size,
            ),
            phase=PHASE_SHARD_EXCHANGE,
        )
        peer.charge(
            KernelCost(
                kernel=f"{label}.recv",
                sequential_bytes=nbytes,
                ops=size,
                recv_bytes=nbytes,
                launches=0,
            ),
            phase=PHASE_SHARD_EXCHANGE,
        )
        return out

    def scatter_to(
        self, segments: "list[tuple[Array, Device]]", label: str = "d2d_scatter"
    ) -> "list[Array]":
        """Send one distinct segment to each listed peer, as one fused launch.

        The all-to-all shape of sharded exchange: a source posts every
        outbound DMA from a single kernel (the way a fused scatter kernel
        or NCCL all-to-all would), so the sender pays launch latency *once*
        regardless of how many peers receive a slice, plus the summed link
        transfer and device-side read.  Each receiver still pays its own
        payload write — at bandwidth, with no launch, exactly as in
        :meth:`device_to_device`.  Fault hooks fire per peer *before* any
        payload moves or cost is charged, so a scripted ``exchange`` fault
        aborts the whole fused launch with nothing sent.
        """
        for _array, peer in segments:
            if self._device.fault_plan is not None:
                self._device.fault_plan.on_exchange(label, peer)
        out: "list[Array]" = []
        total_bytes = 0.0
        total_size = 0.0
        for array, peer in segments:
            copied = peer.backend.asarray(self._backend.to_host(array))
            nbytes = float(getattr(copied, "nbytes", 0))
            size = float(getattr(copied, "size", 0))
            total_bytes += nbytes
            total_size += size
            peer.charge(
                KernelCost(
                    kernel=f"{label}.recv",
                    sequential_bytes=nbytes,
                    ops=size,
                    recv_bytes=nbytes,
                    launches=0,
                ),
                phase=PHASE_SHARD_EXCHANGE,
            )
            out.append(copied)
        if segments:
            self._device.charge(
                KernelCost(
                    kernel=label,
                    transfer_bytes=total_bytes,
                    transfer_link=LINK_INTERCONNECT,
                    sequential_bytes=total_bytes,
                    ops=total_size,
                ),
                phase=PHASE_SHARD_EXCHANGE,
            )
        return out

    def broadcast_to(self, array: Array, peers: "list[Device]", label: str = "d2d_broadcast") -> "list[Array]":
        """Send one device-resident array to several peers over the interconnect.

        Simulated cost per link is identical to :meth:`device_to_device`
        (there is no multicast: every link carries its own DMA, and every
        peer pays its payload write) — but the host-side staging of the
        payload happens once per *source*, not once per peer, so an N-way
        broadcast does not re-read the array N times on the host.
        """
        staged = self._backend.to_host(array)
        out: "list[Array]" = []
        for peer in peers:
            if self._device.fault_plan is not None:
                self._device.fault_plan.on_exchange(label, peer)
            copied = peer.backend.asarray(staged)
            nbytes = float(getattr(copied, "nbytes", 0))
            size = float(getattr(copied, "size", 0))
            self._device.charge(
                KernelCost(
                    kernel=label,
                    transfer_bytes=nbytes,
                    transfer_link=LINK_INTERCONNECT,
                    sequential_bytes=nbytes,
                    ops=size,
                ),
                phase=PHASE_SHARD_EXCHANGE,
            )
            peer.charge(
                KernelCost(
                    kernel=f"{label}.recv",
                    sequential_bytes=nbytes,
                    ops=size,
                    recv_bytes=nbytes,
                    launches=0,
                ),
                phase=PHASE_SHARD_EXCHANGE,
            )
            out.append(copied)
        return out

    # ------------------------------------------------------------------
    # Raw memory movement
    # ------------------------------------------------------------------
    def copy(self, data: Array, label: str = "copy") -> Array:
        """Device-to-device copy (one read + one write of the payload)."""
        rows = self._backend.asarray(data).copy()
        nbytes = rows.nbytes
        self._device.charge(KernelCost(kernel=label, sequential_bytes=2.0 * nbytes, ops=rows.size))
        return rows

    def concatenate_rows(self, parts: list[Array], label: str = "concatenate") -> Array:
        """Concatenate tuple arrays; charged as a streaming copy of the output."""
        backend = self._backend
        parts = [backend.as_rows(part) for part in parts if part is not None and len(part)]
        if not parts:
            return backend.empty((0, 0), dtype=TUPLE_DTYPE)
        out = backend.concatenate(parts, axis=0)
        self._device.charge(KernelCost(kernel=label, sequential_bytes=2.0 * out.nbytes, ops=out.shape[0]))
        return out

    def gather_rows(self, rows: Array, indices: Array, label: str = "gather") -> Array:
        """Gather ``rows[indices]``; reads are random, writes are streaming."""
        backend = self._backend
        rows = backend.as_rows(rows)
        indices = backend.asarray(indices, dtype=INDEX_DTYPE)
        out = backend.take(rows, indices)
        row_bytes = rows.shape[1] * TUPLE_ITEMSIZE if rows.size else TUPLE_ITEMSIZE
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=float(indices.size) * row_bytes,
                sequential_bytes=float(indices.size) * (row_bytes + INDEX_ITEMSIZE),
                ops=float(indices.size),
            )
        )
        return out

    def gather_values(self, values: Array, indices: Array, label: str = "gather_values") -> Array:
        """Gather scalar values; reads are random, writes streaming."""
        backend = self._backend
        values = backend.asarray(values)
        indices = backend.asarray(indices, dtype=INDEX_DTYPE)
        out = backend.take(values, indices)
        itemsize = values.dtype.itemsize
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=float(indices.size) * itemsize,
                sequential_bytes=float(indices.size) * (itemsize + INDEX_ITEMSIZE),
                ops=float(indices.size),
            )
        )
        return out

    # ------------------------------------------------------------------
    # Columnar (SoA) primitives — the late-materialization datapath
    # ------------------------------------------------------------------
    def gather_column(
        self,
        base: Array,
        indices: Array,
        label: str = "gather_column",
        coalesced: bool | None = None,
    ) -> Array:
        """Materialise one column of a lazy batch: ``base[indices]``.

        Cost is charged *per column* and only for columns a downstream
        operator actually touches.  A monotone (non-decreasing) selection —
        the shape produced by match expansion and stream compaction — reads
        the base forward-only, which a GPU coalesces; only genuinely
        unordered selections pay the random-access rate.
        """
        backend = self._backend
        base = backend.asarray(base)
        indices = backend.asarray(indices, dtype=INDEX_DTYPE)
        out = backend.take(base, indices)
        itemsize = base.dtype.itemsize
        value_bytes = float(indices.size) * itemsize
        if coalesced is None:
            coalesced = backend.is_monotone(indices)
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=0.0 if coalesced else value_bytes,
                sequential_bytes=float(indices.size) * (itemsize + INDEX_ITEMSIZE)
                + (value_bytes if coalesced else 0.0),
                ops=float(indices.size),
            )
        )
        return out

    def compose_selection(
        self,
        selection: Array,
        indices: Array,
        label: str = "compose_selection",
        coalesced: bool | None = None,
    ) -> Array:
        """Compose two gather index vectors: ``selection[indices]``.

        Late materialization replaces per-operator tuple copies with this
        int64 index gather, performed once per *source* (not per column).
        Monotone ``indices`` (compaction / match-expansion shapes) coalesce.
        """
        backend = self._backend
        selection = backend.asarray(selection, dtype=INDEX_DTYPE)
        indices = backend.asarray(indices, dtype=INDEX_DTYPE)
        out = backend.take(selection, indices)
        index_bytes = float(indices.size) * INDEX_ITEMSIZE
        if coalesced is None:
            coalesced = backend.is_monotone(indices)
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=0.0 if coalesced else index_bytes,
                sequential_bytes=index_bytes * (3.0 if coalesced else 2.0),
                ops=float(indices.size),
            )
        )
        return out

    def concatenate_columns(
        self, parts: list[list[Array]], label: str = "concatenate_columns"
    ) -> list[Array]:
        """Concatenate per-column arrays of several batches (one pass per column)."""
        if not parts:
            return []
        backend = self._backend
        arity = len(parts[0])
        out: list[Array] = []
        total_bytes = 0.0
        total_rows = 0
        for column_index in range(arity):
            column = backend.concatenate([part[column_index] for part in parts])
            total_bytes += 2.0 * column.nbytes
            total_rows = column.shape[0]
            out.append(column)
        self._device.charge(
            KernelCost(kernel=label, sequential_bytes=total_bytes, ops=float(total_rows) * max(1, arity))
        )
        return out

    def adjacent_unique_mask_columns(
        self, sorted_columns: list[Array], n_rows: int, label: str = "adjacent_unique"
    ) -> Array:
        """Columnar adjacent-compare deduplication mask (one pass per column)."""
        mask = self._backend.adjacent_unique_mask(sorted_columns, n_rows=n_rows)
        column_bytes = sum(float(column.nbytes) for column in sorted_columns)
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=2.0 * column_bytes + float(n_rows),
                ops=float(n_rows) * max(1, len(sorted_columns)),
            )
        )
        return mask

    def compact_columns(
        self, columns: list[Array], mask: Array, label: str = "compact_columns"
    ) -> list[Array]:
        """Stream-compact each column by a shared boolean mask.

        Charged as coalesced streaming (scan + scatter) per column — unlike a
        gather, compaction reads every element in order.
        """
        backend = self._backend
        mask = backend.asarray(mask, dtype=backend.bool_)
        out = [column[mask] for column in columns]
        in_bytes = sum(float(column.nbytes) for column in columns)
        out_bytes = sum(float(column.nbytes) for column in out)
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=in_bytes + out_bytes + float(mask.size),
                ops=float(mask.size) * max(1, len(columns)),
            )
        )
        return out

    def unique_columns(self, columns: list[Array], label: str = "unique_columns") -> list[Array]:
        """Columnar deduplication: per-column lexsort + adjacent-compare + compact.

        The columnar replacement for :meth:`unique_rows` — no packed row keys
        are ever built; every pass streams contiguous single columns.
        """
        if not columns or columns[0].shape[0] == 0:
            return list(columns)
        order = self.lexsort_columns(columns, label=f"{label}.sort")
        # The sort permutation is shared by every column: test coalescing once.
        order_coalesced = self._backend.is_monotone(order)
        sorted_columns = [
            self.gather_column(column, order, label=f"{label}.gather", coalesced=order_coalesced)
            for column in columns
        ]
        mask = self.adjacent_unique_mask_columns(sorted_columns, order.size, label=f"{label}.mask")
        return self.compact_columns(sorted_columns, mask, label=f"{label}.compact")

    # ------------------------------------------------------------------
    # Transform / map
    # ------------------------------------------------------------------
    def transform(
        self,
        n_items: int,
        bytes_per_item: float,
        ops_per_item: float = 1.0,
        label: str = "transform",
    ) -> None:
        """Charge an elementwise transform without a concrete payload.

        Used for column permutation (Algorithm 1 lines 1-5), selection
        predicates, and hash computation where the array work happens inline
        in the caller.
        """
        n_items = max(0, int(n_items))
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=float(n_items) * float(bytes_per_item),
                ops=float(n_items) * float(ops_per_item),
            )
        )

    # ------------------------------------------------------------------
    # Sorting and order maintenance
    # ------------------------------------------------------------------
    def lexsort_rows(self, rows: Array, label: str = "stable_sort") -> Array:
        """Stable lexicographic argsort of tuple rows.

        Mirrors Algorithm 1: one stable sort pass per column from least to
        most significant.  Each pass streams the permutation indices and the
        key column through memory.
        """
        backend = self._backend
        rows = backend.as_rows(rows)
        n, arity = rows.shape
        order = backend.lexsort([rows[:, col] for col in range(arity)], n_rows=n)
        self._charge_lexsort(n, arity, label)
        return order

    def lexsort_columns(
        self, columns: list[Array], label: str = "stable_sort", n_rows: int | None = None
    ) -> Array:
        """Stable lexicographic argsort over per-column arrays (SoA layout).

        Same algorithm and cost as :meth:`lexsort_rows` — one stable pass per
        column — but each pass streams a contiguous column instead of a
        strided slice of a row array.  ``n_rows`` covers the zero-arity edge
        (identity permutation).
        """
        n = int(columns[0].shape[0]) if columns else int(n_rows or 0)
        order = self._backend.lexsort(columns, n_rows=n)
        self._charge_lexsort(n, len(columns), label)
        return order

    def _charge_lexsort(self, n: int, arity: int, label: str) -> None:
        pass_bytes = float(n) * (TUPLE_ITEMSIZE + 2 * INDEX_ITEMSIZE)
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=max(1, arity) * 2.0 * pass_bytes,
                ops=float(n) * max(1, arity) * 4.0,
                launches=max(1, arity),
            )
        )

    def sort_rows(self, rows: Array, label: str = "sort_rows") -> Array:
        """Return the rows physically reordered into lexicographic order."""
        rows = self._backend.as_rows(rows)
        order = self.lexsort_rows(rows, label=f"{label}.argsort")
        return self.gather_rows(rows, order, label=f"{label}.gather")

    def is_sorted_rows(self, rows: Array) -> bool:
        """Host-side check (no cost) that rows are lexicographically sorted."""
        rows = self._backend.as_rows(rows)
        if rows.shape[0] < 2:
            return True
        prev, curr = rows[:-1], rows[1:]
        return bool(_lex_less_equal(self._backend, prev, curr).all())

    def merge_sorted_rows(self, left: Array, right: Array, label: str = "merge_path") -> Array:
        """Merge two lexicographically sorted tuple arrays (GPU merge path).

        Charged as a single streaming pass over both inputs plus the output,
        the behaviour of the path-merge algorithm the paper takes from Thrust.
        """
        backend = self._backend
        left, right = backend.as_rows(left), backend.as_rows(right)
        if left.size == 0:
            merged = right.copy()
        elif right.size == 0:
            merged = left.copy()
        else:
            if left.shape[1] != right.shape[1]:
                raise ValueError("cannot merge tuple arrays with different arity")
            merged = backend.concatenate([left, right], axis=0)
            order = backend.lexsort(
                [merged[:, col] for col in range(merged.shape[1])], n_rows=merged.shape[0]
            )
            merged = backend.take(merged, order)
        total_bytes = float(left.nbytes + right.nbytes + merged.nbytes)
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=total_bytes,
                ops=float(merged.shape[0]) * max(1, merged.shape[1] if merged.ndim == 2 else 1),
            )
        )
        return merged

    # ------------------------------------------------------------------
    # Scan / reduction / compaction
    # ------------------------------------------------------------------
    def exclusive_scan(self, values: Array, label: str = "exclusive_scan") -> Array:
        """Exclusive prefix sum (used for output-offset computation in joins)."""
        backend = self._backend
        values = backend.asarray(values, dtype=INDEX_DTYPE)
        out = backend.zeros(values.shape, dtype=INDEX_DTYPE)
        if values.size:
            out[1:] = backend.cumsum(values[:-1])
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=2.0 * float(values.nbytes),
                ops=float(values.size) * 2.0,
            )
        )
        return out

    def reduce_sum(self, values: Array, label: str = "reduce") -> int:
        """Sum reduction (streaming read of the input)."""
        values = self._backend.asarray(values)
        total = int(values.sum()) if values.size else 0
        self._device.charge(
            KernelCost(kernel=label, sequential_bytes=float(values.nbytes), ops=float(values.size))
        )
        return total

    def adjacent_unique_mask(self, sorted_rows: Array, label: str = "adjacent_unique") -> Array:
        """Mask of rows that differ from their predecessor in a sorted array.

        This is the HISA deduplication primitive (Section 4.2): after sorting
        all columns lexicographically, duplicates are adjacent and removed by
        comparing each tuple to its neighbour in a parallel scan.
        """
        backend = self._backend
        rows = backend.as_rows(sorted_rows)
        n = rows.shape[0]
        mask = backend.adjacent_unique_mask([rows[:, col] for col in range(rows.shape[1])], n_rows=n)
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=2.0 * float(rows.nbytes) + float(n),
                ops=float(n) * max(1, rows.shape[1] if rows.ndim == 2 else 1),
            )
        )
        return mask

    def stream_compact(self, rows: Array, mask: Array, label: str = "stream_compact") -> Array:
        """Keep rows where ``mask`` is true (scan + scatter)."""
        backend = self._backend
        rows = backend.as_rows(rows)
        mask = backend.asarray(mask, dtype=backend.bool_)
        if mask.shape[0] != rows.shape[0]:
            raise ValueError("mask length must equal the number of rows")
        out = rows[mask]
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=float(rows.nbytes) + float(out.nbytes) + float(mask.size),
                ops=float(rows.shape[0]),
            )
        )
        return out

    def unique_rows(self, rows: Array, label: str = "unique_rows") -> Array:
        """Sort + adjacent-compare + compact: fully deduplicate a tuple array."""
        rows = self._backend.as_rows(rows)
        if rows.shape[0] == 0:
            return rows
        sorted_rows = self.sort_rows(rows, label=f"{label}.sort")
        mask = self.adjacent_unique_mask(sorted_rows, label=f"{label}.mask")
        return self.stream_compact(sorted_rows, mask, label=f"{label}.compact")

    # ------------------------------------------------------------------
    # Random access charging helpers (hash table build / probe)
    # ------------------------------------------------------------------
    def random_access(
        self,
        n_accesses: int,
        bytes_per_access: float,
        ops_per_access: float = 1.0,
        divergence: float = 1.0,
        label: str = "random_access",
    ) -> None:
        """Charge ``n_accesses`` data-dependent memory accesses."""
        n_accesses = max(0, int(n_accesses))
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=float(n_accesses) * float(bytes_per_access),
                ops=float(n_accesses) * float(ops_per_access),
                divergence=float(divergence),
            )
        )

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------
    def binary_search_keys(
        self,
        n_needles: int,
        haystack_size: int,
        key_bytes: float,
        label: str = "binary_search_keys",
    ) -> None:
        """Charge a batch binary search of packed keys into a sorted array.

        This is the cost of the incremental merge path: each of the ``n``
        delta keys walks ``log2(|full|)`` random reads to find its insertion
        rank.  The array work (``searchsorted`` on cached packed keys)
        happens inline in the caller.
        """
        n_needles = max(0, int(n_needles))
        depth = max(1.0, math.log2(max(2, int(haystack_size))))
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=float(n_needles) * depth * float(key_bytes),
                sequential_bytes=float(n_needles) * (float(key_bytes) + 2.0 * INDEX_ITEMSIZE),
                ops=float(n_needles) * depth * 2.0,
            )
        )

    def searchsorted_rows(
        self,
        haystack_sorted: Array,
        needles: Array,
        label: str = "binary_search",
    ) -> tuple[Array, Array]:
        """Lower/upper bound search of ``needles`` in sorted ``haystack``.

        Returns ``(lower, upper)`` index arrays.  Charged as ``log2(n)``
        random reads per needle — the cost a tree/binary-search range lookup
        would pay, used by the CPU baseline and by HISA's sorted-array
        fallback when the hash index is disabled.
        """
        backend = self._backend
        haystack = backend.as_rows(haystack_sorted)
        needles = backend.as_rows(needles)
        lower, upper = _row_search_bounds(backend, haystack, needles)
        n = needles.shape[0]
        depth = max(1.0, math.log2(max(2, haystack.shape[0])))
        row_bytes = max(TUPLE_ITEMSIZE, haystack.shape[1] * TUPLE_ITEMSIZE)
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=float(n) * depth * row_bytes,
                sequential_bytes=float(needles.nbytes) + 2.0 * float(n) * INDEX_ITEMSIZE,
                ops=float(n) * depth * 2.0,
            )
        )
        return lower, upper


# ----------------------------------------------------------------------
# Host-side helpers (pure functions, no device cost)
# ----------------------------------------------------------------------

def pack_rows(rows: np.ndarray) -> np.ndarray:
    """View each row as one opaque void scalar for exact set operations."""
    rows = as_rows(rows)
    if rows.shape[0] == 0:
        return np.empty(0, dtype=np.dtype((np.void, max(1, rows.shape[1]) * TUPLE_ITEMSIZE)))
    return np.ascontiguousarray(rows).view(np.dtype((np.void, rows.shape[1] * TUPLE_ITEMSIZE))).ravel()


def _lex_less_equal(backend, prev: Array, curr: Array) -> Array:
    """Vectorised row-wise ``prev <= curr`` under lexicographic order."""
    n, arity = prev.shape
    result = backend.zeros(n, dtype=backend.bool_)
    undecided = backend.ones(n, dtype=backend.bool_)
    for col in range(arity):
        less = prev[:, col] < curr[:, col]
        greater = prev[:, col] > curr[:, col]
        result |= undecided & less
        undecided &= ~(less | greater)
    result |= undecided  # fully equal rows compare as <=
    return result


def _row_search_bounds(backend, haystack: Array, needles: Array) -> tuple[Array, Array]:
    """Lower/upper bounds of each needle row within a sorted haystack."""
    if haystack.shape[0] == 0 or needles.shape[0] == 0:
        zeros = backend.zeros(needles.shape[0], dtype=INDEX_DTYPE)
        return zeros, zeros.copy()
    if haystack.shape[1] != needles.shape[1]:
        raise ValueError("haystack and needles must have the same arity")
    hay_packed = backend.pack_lex_keys([haystack[:, col] for col in range(haystack.shape[1])])
    needle_packed = backend.pack_lex_keys([needles[:, col] for col in range(needles.shape[1])])
    lower = backend.searchsorted(hay_packed, needle_packed, side="left")
    upper = backend.searchsorted(hay_packed, needle_packed, side="right")
    return lower, upper


def row_search_bounds(haystack: np.ndarray, needles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Host-side :func:`_row_search_bounds` on the reference backend."""
    return _row_search_bounds(HOST_BACKEND, as_rows(haystack), as_rows(needles))


def lex_rank_keys(rows: np.ndarray, reference: np.ndarray | None = None) -> np.ndarray:
    """Map rows to sortable packed keys preserving lexicographic order.

    ``reference`` is accepted for interface symmetry; keys are absolute.
    """
    rows = as_rows(rows)
    return HOST_BACKEND.pack_lex_keys([rows[:, col] for col in range(rows.shape[1])])


def lex_rank_keys_columns(columns: "list[Array] | tuple[Array, ...]") -> np.ndarray:
    """Columnar :func:`lex_rank_keys` on the reference backend."""
    return HOST_BACKEND.pack_lex_keys(columns)
