"""Data-parallel primitive kernels of the simulated device.

These are the Thrust-style bulk primitives GPUlog is built from: gather,
stable (radix-like) sort of tuple rows, exclusive scan, adjacent-difference
deduplication, stream compaction, path merge, and raw memory movement.  Each
primitive

1. executes the real algorithm on host NumPy arrays (results are exact), and
2. charges a :class:`~repro.device.cost.KernelCost` to the owning
   :class:`~repro.device.device.Device`, which converts it into simulated
   seconds via the device's cost model and records it in the profiler.

Higher layers (HISA, the relational operators, the baseline engines) only
touch the device through these primitives plus :meth:`Device.charge` for
bespoke kernels such as the hash-probe join of Algorithm 3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .cost import KernelCost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .device import Device

TUPLE_DTYPE = np.int64
TUPLE_ITEMSIZE = np.dtype(TUPLE_DTYPE).itemsize
INDEX_DTYPE = np.int64
INDEX_ITEMSIZE = np.dtype(INDEX_DTYPE).itemsize


def as_rows(data: np.ndarray) -> np.ndarray:
    """Coerce ``data`` to a C-contiguous 2-D int64 row array."""
    rows = np.asarray(data, dtype=TUPLE_DTYPE)
    if rows.ndim == 1:
        rows = rows.reshape(-1, 1)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-D tuple array, got shape {rows.shape}")
    return np.ascontiguousarray(rows)


def is_monotone(indices: np.ndarray) -> bool:
    """True if ``indices`` is non-decreasing (forward-only, coalescable reads)."""
    if indices.size < 2:
        return True
    return bool((indices[1:] >= indices[:-1]).all())


def host_lexsort_columns(
    columns: "list[np.ndarray] | tuple[np.ndarray, ...]", n_rows: int | None = None
) -> np.ndarray:
    """Stable lexicographic argsort over per-column arrays (column 0 primary).

    This is the one host implementation of the tuple sort; the row-array
    entry points build their column views and delegate here so the columnar
    and row pipelines sort identically.  ``n_rows`` covers the zero-arity
    edge: with no sort keys every order is (stably) sorted, so the identity
    permutation is returned.
    """
    if not columns:
        return np.arange(int(n_rows or 0), dtype=INDEX_DTYPE)
    n = int(columns[0].shape[0])
    if n == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    # np.lexsort sorts by the last key first, so pass columns reversed.
    return np.lexsort(tuple(reversed(columns))).astype(INDEX_DTYPE)


def host_adjacent_unique_mask(
    columns: "list[np.ndarray] | tuple[np.ndarray, ...]", n_rows: int | None = None
) -> np.ndarray:
    """Mask of sorted tuples that differ from their predecessor, per column.

    Shared by the row-array and columnar deduplication paths (and by the
    uncharged oracle in :func:`repro.relational.operators.deduplicate`) so the
    adjacent-compare step exists exactly once.  ``n_rows`` covers the
    zero-arity edge: with no columns every tuple equals its predecessor.
    """
    n = int(columns[0].shape[0]) if columns else int(n_rows or 0)
    mask = np.empty(n, dtype=bool)
    if n == 0:
        return mask
    mask[0] = True
    if n > 1:
        mask[1:] = False
        for column in columns:
            mask[1:] |= column[1:] != column[:-1]
    return mask


def rows_nbytes(n_rows: int, arity: int) -> int:
    """Bytes occupied by ``n_rows`` tuples of the given arity."""
    return int(n_rows) * int(arity) * TUPLE_ITEMSIZE


class DeviceKernels:
    """Bulk primitives bound to one simulated :class:`Device`."""

    def __init__(self, device: "Device") -> None:
        self._device = device

    # ------------------------------------------------------------------
    # Raw memory movement
    # ------------------------------------------------------------------
    def copy(self, data: np.ndarray, label: str = "copy") -> np.ndarray:
        """Device-to-device copy (one read + one write of the payload)."""
        rows = np.array(data, dtype=data.dtype if hasattr(data, "dtype") else TUPLE_DTYPE, copy=True)
        nbytes = rows.nbytes
        self._device.charge(KernelCost(kernel=label, sequential_bytes=2.0 * nbytes, ops=rows.size))
        return rows

    def concatenate_rows(self, parts: list[np.ndarray], label: str = "concatenate") -> np.ndarray:
        """Concatenate tuple arrays; charged as a streaming copy of the output."""
        parts = [as_rows(part) for part in parts if part is not None and len(part)]
        if not parts:
            return np.empty((0, 0), dtype=TUPLE_DTYPE)
        out = np.concatenate(parts, axis=0)
        self._device.charge(KernelCost(kernel=label, sequential_bytes=2.0 * out.nbytes, ops=out.shape[0]))
        return out

    def gather_rows(self, rows: np.ndarray, indices: np.ndarray, label: str = "gather") -> np.ndarray:
        """Gather ``rows[indices]``; reads are random, writes are streaming."""
        rows = as_rows(rows)
        indices = np.asarray(indices, dtype=INDEX_DTYPE)
        out = rows[indices]
        row_bytes = rows.shape[1] * TUPLE_ITEMSIZE if rows.size else TUPLE_ITEMSIZE
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=float(indices.size) * row_bytes,
                sequential_bytes=float(indices.size) * (row_bytes + INDEX_ITEMSIZE),
                ops=float(indices.size),
            )
        )
        return out

    def gather_values(self, values: np.ndarray, indices: np.ndarray, label: str = "gather_values") -> np.ndarray:
        """Gather scalar values; reads are random, writes streaming."""
        values = np.asarray(values)
        indices = np.asarray(indices, dtype=INDEX_DTYPE)
        out = values[indices]
        itemsize = values.dtype.itemsize
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=float(indices.size) * itemsize,
                sequential_bytes=float(indices.size) * (itemsize + INDEX_ITEMSIZE),
                ops=float(indices.size),
            )
        )
        return out

    # ------------------------------------------------------------------
    # Columnar (SoA) primitives — the late-materialization datapath
    # ------------------------------------------------------------------
    def gather_column(
        self,
        base: np.ndarray,
        indices: np.ndarray,
        label: str = "gather_column",
        coalesced: bool | None = None,
    ) -> np.ndarray:
        """Materialise one column of a lazy batch: ``base[indices]``.

        Cost is charged *per column* and only for columns a downstream
        operator actually touches.  A monotone (non-decreasing) selection —
        the shape produced by match expansion and stream compaction — reads
        the base forward-only, which a GPU coalesces; only genuinely
        unordered selections pay the random-access rate.
        """
        base = np.asarray(base)
        indices = np.asarray(indices, dtype=INDEX_DTYPE)
        out = base[indices]
        itemsize = base.dtype.itemsize
        value_bytes = float(indices.size) * itemsize
        if coalesced is None:
            coalesced = is_monotone(indices)
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=0.0 if coalesced else value_bytes,
                sequential_bytes=float(indices.size) * (itemsize + INDEX_ITEMSIZE)
                + (value_bytes if coalesced else 0.0),
                ops=float(indices.size),
            )
        )
        return out

    def compose_selection(
        self,
        selection: np.ndarray,
        indices: np.ndarray,
        label: str = "compose_selection",
        coalesced: bool | None = None,
    ) -> np.ndarray:
        """Compose two gather index vectors: ``selection[indices]``.

        Late materialization replaces per-operator tuple copies with this
        int64 index gather, performed once per *source* (not per column).
        Monotone ``indices`` (compaction / match-expansion shapes) coalesce.
        """
        selection = np.asarray(selection, dtype=INDEX_DTYPE)
        indices = np.asarray(indices, dtype=INDEX_DTYPE)
        out = selection[indices]
        index_bytes = float(indices.size) * INDEX_ITEMSIZE
        if coalesced is None:
            coalesced = is_monotone(indices)
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=0.0 if coalesced else index_bytes,
                sequential_bytes=index_bytes * (3.0 if coalesced else 2.0),
                ops=float(indices.size),
            )
        )
        return out

    def concatenate_columns(
        self, parts: list[list[np.ndarray]], label: str = "concatenate_columns"
    ) -> list[np.ndarray]:
        """Concatenate per-column arrays of several batches (one pass per column)."""
        if not parts:
            return []
        arity = len(parts[0])
        out: list[np.ndarray] = []
        total_bytes = 0.0
        total_rows = 0
        for column_index in range(arity):
            column = np.concatenate([part[column_index] for part in parts])
            total_bytes += 2.0 * column.nbytes
            total_rows = column.shape[0]
            out.append(column)
        self._device.charge(
            KernelCost(kernel=label, sequential_bytes=total_bytes, ops=float(total_rows) * max(1, arity))
        )
        return out

    def adjacent_unique_mask_columns(
        self, sorted_columns: list[np.ndarray], n_rows: int, label: str = "adjacent_unique"
    ) -> np.ndarray:
        """Columnar adjacent-compare deduplication mask (one pass per column)."""
        mask = host_adjacent_unique_mask(sorted_columns, n_rows=n_rows)
        column_bytes = sum(float(column.nbytes) for column in sorted_columns)
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=2.0 * column_bytes + float(n_rows),
                ops=float(n_rows) * max(1, len(sorted_columns)),
            )
        )
        return mask

    def compact_columns(
        self, columns: list[np.ndarray], mask: np.ndarray, label: str = "compact_columns"
    ) -> list[np.ndarray]:
        """Stream-compact each column by a shared boolean mask.

        Charged as coalesced streaming (scan + scatter) per column — unlike a
        gather, compaction reads every element in order.
        """
        mask = np.asarray(mask, dtype=bool)
        out = [column[mask] for column in columns]
        in_bytes = sum(float(column.nbytes) for column in columns)
        out_bytes = sum(float(column.nbytes) for column in out)
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=in_bytes + out_bytes + float(mask.size),
                ops=float(mask.size) * max(1, len(columns)),
            )
        )
        return out

    def unique_columns(self, columns: list[np.ndarray], label: str = "unique_columns") -> list[np.ndarray]:
        """Columnar deduplication: per-column lexsort + adjacent-compare + compact.

        The columnar replacement for :meth:`unique_rows` — no packed row keys
        are ever built; every pass streams contiguous single columns.
        """
        if not columns or columns[0].shape[0] == 0:
            return list(columns)
        order = self.lexsort_columns(columns, label=f"{label}.sort")
        # The sort permutation is shared by every column: test coalescing once.
        order_coalesced = is_monotone(order)
        sorted_columns = [
            self.gather_column(column, order, label=f"{label}.gather", coalesced=order_coalesced)
            for column in columns
        ]
        mask = self.adjacent_unique_mask_columns(sorted_columns, order.size, label=f"{label}.mask")
        return self.compact_columns(sorted_columns, mask, label=f"{label}.compact")

    # ------------------------------------------------------------------
    # Transform / map
    # ------------------------------------------------------------------
    def transform(
        self,
        n_items: int,
        bytes_per_item: float,
        ops_per_item: float = 1.0,
        label: str = "transform",
    ) -> None:
        """Charge an elementwise transform without a concrete payload.

        Used for column permutation (Algorithm 1 lines 1-5), selection
        predicates, and hash computation where the NumPy work happens inline
        in the caller.
        """
        n_items = max(0, int(n_items))
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=float(n_items) * float(bytes_per_item),
                ops=float(n_items) * float(ops_per_item),
            )
        )

    # ------------------------------------------------------------------
    # Sorting and order maintenance
    # ------------------------------------------------------------------
    def lexsort_rows(self, rows: np.ndarray, label: str = "stable_sort") -> np.ndarray:
        """Stable lexicographic argsort of tuple rows.

        Mirrors Algorithm 1: one stable sort pass per column from least to
        most significant.  Each pass streams the permutation indices and the
        key column through memory.
        """
        rows = as_rows(rows)
        n, arity = rows.shape
        order = host_lexsort_columns([rows[:, col] for col in range(arity)], n_rows=n)
        self._charge_lexsort(n, arity, label)
        return order

    def lexsort_columns(
        self, columns: list[np.ndarray], label: str = "stable_sort", n_rows: int | None = None
    ) -> np.ndarray:
        """Stable lexicographic argsort over per-column arrays (SoA layout).

        Same algorithm and cost as :meth:`lexsort_rows` — one stable pass per
        column — but each pass streams a contiguous column instead of a
        strided slice of a row array.  ``n_rows`` covers the zero-arity edge
        (identity permutation), mirroring :func:`host_lexsort_columns`.
        """
        n = int(columns[0].shape[0]) if columns else int(n_rows or 0)
        order = host_lexsort_columns(columns, n_rows=n)
        self._charge_lexsort(n, len(columns), label)
        return order

    def _charge_lexsort(self, n: int, arity: int, label: str) -> None:
        pass_bytes = float(n) * (TUPLE_ITEMSIZE + 2 * INDEX_ITEMSIZE)
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=max(1, arity) * 2.0 * pass_bytes,
                ops=float(n) * max(1, arity) * 4.0,
                launches=max(1, arity),
            )
        )

    def sort_rows(self, rows: np.ndarray, label: str = "sort_rows") -> np.ndarray:
        """Return the rows physically reordered into lexicographic order."""
        rows = as_rows(rows)
        order = self.lexsort_rows(rows, label=f"{label}.argsort")
        return self.gather_rows(rows, order, label=f"{label}.gather")

    def is_sorted_rows(self, rows: np.ndarray) -> bool:
        """Host-side check (no cost) that rows are lexicographically sorted."""
        rows = as_rows(rows)
        if rows.shape[0] < 2:
            return True
        prev, curr = rows[:-1], rows[1:]
        return bool(np.all(_lex_less_equal(prev, curr)))

    def merge_sorted_rows(self, left: np.ndarray, right: np.ndarray, label: str = "merge_path") -> np.ndarray:
        """Merge two lexicographically sorted tuple arrays (GPU merge path).

        Charged as a single streaming pass over both inputs plus the output,
        the behaviour of the path-merge algorithm the paper takes from Thrust.
        """
        left, right = as_rows(left), as_rows(right)
        if left.size == 0:
            merged = right.copy()
        elif right.size == 0:
            merged = left.copy()
        else:
            if left.shape[1] != right.shape[1]:
                raise ValueError("cannot merge tuple arrays with different arity")
            merged = np.concatenate([left, right], axis=0)
            order = np.lexsort(tuple(merged[:, col] for col in reversed(range(merged.shape[1]))))
            merged = merged[order]
        total_bytes = float(left.nbytes + right.nbytes + merged.nbytes)
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=total_bytes,
                ops=float(merged.shape[0]) * max(1, merged.shape[1] if merged.ndim == 2 else 1),
            )
        )
        return merged

    # ------------------------------------------------------------------
    # Scan / reduction / compaction
    # ------------------------------------------------------------------
    def exclusive_scan(self, values: np.ndarray, label: str = "exclusive_scan") -> np.ndarray:
        """Exclusive prefix sum (used for output-offset computation in joins)."""
        values = np.asarray(values, dtype=INDEX_DTYPE)
        out = np.zeros_like(values)
        if values.size:
            np.cumsum(values[:-1], out=out[1:])
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=2.0 * float(values.nbytes),
                ops=float(values.size) * 2.0,
            )
        )
        return out

    def reduce_sum(self, values: np.ndarray, label: str = "reduce") -> int:
        """Sum reduction (streaming read of the input)."""
        values = np.asarray(values)
        total = int(values.sum()) if values.size else 0
        self._device.charge(
            KernelCost(kernel=label, sequential_bytes=float(values.nbytes), ops=float(values.size))
        )
        return total

    def adjacent_unique_mask(self, sorted_rows: np.ndarray, label: str = "adjacent_unique") -> np.ndarray:
        """Mask of rows that differ from their predecessor in a sorted array.

        This is the HISA deduplication primitive (Section 4.2): after sorting
        all columns lexicographically, duplicates are adjacent and removed by
        comparing each tuple to its neighbour in a parallel scan.
        """
        rows = as_rows(sorted_rows)
        n = rows.shape[0]
        mask = host_adjacent_unique_mask([rows[:, col] for col in range(rows.shape[1])], n_rows=n)
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=2.0 * float(rows.nbytes) + float(n),
                ops=float(n) * max(1, rows.shape[1] if rows.ndim == 2 else 1),
            )
        )
        return mask

    def stream_compact(self, rows: np.ndarray, mask: np.ndarray, label: str = "stream_compact") -> np.ndarray:
        """Keep rows where ``mask`` is true (scan + scatter)."""
        rows = as_rows(rows)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != rows.shape[0]:
            raise ValueError("mask length must equal the number of rows")
        out = rows[mask]
        self._device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=float(rows.nbytes) + float(out.nbytes) + float(mask.size),
                ops=float(rows.shape[0]),
            )
        )
        return out

    def unique_rows(self, rows: np.ndarray, label: str = "unique_rows") -> np.ndarray:
        """Sort + adjacent-compare + compact: fully deduplicate a tuple array."""
        rows = as_rows(rows)
        if rows.shape[0] == 0:
            return rows
        sorted_rows = self.sort_rows(rows, label=f"{label}.sort")
        mask = self.adjacent_unique_mask(sorted_rows, label=f"{label}.mask")
        return self.stream_compact(sorted_rows, mask, label=f"{label}.compact")

    # ------------------------------------------------------------------
    # Random access charging helpers (hash table build / probe)
    # ------------------------------------------------------------------
    def random_access(
        self,
        n_accesses: int,
        bytes_per_access: float,
        ops_per_access: float = 1.0,
        divergence: float = 1.0,
        label: str = "random_access",
    ) -> None:
        """Charge ``n_accesses`` data-dependent memory accesses."""
        n_accesses = max(0, int(n_accesses))
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=float(n_accesses) * float(bytes_per_access),
                ops=float(n_accesses) * float(ops_per_access),
                divergence=float(divergence),
            )
        )

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------
    def binary_search_keys(
        self,
        n_needles: int,
        haystack_size: int,
        key_bytes: float,
        label: str = "binary_search_keys",
    ) -> None:
        """Charge a batch binary search of packed keys into a sorted array.

        This is the cost of the incremental merge path: each of the ``n``
        delta keys walks ``log2(|full|)`` random reads to find its insertion
        rank.  The NumPy work (``np.searchsorted`` on cached packed keys)
        happens inline in the caller.
        """
        n_needles = max(0, int(n_needles))
        depth = max(1.0, float(np.log2(max(2, int(haystack_size)))))
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=float(n_needles) * depth * float(key_bytes),
                sequential_bytes=float(n_needles) * (float(key_bytes) + 2.0 * INDEX_ITEMSIZE),
                ops=float(n_needles) * depth * 2.0,
            )
        )

    def searchsorted_rows(
        self,
        haystack_sorted: np.ndarray,
        needles: np.ndarray,
        label: str = "binary_search",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper bound search of ``needles`` in sorted ``haystack``.

        Returns ``(lower, upper)`` index arrays.  Charged as ``log2(n)``
        random reads per needle — the cost a tree/binary-search range lookup
        would pay, used by the CPU baseline and by HISA's sorted-array
        fallback when the hash index is disabled.
        """
        haystack = as_rows(haystack_sorted)
        needles = as_rows(needles)
        lower, upper = row_search_bounds(haystack, needles)
        n = needles.shape[0]
        depth = max(1.0, np.log2(max(2, haystack.shape[0])))
        row_bytes = max(TUPLE_ITEMSIZE, haystack.shape[1] * TUPLE_ITEMSIZE)
        self._device.charge(
            KernelCost(
                kernel=label,
                random_bytes=float(n) * depth * row_bytes,
                sequential_bytes=float(needles.nbytes) + 2.0 * float(n) * INDEX_ITEMSIZE,
                ops=float(n) * depth * 2.0,
            )
        )
        return lower, upper


# ----------------------------------------------------------------------
# Host-side helpers (pure functions, no device cost)
# ----------------------------------------------------------------------

def pack_rows(rows: np.ndarray) -> np.ndarray:
    """View each row as one opaque void scalar for exact set operations."""
    rows = as_rows(rows)
    if rows.shape[0] == 0:
        return np.empty(0, dtype=np.dtype((np.void, max(1, rows.shape[1]) * TUPLE_ITEMSIZE)))
    return np.ascontiguousarray(rows).view(np.dtype((np.void, rows.shape[1] * TUPLE_ITEMSIZE))).ravel()


def _lex_less_equal(prev: np.ndarray, curr: np.ndarray) -> np.ndarray:
    """Vectorised row-wise ``prev <= curr`` under lexicographic order."""
    n, arity = prev.shape
    result = np.zeros(n, dtype=bool)
    undecided = np.ones(n, dtype=bool)
    for col in range(arity):
        less = prev[:, col] < curr[:, col]
        greater = prev[:, col] > curr[:, col]
        result |= undecided & less
        undecided &= ~(less | greater)
    result |= undecided  # fully equal rows compare as <=
    return result


def row_search_bounds(haystack: np.ndarray, needles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lower/upper bounds of each needle row within a lexicographically sorted haystack."""
    if haystack.shape[0] == 0 or needles.shape[0] == 0:
        zeros = np.zeros(needles.shape[0], dtype=INDEX_DTYPE)
        return zeros, zeros.copy()
    if haystack.shape[1] != needles.shape[1]:
        raise ValueError("haystack and needles must have the same arity")
    hay_packed = lex_rank_keys(haystack)
    needle_packed = lex_rank_keys(needles, reference=haystack)
    lower = np.searchsorted(hay_packed, needle_packed, side="left").astype(INDEX_DTYPE)
    upper = np.searchsorted(hay_packed, needle_packed, side="right").astype(INDEX_DTYPE)
    return lower, upper


def lex_rank_keys(rows: np.ndarray, reference: np.ndarray | None = None) -> np.ndarray:
    """Map rows to sortable void keys preserving lexicographic order.

    int64 columns are converted to big-endian unsigned (offset by 2**63) so the
    raw byte comparison of the void view matches signed lexicographic order.
    ``reference`` is accepted for interface symmetry; keys are absolute.
    """
    rows = as_rows(rows)
    # Flip the sign bit so unsigned byte comparison matches signed order.
    unsigned = rows.view(np.uint64) ^ np.uint64(1 << 63)
    big_endian = unsigned.astype(">u8")
    return np.ascontiguousarray(big_endian).view(
        np.dtype((np.void, rows.shape[1] * 8))
    ).ravel()


def lex_rank_keys_columns(columns: "list[np.ndarray] | tuple[np.ndarray, ...]") -> np.ndarray:
    """Columnar :func:`lex_rank_keys`: pack per-column arrays into sort keys.

    Produces byte-identical keys to the row-array version, so the SoA and
    row pipelines share cached-key state interchangeably.
    """
    arity = len(columns)
    n = int(columns[0].shape[0]) if arity else 0
    big_endian = np.empty((n, arity), dtype=">u8")
    for position, column in enumerate(columns):
        column = np.asarray(column, dtype=TUPLE_DTYPE)
        big_endian[:, position] = column.view(np.uint64) ^ np.uint64(1 << 63)
    return big_endian.view(np.dtype((np.void, max(1, arity) * 8))).ravel()
