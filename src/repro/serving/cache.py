"""Compiled-program cache for the serving engine.

Loading a program into a :class:`~repro.serving.engine.ServingEngine` costs
real planning work: stratification, per-rule version planning, and — beyond
what the batch engine compiles — the *epoch version set* (one delta version
per rule per body atom, EDB atoms included) plus one full re-derive version
per rule for DRed.  None of that depends on the resident data, so a process
hosting many engines over the same rule set (or restarting an engine on the
same program) should pay it once.

:class:`ProgramCache` memoizes :class:`CompiledProgram` objects keyed by the
SHA-256 of the *interned* program text plus the planner name.  Hashing the
interned text (string constants already replaced by the engine's symbol ids)
is deliberate: symbol ids depend on interning order, so two engines whose
tables disagree produce different interned text and therefore different keys
— a shared cache can never hand an engine a plan whose constants were
interned by someone else's table.  Statistics-driven planners are keyed the
same way but compile stat-free here (serving plans are data-independent by
design; the adaptive replanner remains a batch-engine feature).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..datalog.analysis import ProgramAnalysis, analyze_program
from ..datalog.ast import Program
from ..datalog.planner import (
    Planner,
    ProgramPlan,
    RuleVersion,
    plan_program,
    version_required_indexes,
)

__all__ = ["CompiledProgram", "ProgramCache", "rule_set_hash"]


def rule_set_hash(program: Program, planner: str) -> str:
    """Stable cache key: SHA-256 over the interned rule text + planner name.

    Rule order is preserved (it is part of plan identity for the greedy
    planner), so the hash is deterministic for a given parsed program.
    """
    digest = hashlib.sha256()
    digest.update(planner.encode("utf-8"))
    for rule in program.rules:
        digest.update(b"\x00")
        digest.update(str(rule).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class CompiledProgram:
    """Everything data-independent the serving engine needs for one program."""

    key: str
    program: Program
    analysis: ProgramAnalysis
    plan: ProgramPlan
    #: one delta version per (rule, body-atom index) — the complete
    #: incremental-maintenance version set an insert epoch iterates
    epoch_versions: tuple[RuleVersion, ...]
    #: one full (delta-free) version per rule — DRed's re-derive probes
    full_versions: tuple[RuleVersion, ...]
    #: union of every index the plan, the epoch versions and the full
    #: versions probe; registered before relations initialize
    required_indexes: frozenset[tuple[str, tuple[int, ...]]] = field(default_factory=frozenset)

    @property
    def idb_relations(self) -> frozenset[str]:
        return frozenset(self.analysis.idb_relations)


def compile_program(program: Program, *, planner: str) -> CompiledProgram:
    """Compile one interned program into its serving artefacts (uncached)."""
    analysis = analyze_program(program)
    plan = plan_program(analysis, planner=planner)
    version_planner = Planner(analysis, planner=planner)
    epoch_versions: list[RuleVersion] = []
    full_versions: list[RuleVersion] = []
    for stratum in analysis.strata:
        for rule in stratum.rules:
            for atom_index in range(len(rule.body)):
                epoch_versions.append(version_planner.plan_version(rule, atom_index))
            full_versions.append(version_planner.plan_version(rule, None))
    required: set[tuple[str, tuple[int, ...]]] = set(plan.required_indexes())
    for version in (*epoch_versions, *full_versions):
        required.update(version_required_indexes(version))
    return CompiledProgram(
        key=rule_set_hash(program, planner),
        program=program,
        analysis=analysis,
        plan=plan,
        epoch_versions=tuple(epoch_versions),
        full_versions=tuple(full_versions),
        required_indexes=frozenset(required),
    )


class ProgramCache:
    """Thread-safe LRU cache of :class:`CompiledProgram` objects.

    One process-wide default instance backs every serving engine that is not
    handed an explicit cache; ``maxsize`` bounds the resident plans (least
    recently used programs are evicted first).  ``hits``/``misses`` are
    surfaced so the serving benchmark can assert the program actually loads
    once.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CompiledProgram]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, program: Program, *, planner: str) -> CompiledProgram:
        """Return the compiled form of ``program``, compiling on first use."""
        key = rule_set_hash(program, planner)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
        # Compile outside the lock — planning can be slow and is pure.
        compiled = compile_program(program, planner=planner)
        with self._lock:
            if key in self._entries:
                # Another thread compiled the same program meanwhile; keep
                # the incumbent so every engine shares one object.
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            self._entries[key] = compiled
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return compiled

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: Process-wide default cache shared by every engine not given its own.
DEFAULT_PROGRAM_CACHE = ProgramCache()
