"""Crash recovery: checkpoint + WAL replay back to the pre-crash state.

The recovery contract mirrors ARIES in miniature.  A live engine leaves two
durable artifacts behind:

* the **checkpoint store** — epoch-boundary (full, delta) state of every
  relation plus serving metadata (epoch counter, snapshot versions, symbol
  table, WAL horizon), written every ``checkpoint_every_epochs`` commits, and
* the **write-ahead log** — every acknowledged ``submit()`` batch, commit
  markers naming the batches each epoch folded in, and abort markers for
  batches that will never commit (rolled-back epochs, shed batches).

:func:`recover_engine` stitches them back together:

1. load the newest checkpoint and rebuild a :class:`ServingEngine` around it
   (program re-parsed from the interned source, symbol table restored,
   relations restored shard by shard, bootstrap skipped);
2. **redo**: replay each committed WAL group past the checkpoint's horizon
   as its own epoch, preserving the crashed engine's epoch boundaries — the
   delta fixpoint is deterministic, so the replayed database (and its
   per-relation version counters) matches the pre-crash one exactly;
3. **catch up**: fold every acknowledged-but-uncommitted batch into one
   final epoch that earns a fresh commit marker — those submitters held
   tickets, so their writes must survive;  aborted batches are skipped (the
   crashed engine told those submitters their epoch failed);
4. write a fresh checkpoint, compact the WAL behind it, and only then start
   the background worker.

The engine reports ``recovering`` health for the duration and returns to
``healthy`` once the final checkpoint lands.
"""

from __future__ import annotations

from ..datalog.ast import Program
from ..errors import CheckpointError
from ..relational.checkpoint import CheckpointStore
from .engine import HEALTH_HEALTHY, HEALTH_RECOVERING, ServingEngine
from .wal import WriteAheadLog

__all__ = ["recover_engine"]


def recover_engine(
    store: CheckpointStore,
    wal: "WriteAheadLog | None" = None,
    **engine_kwargs,
) -> ServingEngine:
    """Rebuild a :class:`ServingEngine` from its durable artifacts.

    ``engine_kwargs`` pass through to the engine constructor (device preset,
    ``background``, admission settings, ...).  The program, shard count, and
    planner always come from the checkpoint — they define the state being
    restored and are not overridable.
    """
    checkpoint = store.latest()
    if checkpoint is None:
        raise CheckpointError("checkpoint store holds no serving checkpoint to recover from")
    meta = (checkpoint.metadata or {}).get("serving")
    if not meta:
        raise CheckpointError(
            f"checkpoint {checkpoint.checkpoint_id!r} carries no serving metadata; "
            "it was not written by a ServingEngine"
        )
    for forbidden in ("num_shards", "planner"):
        if forbidden in engine_kwargs:
            raise CheckpointError(
                f"{forbidden!r} is defined by the checkpoint and cannot be overridden "
                "during recovery"
            )
    program = Program.parse(
        checkpoint.program_source, name=checkpoint.program_name or "serving"
    )
    engine = ServingEngine(
        program,
        None,
        num_shards=int(meta.get("num_shards", checkpoint.num_shards)),
        planner=str(meta.get("planner")) if meta.get("planner") else None,
        wal=wal,
        checkpoint_store=store,
        _restore=checkpoint,
        **engine_kwargs,
    )
    engine._health = HEALTH_RECOVERING
    try:
        _replay_wal(engine, wal)
    except BaseException:
        engine.crash()
        raise
    engine._health = HEALTH_HEALTHY
    engine._start_worker()
    return engine


def _replay_wal(engine: ServingEngine, wal: "WriteAheadLog | None") -> None:
    """Redo committed groups, then one catch-up epoch for pending batches."""
    if wal is not None:
        covered = max(engine._committed_seq, wal.covered_seq())
        for _epoch, batches in wal.committed_groups(after_seq=covered):
            engine._apply_replay(batches, commit=False)
        pending = wal.pending_batches()
        if pending:
            engine._apply_replay(pending, commit=True)
    # A fresh checkpoint makes the recovered state durable immediately — a
    # second crash before the first new epoch must not replay the log again
    # from the stale horizon.
    if engine.checkpoint_store is not None:
        engine._save_serving_checkpoint()
