"""Long-lived serving layer: resident state, differential epochs, snapshots.

The batch engines in :mod:`repro.engines` answer one query per process-like
``run()``: load, fixpoint, download, free.  This package keeps everything
resident instead — compiled plans in a :class:`ProgramCache`, per-relation
HISA state on the simulated device, and immutable :class:`RelationSnapshot`
commit copies for readers — so a stream of small insert/retract batches pays
O(|Δ|)-shaped epochs (semi-naïve from the injected delta, DRed for deletes)
instead of O(|database|) re-fixpoints.  See ``docs/serving.md``.
"""

from .cache import DEFAULT_PROGRAM_CACHE, CompiledProgram, ProgramCache, rule_set_hash
from .engine import ADMISSION_POLICIES, EpochResult, EpochTicket, ServingEngine
from .recovery import recover_engine
from .snapshot import RelationSnapshot, SnapshotTable, canonical_rows
from .wal import DiskWal, InMemoryWal, WalBatch, WriteAheadLog

__all__ = [
    "ADMISSION_POLICIES",
    "CompiledProgram",
    "DEFAULT_PROGRAM_CACHE",
    "DiskWal",
    "EpochResult",
    "EpochTicket",
    "InMemoryWal",
    "ProgramCache",
    "RelationSnapshot",
    "ServingEngine",
    "SnapshotTable",
    "WalBatch",
    "WriteAheadLog",
    "canonical_rows",
    "recover_engine",
    "rule_set_hash",
]
