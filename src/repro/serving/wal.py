"""Write-ahead mutation log: durability for serving submissions.

The serving engine acknowledges a ``submit()`` by returning a ticket; the
write-ahead log is what makes that acknowledgement mean something.  Every
batch is appended *before* it is admitted to the mutation queue, every
committed epoch writes a commit marker naming the batch sequence numbers it
folded in, and every aborted epoch (rolled back after the fault ladder
exhausted) writes an abort marker — so after a process crash the log
partitions cleanly into *committed* groups (replayable epoch by epoch),
*aborted* batches (never to be replayed), and *pending* batches (accepted
but not yet committed; recovery applies them).

Mirroring :mod:`repro.relational.checkpoint`, two backends are provided:

* :class:`InMemoryWal` — a host list; survives engine restarts within one
  process, used by tests and the overhead benchmark's ablation, and
* :class:`DiskWal` — one JSON record per line, appended on every batch and
  ``fsync``'d when a **commit marker** lands (the classic group-commit
  point: batch appends may sit in the page cache, but an epoch is only
  acknowledged as committed once its marker — and therefore every record
  before it — is durable).

Records are value-encoded (interned int64 rows plus the symbol-table
entries each batch registered), so replay does not depend on any in-memory
state of the crashed process.  ``compact(covered_seq)`` drops records a
checkpoint already covers; recovery is ``checkpoint + replay`` as in any
ARIES-shaped design.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..errors import WalError

__all__ = [
    "DiskWal",
    "InMemoryWal",
    "WalBatch",
    "WriteAheadLog",
]

RECORD_BATCH = "batch"
RECORD_COMMIT = "commit"
RECORD_ABORT = "abort"
RECORD_CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class WalBatch:
    """One logged ``submit()`` batch, value-encoded for replay.

    ``inserts``/``retracts`` hold interned int64 rows (exactly what the
    engine's encoder produced); ``symbols`` carries the symbol-table entries
    this batch's encoding registered, so a recovering engine re-interns
    identically before replaying.
    """

    seq: int
    inserts: dict[str, list[tuple[int, ...]]] = field(default_factory=dict)
    retracts: dict[str, list[tuple[int, ...]]] = field(default_factory=dict)
    symbols: tuple[tuple[str, int], ...] = ()

    @property
    def mutation_count(self) -> int:
        total = sum(len(rows) for rows in self.inserts.values())
        return total + sum(len(rows) for rows in self.retracts.values())


def _encode_rows_map(rows_map: dict) -> dict:
    return {
        name: [[int(value) for value in row] for row in rows]
        for name, rows in (rows_map or {}).items()
    }


def _decode_rows_map(payload: dict) -> dict[str, list[tuple[int, ...]]]:
    return {
        name: [tuple(int(value) for value in row) for row in rows]
        for name, rows in (payload or {}).items()
    }


def _batch_from_record(record: dict) -> WalBatch:
    return WalBatch(
        seq=int(record["seq"]),
        inserts=_decode_rows_map(record.get("inserts")),
        retracts=_decode_rows_map(record.get("retracts")),
        symbols=tuple((str(s), int(i)) for s, i in record.get("symbols", [])),
    )


class WriteAheadLog:
    """Interface + shared record bookkeeping for both WAL backends.

    Subclasses implement :meth:`_persist` (append one record, optionally
    making everything so far durable) and :meth:`_rewrite` (replace the
    whole record list — compaction).  All queries run over the in-memory
    record list, which both backends keep authoritative.
    """

    def __init__(self) -> None:
        self._records: list[dict] = []
        #: commit markers appended (each one is an fsync point on disk)
        self.commits = 0
        #: fsync calls the backend actually performed
        self.syncs = 0

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    def _persist(self, record: dict, *, sync: bool) -> None:
        raise NotImplementedError

    def _rewrite(self, records: list[dict]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (no-op for the in-memory log)."""

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append_batch(
        self,
        inserts: dict | None,
        retracts: dict | None,
        *,
        symbols: "tuple[tuple[str, int], ...] | list" = (),
    ) -> int:
        """Log one submission; returns its sequence number (1-based)."""
        seq = self.last_seq() + 1
        record = {
            "type": RECORD_BATCH,
            "seq": seq,
            "inserts": _encode_rows_map(inserts or {}),
            "retracts": _encode_rows_map(retracts or {}),
            "symbols": [[str(s), int(i)] for s, i in (symbols or ())],
        }
        self._records.append(record)
        self._persist(record, sync=False)
        return seq

    def append_commit(self, epoch: int, seqs: "list[int]") -> None:
        """Log an epoch commit covering ``seqs`` — the durability point.

        The disk backend fsyncs here: every batch record written before
        this marker becomes durable together with it.
        """
        self._validate_seqs(seqs, marker="commit")
        record = {"type": RECORD_COMMIT, "epoch": int(epoch), "seqs": [int(s) for s in seqs]}
        self._records.append(record)
        self.commits += 1
        self._persist(record, sync=True)

    def append_abort(self, seqs: "list[int]", *, reason: str = "") -> None:
        """Log that ``seqs`` will never commit (rolled back, shed, or closed)."""
        self._validate_seqs(seqs, marker="abort")
        record = {"type": RECORD_ABORT, "seqs": [int(s) for s in seqs], "reason": str(reason)}
        self._records.append(record)
        self._persist(record, sync=True)

    def append_checkpoint(self, epoch: int, covered_seq: int, *, checkpoint_id: str = "") -> None:
        """Note that a durable checkpoint covers every batch up to ``covered_seq``."""
        record = {
            "type": RECORD_CHECKPOINT,
            "epoch": int(epoch),
            "covered_seq": int(covered_seq),
            "checkpoint_id": str(checkpoint_id),
        }
        self._records.append(record)
        self._persist(record, sync=True)

    def _validate_seqs(self, seqs, *, marker: str) -> None:
        if not seqs:
            raise WalError(f"a {marker} marker must cover at least one batch")
        known = {r["seq"] for r in self._records if r["type"] == RECORD_BATCH}
        unknown = [int(s) for s in seqs if int(s) not in known]
        if unknown:
            raise WalError(f"{marker} marker references unlogged batches {unknown}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """Every record, oldest first (copies — callers cannot corrupt the log)."""
        return [dict(record) for record in self._records]

    def last_seq(self) -> int:
        seqs = [r["seq"] for r in self._records if r["type"] == RECORD_BATCH]
        return max(seqs) if seqs else 0

    def covered_seq(self) -> int:
        """Highest batch sequence a checkpoint record covers (0 = none)."""
        covered = [r["covered_seq"] for r in self._records if r["type"] == RECORD_CHECKPOINT]
        return max(covered) if covered else 0

    def resolved_seqs(self) -> set[int]:
        """Sequences a commit or abort marker has settled."""
        resolved: set[int] = set()
        for record in self._records:
            if record["type"] in (RECORD_COMMIT, RECORD_ABORT):
                resolved.update(int(s) for s in record["seqs"])
        return resolved

    def aborted_seqs(self) -> set[int]:
        aborted: set[int] = set()
        for record in self._records:
            if record["type"] == RECORD_ABORT:
                aborted.update(int(s) for s in record["seqs"])
        return aborted

    def pending_batches(self) -> list[WalBatch]:
        """Batches appended but never committed or aborted, oldest first."""
        resolved = self.resolved_seqs()
        return [
            _batch_from_record(record)
            for record in self._records
            if record["type"] == RECORD_BATCH and record["seq"] not in resolved
        ]

    def committed_groups(self, after_seq: int = 0) -> list[tuple[int, list[WalBatch]]]:
        """Committed epochs whose batches reach past ``after_seq``, in order.

        Each element is ``(epoch, batches)`` for one commit marker —
        recovery replays each group as one coalesced epoch, reproducing the
        pre-crash epoch boundaries exactly.
        """
        by_seq = {
            record["seq"]: record
            for record in self._records
            if record["type"] == RECORD_BATCH
        }
        groups: list[tuple[int, list[WalBatch]]] = []
        for record in self._records:
            if record["type"] != RECORD_COMMIT:
                continue
            seqs = [int(s) for s in record["seqs"]]
            if max(seqs) <= after_seq:
                continue
            try:
                batches = [_batch_from_record(by_seq[s]) for s in sorted(seqs)]
            except KeyError as error:
                raise WalError(
                    f"commit marker for epoch {record['epoch']} references a "
                    f"compacted batch {error.args[0]!r} past covered_seq {after_seq}"
                ) from None
            groups.append((int(record["epoch"]), batches))
        return groups

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, covered_seq: int) -> None:
        """Drop records a checkpoint at ``covered_seq`` makes redundant.

        Batch records with ``seq <= covered_seq`` and markers that only
        reference such batches are removed; a fresh checkpoint record keeps
        the covered horizon discoverable after reopening the log.
        """
        covered_seq = int(covered_seq)
        kept: list[dict] = []
        for record in self._records:
            if record["type"] == RECORD_BATCH and record["seq"] <= covered_seq:
                continue
            if record["type"] in (RECORD_COMMIT, RECORD_ABORT) and all(
                int(s) <= covered_seq for s in record["seqs"]
            ):
                continue
            if record["type"] == RECORD_CHECKPOINT and record["covered_seq"] < covered_seq:
                continue
            kept.append(record)
        if not any(r["type"] == RECORD_CHECKPOINT for r in kept):
            kept.insert(0, {
                "type": RECORD_CHECKPOINT,
                "epoch": -1,
                "covered_seq": covered_seq,
                "checkpoint_id": "",
            })
        self._records = kept
        self._rewrite(kept)


class InMemoryWal(WriteAheadLog):
    """Host-memory log: transactional semantics without durability.

    Survives engine restarts within one process (hand the same instance to
    :meth:`ServingEngine.recover`); used by tests and as the zero-I/O
    ablation in the protection-overhead benchmark.
    """

    def _persist(self, record: dict, *, sync: bool) -> None:
        if sync:
            self.syncs += 1  # the in-memory analogue: count the barrier

    def _rewrite(self, records: list[dict]) -> None:
        pass


class DiskWal(WriteAheadLog):
    """JSON-lines log at ``path``, surviving process restarts.

    Opening an existing path replays its records into memory (recovery
    reads the same view a live engine had).  A truncated final line — the
    signature of a crash mid-append — is discarded: the batch it held was
    never acknowledged durable, because only commit markers fsync.
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        break  # torn tail write: everything after is garbage
                    self._records.append(record)
        self._handle = open(self.path, "a", encoding="utf-8")

    def _persist(self, record: dict, *, sync: bool) -> None:
        if self._handle is None:
            raise WalError(f"write-ahead log {self.path!r} is closed")
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        if sync:
            os.fsync(self._handle.fileno())
            self.syncs += 1

    def _rewrite(self, records: list[dict]) -> None:
        if self._handle is not None:
            self._handle.close()
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
