"""Versioned, immutable per-relation snapshots for consistent serving reads.

HISA merges mutate storage in place, so a reader holding a device view while
an epoch merges would observe torn state.  The serving engine therefore
serves *immutable copies*: when an epoch changes a relation it bumps the
relation's version, and the first query of the stale relation downloads the
full version once (the charged D2H edge), canonicalizes it to lexicographic
row order host-side, freezes it, and installs it in the
:class:`SnapshotTable` under its lock.  Readers get whichever immutable
snapshot matches the committed version — never a half-merged epoch — and two
engines that reach the same logical database publish byte-identical arrays
regardless of epoch history or shard count (canonical order erases merge and
shard-concatenation order).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RelationSnapshot", "SnapshotTable"]


def canonical_rows(rows: np.ndarray, arity: int) -> np.ndarray:
    """Lex-sorted, read-only copy of host rows — the canonical snapshot form.

    Host-side post-processing of the already-downloaded result (like result
    decoding in the batch engine): the charged work is the D2H transfer the
    caller paid; the sort only canonicalizes presentation order.
    """
    rows = np.asarray(rows, dtype=np.int64).reshape(-1, arity)
    if rows.shape[0] > 1:
        order = np.lexsort(tuple(rows[:, column] for column in reversed(range(arity))))
        rows = rows[order]
    rows = np.ascontiguousarray(rows)
    rows.setflags(write=False)
    return rows


@dataclass(frozen=True)
class RelationSnapshot:
    """One immutable, canonically-ordered copy of a relation's full version."""

    name: str
    #: monotonically increasing per-relation version (bumped when an epoch
    #: changes the relation; unchanged relations keep their snapshot)
    version: int
    #: epoch that committed this snapshot (0 = the bootstrap fixpoint)
    epoch: int
    #: read-only ``(n, arity)`` int64 host rows in lexicographic order
    rows: np.ndarray = field(repr=False)

    @property
    def count(self) -> int:
        return int(self.rows.shape[0])

    def as_set(self) -> set[tuple[int, ...]]:
        return {tuple(int(value) for value in row) for row in self.rows}


class SnapshotTable:
    """Thread-safe map of the newest :class:`RelationSnapshot` per relation.

    Publication is atomic per epoch: the committing thread swaps every
    changed relation's snapshot inside one lock acquisition, so a reader
    never sees relation A from epoch N next to relation B from epoch N-1
    within a single :meth:`publish` generation... readers that fetch two
    relations sequentially can still interleave with a commit, which is why
    :meth:`read_many` exists for multi-relation consistency.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots: dict[str, RelationSnapshot] = {}

    def publish(self, snapshots: dict[str, RelationSnapshot]) -> None:
        """Atomically install the given snapshots (one epoch's commit set)."""
        with self._lock:
            self._snapshots.update(snapshots)

    def read(self, name: str) -> RelationSnapshot:
        with self._lock:
            try:
                return self._snapshots[name]
            except KeyError:
                raise KeyError(f"no snapshot for relation {name!r}") from None

    def read_many(self, names: list[str]) -> dict[str, RelationSnapshot]:
        """One consistent cut across several relations (single lock hold)."""
        with self._lock:
            return {name: self._snapshots[name] for name in names}

    def version(self, name: str) -> int:
        return self.read(name).version

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._snapshots)

    def discard_newer(self, versions: dict[str, int]) -> list[str]:
        """Drop any snapshot whose version exceeds its committed ``versions`` pin.

        The rollback barrier: an aborted epoch restores relations and leaves
        the committed version map untouched, so a snapshot ahead of its pin
        could only describe rolled-back state and must not be served.  (The
        engine bumps versions strictly after the epoch's device work, so this
        is a belt-and-braces invariant check more than a hot path.)  Returns
        the names discarded.
        """
        with self._lock:
            stale = [
                name
                for name, snapshot in self._snapshots.items()
                if snapshot.version > versions.get(name, snapshot.version)
            ]
            for name in stale:
                del self._snapshots[name]
            return stale
