"""Long-lived serving engine: differential fixpoints over resident relations.

Every batch-engine run is one-shot: load facts, run the fixpoint, download
results, free everything.  A client that inserts ten facts into a loaded
database re-derives the whole IDB from scratch — throwing away exactly the
O(Δ) semi-naïve machinery the evaluator is built on.  :class:`ServingEngine`
keeps the machinery *resident*:

* the program is compiled once through the shared
  :class:`~repro.serving.cache.ProgramCache` (keyed by rule-set hash), which
  also precompiles the *epoch version set* — one delta version per rule per
  body atom, EDB atoms included — and one full re-derive version per rule;
* per-relation HISA state stays on the simulated device across requests;
* :meth:`submit` enqueues insertions/retractions and returns a ticket; all
  mutations pending when an epoch starts are **coalesced** into one epoch
  (last-writer-wins per tuple), which runs semi-naïve **from the injected
  delta only** via the evaluator's ``delta_fixpoint`` entry point;
* retractions run **DRed** (delete-and-re-derive): over-delete the deletion
  cone with delta versions shadow-seeded from the retract set, apply the
  deletions with retraction-aware index rebuilds, re-derive survivors with
  the full versions, then propagate re-insertions through the same delta
  fixpoint as ordinary inserts;
* :meth:`query` reads per-relation **versioned snapshots**
  (:mod:`repro.serving.snapshot`): immutable canonical copies, materialized
  lazily — a commit only bumps the changed relations' versions, and the
  charged D2H download happens on the first query of a stale relation.
  Repeat reads of an unchanged relation never block on in-flight epochs.

Charged-cost boundaries are unchanged from the batch engine: seed rows and
retract probes pay H2D, snapshot materialization pays D2H (on the query
path, so epoch latency prices exactly the incremental maintenance), and
every kernel an epoch launches (joins, merges, retraction rebuilds, shard
exchanges) goes through the same cost model — epoch latencies in simulated
seconds are directly comparable to a full re-fixpoint of the same program.

Epochs are **transactions** (``transactional=True``, the default): the
engine keeps a host copy of every relation's state as of the last committed
epoch, and a fault inside an epoch — kernel fault, injected OOM, exchange
error, shard crash, all scriptable via :class:`~repro.device.faults.
FaultPlan` — first rides the evaluators' own retry/backoff ladder and then,
at the serving layer, triggers whole-epoch rollback-and-replay.  When the
epoch retry budget is also exhausted the epoch **aborts**: state and
snapshot versions roll back to the last commit, only that epoch's tickets
fail (with :class:`~repro.errors.EpochAborted`), and reads keep serving the
pre-epoch snapshots.  With a :class:`~repro.serving.wal.WriteAheadLog` every
submission is logged before its ticket is returned and every commit writes
a durable marker; together with a periodic checkpoint into a
:class:`~repro.relational.checkpoint.CheckpointStore`,
:meth:`ServingEngine.recover` rebuilds a crashed engine to the exact
pre-crash state (checkpoint + committed-group replay + one catch-up epoch
for acknowledged-but-uncommitted batches).  A bounded mutation queue
(``max_pending`` + ``block``/``reject``/``shed-oldest`` policies), a health
state machine (``healthy → degraded → recovering``), and backlog-widened
coalescing windows keep the engine graceful under overload.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from concurrent.futures import Future
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence, Union

import numpy as np

from ..datalog.ast import Program
from ..datalog.engine import (
    OVERLAP_ENV_VAR,
    SEMIJOIN_ENV_VAR,
    FactValue,
    SymbolTable,
    _default_num_shards,
    _default_planner,
    _env_flag,
    intern_program,
)
from ..datalog.planner import PLANNERS, RuleVersion
from ..datalog.seminaive import SemiNaiveEvaluator
from ..datalog.sharded import (
    DEFAULT_REPLICATE_MAX_BYTES,
    ShardedSemiNaiveEvaluator,
    shard_columns_for_plan,
)
from ..device.device import Device
from ..device.profiler import PHASE_CHECKPOINT, PHASE_LOAD
from ..device.spec import DeviceSpec, device_preset
from ..errors import (
    AdmissionRejected,
    CheckpointError,
    DeviceBufferError,
    DeviceError,
    EngineClosed,
    EpochAborted,
    ExchangeError,
    FixpointInterrupted,
    SchemaError,
)
from ..relational.checkpoint import (
    CheckpointStore,
    EvaluationCheckpoint,
    RelationState,
)
from ..relational.columnbatch import ColumnBatch
from ..relational.relation import Relation
from ..relational.sharded import ShardedRelation
from .cache import DEFAULT_PROGRAM_CACHE, CompiledProgram, ProgramCache
from .snapshot import RelationSnapshot, SnapshotTable, canonical_rows
from .wal import WalBatch, WriteAheadLog

__all__ = ["ADMISSION_POLICIES", "EpochResult", "EpochTicket", "ServingEngine"]

#: Admission policies for a bounded mutation queue (``max_pending``):
#: ``block`` waits for space (until ``admission_timeout``), ``reject`` raises
#: :class:`AdmissionRejected` immediately, ``shed-oldest`` drops the oldest
#: queued batch (failing its ticket) to admit the newcomer.
ADMISSION_POLICIES = ("block", "reject", "shed-oldest")

#: Health states: ``healthy`` (committing normally), ``degraded`` (backlog at
#: or above the overload threshold, shedding, or a recent abort), and
#: ``recovering`` (mid rollback/replay, or replaying a WAL after a crash).
HEALTH_HEALTHY = "healthy"
HEALTH_DEGRADED = "degraded"
HEALTH_RECOVERING = "recovering"

FactRows = Iterable[Sequence[FactValue]]


@dataclass(frozen=True)
class EpochResult:
    """What one committed epoch did, in counts and charged time."""

    #: epoch number (1-based; 0 is the bootstrap fixpoint)
    epoch: int
    #: submissions coalesced into this epoch
    coalesced: int
    #: delta-fixpoint iterations the epoch ran (0 = every seed already known)
    iterations: int
    #: seed rows injected per relation (client inserts + DRed re-derivations)
    inserted: dict[str, int] = field(default_factory=dict)
    #: rows actually removed per relation, cascaded deletions included
    retracted: dict[str, int] = field(default_factory=dict)
    #: over-deleted rows that survived DRed re-derivation, per relation
    rederived: dict[str, int] = field(default_factory=dict)
    #: simulated seconds the epoch charged (max over shard devices)
    simulated_seconds: float = 0.0
    #: host wall-clock seconds the epoch took
    host_seconds: float = 0.0
    #: snapshot versions this epoch published (changed relations only)
    snapshot_versions: dict[str, int] = field(default_factory=dict)
    #: whole-epoch attempts the transaction ladder needed (1 = no fault)
    attempts: int = 1
    #: engine health at commit time (``healthy`` / ``degraded``)
    health: str = HEALTH_HEALTHY

    @property
    def changed_relations(self) -> tuple[str, ...]:
        return tuple(sorted(self.snapshot_versions))


class EpochTicket:
    """Handle returned by :meth:`ServingEngine.submit`.

    Resolves to the :class:`EpochResult` of the epoch that committed the
    submission (several tickets share one result when their submissions
    coalesce).  In synchronous engines (``background=False``) calling
    :meth:`result` flushes pending mutations first, so a ticket never
    deadlocks waiting for a worker that does not exist.
    """

    def __init__(self, engine: "ServingEngine", future: "Future[EpochResult]") -> None:
        self._engine = engine
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None) -> EpochResult:
        if not self._future.done() and not self._engine.background:
            self._engine.flush()
        return self._future.result(timeout)


@dataclass
class _Mutation:
    inserts: dict[str, list[tuple[int, ...]]]
    retracts: dict[str, list[tuple[int, ...]]]
    future: "Future[EpochResult]"
    #: write-ahead-log sequence number (0 = engine runs without a WAL)
    seq: int = 0


class ServingEngine:
    """A resident GPU Datalog database with incremental epochs and snapshots."""

    def __init__(
        self,
        program: Union[Program, str],
        facts: Mapping[str, FactRows] | None = None,
        *,
        device: Union[DeviceSpec, str] = "h100",
        memory_capacity_bytes: int | None = None,
        num_shards: int | None = None,
        planner: str | None = None,
        backend: "str | None" = None,
        columnar: bool = True,
        load_factor: float = 0.8,
        eager_buffers: bool = True,
        buffer_growth_factor: float = 8.0,
        incremental_merge: bool = True,
        max_iterations: int = 1_000_000,
        semijoin_filter: bool | None = None,
        overlap: bool | None = None,
        replicate_max_bytes: int = DEFAULT_REPLICATE_MAX_BYTES,
        cache: ProgramCache | None = None,
        background: bool = True,
        fault_plan: "str | None" = None,
        name: str | None = None,
        transactional: bool = True,
        epoch_retries: int = 2,
        wal: WriteAheadLog | None = None,
        checkpoint_store: CheckpointStore | None = None,
        checkpoint_every_epochs: int = 1,
        max_pending: int | None = None,
        admission_policy: str = "block",
        admission_timeout: float | None = None,
        overload_threshold: int | None = None,
        coalesce_window: float = 0.0,
        max_coalesce_window: float = 0.05,
        _restore: EvaluationCheckpoint | None = None,
    ) -> None:
        if isinstance(program, str):
            program = Program.parse(program, name=name or "serving")
        resolved_shards = num_shards if num_shards is not None else _default_num_shards()
        if resolved_shards < 1:
            raise SchemaError(f"num_shards must be >= 1, got {resolved_shards}")
        resolved_planner = _default_planner() if planner is None else str(planner)
        if resolved_planner not in PLANNERS:
            raise SchemaError(
                f"unknown planner {resolved_planner!r}; expected one of {', '.join(PLANNERS)}"
            )
        if admission_policy not in ADMISSION_POLICIES:
            raise SchemaError(
                f"unknown admission policy {admission_policy!r}; "
                f"expected one of {', '.join(ADMISSION_POLICIES)}"
            )
        if max_pending is not None and int(max_pending) < 1:
            raise SchemaError(f"max_pending must be >= 1, got {max_pending}")
        self.num_shards = int(resolved_shards)
        self.planner = resolved_planner
        self.columnar = bool(columnar)
        self.background = bool(background)
        self.cache = cache if cache is not None else DEFAULT_PROGRAM_CACHE
        self.symbols = SymbolTable()

        # Transaction / durability / admission configuration.
        self.transactional = bool(transactional)
        self.epoch_retries = int(epoch_retries)
        self.wal = wal
        self.checkpoint_store = checkpoint_store
        self.checkpoint_every_epochs = max(1, int(checkpoint_every_epochs))
        self.max_pending = None if max_pending is None else int(max_pending)
        self.admission_policy = admission_policy
        self.admission_timeout = None if admission_timeout is None else float(admission_timeout)
        self.overload_threshold = None if overload_threshold is None else int(overload_threshold)
        self.coalesce_window = float(coalesce_window)
        self.max_coalesce_window = float(max_coalesce_window)
        #: epochs the transaction ladder aborted (state rolled back)
        self.epoch_aborts = 0
        #: batches dropped by the ``shed-oldest`` admission policy
        self.shed_batches = 0
        #: worker waits widened to ``max_coalesce_window`` under backlog
        self.widened_windows = 0
        self._health = HEALTH_HEALTHY
        self._replaying = False
        self._committed_seq = 0
        #: host state of every relation as of the last committed epoch —
        #: the rollback target, refreshed per commit for changed relations
        self._epoch_states: dict[str, RelationState] = {}

        serving_meta: dict | None = None
        if _restore is not None:
            serving_meta = (_restore.metadata or {}).get("serving")
            if not serving_meta:
                raise CheckpointError(
                    "checkpoint carries no serving metadata; it was not written "
                    "by a ServingEngine"
                )
            # Restore the symbol table first: the interned program source and
            # every logged batch encode through these exact identifiers.
            self.symbols.restore_entries(serving_meta.get("symbols", ()))

        spec = device_preset(device) if isinstance(device, str) else device
        # Resolve the fault plan once (explicit argument or REPRO_FAULT_PLAN)
        # and share the instance across every shard device, so occurrence
        # counters are cluster-global — the batch engine's convention.  The
        # primary resolves; siblings get the instance or an explicit "none"
        # (which stops them re-resolving the environment into fresh plans).
        self.devices = [
            Device(spec, memory_capacity_bytes=memory_capacity_bytes, backend=backend,
                   fault_plan=fault_plan)
        ]
        shared_plan = self.devices[0].fault_plan
        self.devices += [
            Device(
                spec,
                memory_capacity_bytes=memory_capacity_bytes,
                backend=backend,
                fault_plan=shared_plan if shared_plan is not None else "none",
            )
            for _ in range(self.num_shards - 1)
        ]
        self.device = self.devices[0]

        # ------------------------------------------------------------------
        # Compile (cached) and resolve the schema.
        # ------------------------------------------------------------------
        self.program = intern_program(program, self.symbols)
        self.compiled: CompiledProgram = self.cache.get(self.program, planner=self.planner)
        self._arities = dict(self.program.relation_arities())
        if _restore is not None:
            # Fact-only relations no rule mentions adopted their arity from
            # the original constructor facts; re-adopt from the checkpoint.
            for state in _restore.relations.values():
                self._arities.setdefault(state.name, state.arity)
        staged_facts: dict[str, np.ndarray] = {}
        for relation_name, rows in (facts or {}).items():
            encoded = self._encode_rows(relation_name, rows, register=True)
            staged_facts[relation_name] = encoded

        # ------------------------------------------------------------------
        # Build resident relations, registering *every* index any plan —
        # bootstrap, epoch delta versions, DRed full versions — will probe,
        # before the first initialize (indexes then ride the shared sort).
        # ------------------------------------------------------------------
        relation_config = dict(
            load_factor=float(load_factor),
            eager_buffers=bool(eager_buffers),
            buffer_growth_factor=float(buffer_growth_factor),
            incremental_merge=bool(incremental_merge),
        )
        self.relations: dict[str, Relation | ShardedRelation] = {}
        if self.num_shards > 1:
            shard_columns = shard_columns_for_plan(self.compiled.plan, self._arities)
            for relation_name, arity in self._arities.items():
                self.relations[relation_name] = ShardedRelation(
                    self.devices,
                    relation_name,
                    arity,
                    shard_column=shard_columns.get(relation_name, 0),
                    **relation_config,
                )
        else:
            for relation_name, arity in self._arities.items():
                self.relations[relation_name] = Relation(
                    self.device, relation_name, arity, **relation_config
                )
        for relation_name, columns in self.compiled.required_indexes:
            relation = self.relations.get(relation_name)
            if relation is not None:
                relation.require_index(columns)

        # ------------------------------------------------------------------
        # Load the EDB, run the bootstrap fixpoint, publish snapshot v1.
        # ------------------------------------------------------------------
        idb = self.compiled.idb_relations
        idb_facts: dict[str, np.ndarray] = {}
        with ExitStack() as stack:
            for dev in self.devices:
                stack.enter_context(dev.profiler.phase(PHASE_LOAD))
            for relation_name, relation in self.relations.items():
                if _restore is not None:
                    # Recovery path: initialize everything empty so the
                    # checkpoint restore below has live HISA state to replace.
                    relation.initialize(np.empty((0, relation.arity), dtype=np.int64))
                    continue
                rows = staged_facts.get(
                    relation_name, np.empty((0, relation.arity), dtype=np.int64)
                )
                if relation_name in idb:
                    if rows.shape[0]:
                        idb_facts[relation_name] = rows
                else:
                    relation.initialize(rows)

        if self.num_shards > 1:
            self._evaluator: SemiNaiveEvaluator | ShardedSemiNaiveEvaluator = (
                ShardedSemiNaiveEvaluator(
                    self.devices,
                    self.compiled.plan,
                    self.relations,
                    max_iterations=int(max_iterations),
                    program_name=self.program.name,
                    program_source=str(self.program),
                    semijoin_filter=(
                        _env_flag(SEMIJOIN_ENV_VAR, True)
                        if semijoin_filter is None
                        else bool(semijoin_filter)
                    ),
                    overlap=_env_flag(OVERLAP_ENV_VAR, True) if overlap is None else bool(overlap),
                    replicate_max_bytes=int(replicate_max_bytes),
                )
            )
        else:
            self._evaluator = SemiNaiveEvaluator(
                self.device,
                self.compiled.plan,
                self.relations,
                columnar=self.columnar,
                max_iterations=int(max_iterations),
                program_name=self.program.name,
                program_source=str(self.program),
            )
        self.last_epoch: EpochResult | None = None
        self.snapshots = SnapshotTable()
        if _restore is None:
            self.bootstrap_stats: "object | None" = self._evaluator.evaluate(idb_facts)
            # Invariant: between epochs every delta is empty.  ``initialize``
            # leaves EDB deltas holding *all* rows (they are never end_iterated
            # by the bootstrap), which would make the first epoch re-join the
            # entire EDB as if it were new.
            for relation in self.relations.values():
                relation.clear_delta()
            self.epoch = 0
            # Snapshots are *lazy*: a commit only bumps the per-relation
            # version; the charged D2H download happens on the first query of
            # a changed relation.  Epoch latency therefore prices exactly the
            # incremental maintenance work, and relations nobody reads are
            # never downloaded.
            self._versions = {name: 1 for name in self.relations}
            self._changed_epoch = {name: 0 for name in self.relations}
        else:
            # Recovery: skip the bootstrap fixpoint and load the checkpoint's
            # (full, delta) partitions instead — deltas are empty at an epoch
            # boundary, so the between-epoch invariant holds by construction.
            self.bootstrap_stats = None
            for relation_name, relation in self.relations.items():
                state = _restore.relations.get(relation_name)
                if state is None:
                    raise CheckpointError(
                        f"checkpoint {_restore.checkpoint_id!r} is missing "
                        f"relation {relation_name!r}"
                    )
                if isinstance(relation, ShardedRelation):
                    relation.restore(state)
                else:
                    relation.restore(state.partitions[0])
            if isinstance(self._evaluator, ShardedSemiNaiveEvaluator):
                self._evaluator._invalidate_exchange_state()
            assert serving_meta is not None
            self.epoch = int(serving_meta.get("epoch", 0))
            self._versions = {
                str(k): int(v) for k, v in serving_meta.get("versions", {}).items()
            }
            self._changed_epoch = {
                str(k): int(v) for k, v in serving_meta.get("changed_epoch", {}).items()
            }
            for relation_name in self.relations:
                self._versions.setdefault(relation_name, 1)
                self._changed_epoch.setdefault(relation_name, 0)
            self._committed_seq = int(serving_meta.get("covered_seq", 0))
            # The checkpoint's host partitions double as the rollback target.
            self._epoch_states = dict(_restore.relations)

        # ------------------------------------------------------------------
        # Mutation queue + optional background epoch worker.
        # ------------------------------------------------------------------
        self._engine_lock = threading.RLock()
        self._queue = threading.Condition()
        self._pending: list[_Mutation] = []
        self._inflight = False
        self._inflight_batch: list[_Mutation] | None = None
        self._closed = False
        self._worker: threading.Thread | None = None
        #: seconds close() waits for the worker before declaring it stuck
        self._close_join_timeout = 30.0

        if _restore is None:
            if self.transactional or self.checkpoint_store is not None:
                # Epoch-0 baseline: the state every first-epoch rollback (and
                # every recovery with no later checkpoint) returns to.
                self._epoch_states = {
                    name: self._capture(name) for name in self.relations
                }
            if self.checkpoint_store is not None:
                self._save_serving_checkpoint()
            self._start_worker()
        # In recovery mode the caller (ServingEngine.recover) replays the WAL
        # before starting the worker, so replay epochs cannot interleave with
        # fresh submissions.

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(
        self,
        inserts: Mapping[str, FactRows] | None = None,
        retracts: Mapping[str, FactRows] | None = None,
    ) -> EpochTicket:
        """Enqueue a mutation batch; returns a ticket for its epoch's result.

        Everything pending when the next epoch starts is coalesced into that
        one epoch.  Within an epoch the submissions' serial order is
        honoured per tuple (last writer wins): retract-then-insert nets to
        the row being present, insert-then-retract to absent.
        """
        symbol_mark = len(self.symbols)
        encoded_inserts = {
            relation_name: [tuple(row) for row in self._encode_rows(relation_name, rows)]
            for relation_name, rows in (inserts or {}).items()
        }
        encoded_retracts = {
            relation_name: [tuple(row) for row in self._encode_rows(relation_name, rows)]
            for relation_name, rows in (retracts or {}).items()
        }
        new_symbols = self.symbols.entries_from(symbol_mark)
        mutation = _Mutation(encoded_inserts, encoded_retracts, Future())
        deadline = (
            None
            if self.admission_timeout is None
            else time.monotonic() + self.admission_timeout
        )
        with self._queue:
            if self._closed:
                raise EngineClosed("serving engine is closed")
            while self.max_pending is not None and len(self._pending) >= self.max_pending:
                if self.admission_policy == "reject":
                    raise AdmissionRejected(
                        f"mutation queue is full ({len(self._pending)} pending, "
                        f"max_pending={self.max_pending})",
                        policy="reject",
                        pending=len(self._pending),
                    )
                if self.admission_policy == "shed-oldest":
                    shed = self._pending.pop(0)
                    self.shed_batches += 1
                    self._health = HEALTH_DEGRADED
                    if self.wal is not None and shed.seq:
                        self.wal.append_abort([shed.seq], reason="shed-oldest")
                    shed.future.set_exception(
                        AdmissionRejected(
                            "batch shed under backlog to admit newer work",
                            policy="shed-oldest",
                            pending=len(self._pending),
                        )
                    )
                    continue
                # block: wait for the worker to drain, up to the deadline
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise AdmissionRejected(
                        f"admission deadline ({self.admission_timeout:.3f}s) expired "
                        f"with {len(self._pending)} batches pending",
                        policy="block",
                        pending=len(self._pending),
                    )
                self._queue.wait(remaining)
                if self._closed:
                    raise EngineClosed("serving engine is closed")
            if self.wal is not None:
                # Logged *before* the ticket is returned: once the submitter
                # holds the ticket, the batch survives a process crash.
                mutation.seq = self.wal.append_batch(
                    mutation.inserts, mutation.retracts, symbols=new_symbols
                )
            self._pending.append(mutation)
            self._queue.notify_all()
        return EpochTicket(self, mutation.future)

    def flush(self) -> None:
        """Block until every submission enqueued so far has committed.

        Synchronous engines run the pending epoch inline on the calling
        thread; background engines wait for the worker to drain the queue.
        """
        if self.background:
            with self._queue:
                while self._pending or self._inflight:
                    self._queue.wait()
            return
        while True:
            with self._queue:
                if not self._pending:
                    return
                batch, self._pending = self._pending, []
            self._commit(batch)

    def query(self, relation_name: str, *, decode: bool = False):
        """Read the newest committed snapshot of ``relation_name``.

        Returns the :class:`RelationSnapshot` (raw interned int64 rows in
        canonical order), or — with ``decode=True`` — the decoded list of
        tuples.  If the relation changed since it was last read, the first
        query pays the charged D2H download (and briefly synchronizes with
        the epoch worker); repeat reads of an unchanged relation return the
        cached immutable snapshot without blocking on in-flight epochs.
        """
        if relation_name not in self.relations:
            raise SchemaError(f"unknown relation {relation_name!r}")
        snapshot = self._materialize(relation_name)
        if not decode:
            return snapshot
        decode_value = self.symbols.decode
        return [tuple(decode_value(value) for value in row) for row in snapshot.rows.tolist()]

    def query_many(self, relation_names: list[str]) -> dict[str, RelationSnapshot]:
        """One consistent cut across several relations (single epoch boundary)."""
        for relation_name in relation_names:
            if relation_name not in self.relations:
                raise SchemaError(f"unknown relation {relation_name!r}")
        with self._engine_lock:
            return {name: self._materialize(name) for name in relation_names}

    def snapshot_version(self, relation_name: str) -> int:
        if relation_name not in self.relations:
            raise SchemaError(f"unknown relation {relation_name!r}")
        with self._engine_lock:
            return self._versions[relation_name]

    def relation_names(self) -> list[str]:
        return sorted(self.relations)

    def health(self) -> str:
        """Current health state: ``healthy``, ``degraded``, or ``recovering``."""
        return self._health

    @property
    def simulated_seconds(self) -> float:
        """Total simulated seconds charged so far (max over shard devices)."""
        return max(device.elapsed_seconds for device in self.devices)

    def close(self) -> None:
        """Stop the worker (committing nothing further) and free device state.

        Pending submissions fail with :class:`EngineClosed` (and are marked
        aborted in the WAL — the submitter was told they did not commit).  If
        the worker thread refuses to stop within 30 s the in-flight epoch's
        tickets are failed too and :class:`EngineClosed` is raised rather
        than silently leaking a live thread over freed device state.
        """
        with self._queue:
            if self._closed:
                return
            self._closed = True
            pending, self._pending = self._pending, []
            self._queue.notify_all()
        closed_error = EngineClosed("serving engine closed before this batch committed")
        for mutation in pending:
            if not mutation.future.done():
                mutation.future.set_exception(closed_error)
        if self.wal is not None:
            seqs = [mutation.seq for mutation in pending if mutation.seq]
            if seqs:
                self.wal.append_abort(seqs, reason="engine-closed")
        worker, self._worker = self._worker, None
        if worker is not None:
            worker.join(timeout=self._close_join_timeout)
            if worker.is_alive():
                with self._queue:
                    stuck = list(self._inflight_batch or ())
                stuck_error = EngineClosed(
                    "serving worker thread failed to stop within 30s; "
                    "its epoch's tickets have been failed and device state "
                    "was left in place"
                )
                for mutation in stuck:
                    if not mutation.future.done():
                        mutation.future.set_exception(stuck_error)
                raise stuck_error
        if self.wal is not None:
            self.wal.close()
        with self._engine_lock:
            relations, self.relations = self.relations, {}
            for relation in relations.values():
                try:
                    relation.free()
                except DeviceBufferError:
                    continue

    def crash(self) -> None:
        """Abandon the engine the way a dying process would (test/demo hook).

        Unlike :meth:`close`, no abort markers are written and pending
        tickets are left unresolved — exactly the artifacts a real crash
        leaves behind, so :meth:`recover` has honest input: the WAL keeps the
        acknowledged-but-uncommitted batches, the checkpoint store keeps the
        last durable state, and nothing pretends the work was cancelled.
        """
        with self._queue:
            if self._closed:
                return
            self._closed = True
            self._pending = []
            self._queue.notify_all()
        worker, self._worker = self._worker, None
        if worker is not None:
            worker.join(timeout=self._close_join_timeout)
        if self.wal is not None:
            self.wal.close()
        with self._engine_lock:
            relations, self.relations = self.relations, {}
            for relation in relations.values():
                try:
                    relation.free()
                except DeviceBufferError:
                    continue

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def recover(
        cls,
        store: CheckpointStore,
        wal: "WriteAheadLog | None" = None,
        **engine_kwargs,
    ) -> "ServingEngine":
        """Rebuild a crashed engine from its checkpoint store and WAL.

        Loads the newest serving checkpoint, replays every WAL commit group
        past its horizon epoch by epoch, then folds the acknowledged-but-
        uncommitted batches into one catch-up epoch — reaching the exact
        logical state the crashed engine had acknowledged.  See
        :mod:`repro.serving.recovery` for the replay plan details.
        """
        from .recovery import recover_engine

        return recover_engine(store, wal, **engine_kwargs)

    def _apply_replay(self, batches: "list[WalBatch]", *, commit: bool) -> EpochResult:
        """Run one recovery epoch from logged batches.

        ``commit=False`` replays a group the crashed engine already committed
        (its marker is in the log; writing another would corrupt it) —
        ``commit=True`` is the catch-up epoch for pending batches, which
        earns a fresh commit marker like any live epoch.
        """
        for batch in batches:
            self.symbols.restore_entries(batch.symbols)
        mutations = [
            _Mutation(
                {name: list(rows) for name, rows in batch.inserts.items()},
                {name: list(rows) for name, rows in batch.retracts.items()},
                Future(),
                seq=batch.seq,
            )
            for batch in batches
        ]
        self._replaying = not commit
        try:
            result = self._run_epoch(mutations)
        finally:
            self._replaying = False
        for mutation in mutations:
            mutation.future.set_result(result)
        return result

    # ------------------------------------------------------------------
    # Epoch execution
    # ------------------------------------------------------------------
    def _start_worker(self) -> None:
        if self.background and self._worker is None and not self._closed:
            self._worker = threading.Thread(
                target=self._worker_loop, name=f"serving-{self.program.name}", daemon=True
            )
            self._worker.start()

    def _coalesce_window_seconds(self) -> float:
        """Seconds the worker lingers gathering more submissions (lock held).

        Under backlog (``overload_threshold`` reached) the window widens to
        ``max_coalesce_window``: one bigger coalesced epoch amortizes its
        fixed per-epoch costs over more mutations — the graceful-degradation
        counterpart of shedding.
        """
        window = self.coalesce_window
        if (
            self.overload_threshold is not None
            and len(self._pending) >= self.overload_threshold
        ):
            self._health = HEALTH_DEGRADED
            if self.max_coalesce_window > window:
                window = self.max_coalesce_window
                self.widened_windows += 1
        return window

    def _worker_loop(self) -> None:
        while True:
            with self._queue:
                while not self._pending and not self._closed:
                    self._queue.wait()
                if self._closed:
                    return
                window = self._coalesce_window_seconds()
                if window > 0.0:
                    deadline = time.monotonic() + window
                    while not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0.0:
                            break
                        self._queue.wait(remaining)
                    if self._closed:
                        return
                batch, self._pending = self._pending, []
                self._inflight = True
                self._inflight_batch = batch
                # Wake submitters blocked on admission: the queue drained.
                self._queue.notify_all()
            try:
                self._commit(batch)
            finally:
                with self._queue:
                    self._inflight = False
                    self._inflight_batch = None
                    self._queue.notify_all()

    def _commit(self, batch: list[_Mutation]) -> None:
        # The done() guards protect against a racing close(): a stuck-worker
        # close fails the in-flight tickets with EngineClosed, and resolving
        # them a second time here would raise InvalidStateError in the worker.
        try:
            result = self._run_epoch(batch)
        except BaseException as error:  # noqa: BLE001 - forwarded to tickets
            for mutation in batch:
                if not mutation.future.done():
                    mutation.future.set_exception(error)
            return
        for mutation in batch:
            if not mutation.future.done():
                mutation.future.set_result(result)

    def _run_epoch(self, batch: list[_Mutation]) -> EpochResult:
        """Run one epoch, transactionally when enabled.

        The serving rung of the fault ladder: the evaluators already retry
        transient kernels per version, chunk around OOM, and (with their own
        checkpoints) rebuild crashed shards; whatever still escapes —
        :class:`FixpointInterrupted` from an exhausted evaluator budget, or a
        raw device fault from the DRed machinery that runs outside the
        fixpoint — triggers whole-epoch rollback and replay here.  When the
        epoch budget is exhausted too, the epoch aborts: state stays rolled
        back at the last commit, this batch's tickets get
        :class:`EpochAborted`, and reads keep serving.
        """
        with self._engine_lock:
            seqs = [mutation.seq for mutation in batch if mutation.seq]
            if not self.transactional:
                result = self._run_epoch_attempt(batch, attempt=1)
                self._finish_commit(seqs)
                return result
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = self._run_epoch_attempt(batch, attempt=attempt)
                except (DeviceError, FixpointInterrupted) as error:
                    self._health = HEALTH_RECOVERING
                    self._rollback(error)
                    if attempt > self.epoch_retries:
                        self.epoch_aborts += 1
                        self._health = HEALTH_DEGRADED
                        if self.wal is not None and not self._replaying and seqs:
                            self.wal.append_abort(seqs, reason=f"epoch-aborted: {error}")
                        raise EpochAborted(
                            f"epoch {self.epoch + 1} aborted after {attempt} attempts "
                            f"and rolled back to epoch {self.epoch}: {error}",
                            epoch=self.epoch + 1,
                            attempts=attempt,
                            cause=error,
                        ) from error
                    self._evaluator._charge_backoff(
                        attempt, label=f"serving_epoch{self.epoch + 1}"
                    )
                    continue
                self._finish_commit(seqs)
                return result

    def _finish_commit(self, seqs: list[int]) -> None:
        """Post-commit durability: WAL commit marker + periodic checkpoint."""
        if seqs:
            self._committed_seq = max(self._committed_seq, max(seqs))
        if self.wal is not None and not self._replaying and seqs:
            self.wal.append_commit(self.epoch, seqs)
        if (
            self.checkpoint_store is not None
            and not self._replaying
            and self.epoch % self.checkpoint_every_epochs == 0
        ):
            self._save_serving_checkpoint()

    def _rollback(self, error: BaseException) -> None:
        """Restore every relation to the last committed epoch's state.

        If the failure chain contains an :class:`ExchangeError` the receiving
        shard's device died with its buffers: the evaluator raised without
        rebuilding it (it had no fixpoint checkpoint of its own), so the
        rebuild happens here, against the *serving* layer's epoch-boundary
        states.  Snapshot versions were never bumped mid-epoch, so committed
        reads stay valid throughout; ``discard_newer`` enforces exactly that
        invariant.

        Fault injection is suspended for the duration: rollback models
        driver-level recovery, and its own frees/uploads are not production
        fault sites — with injection live, an ``every=1`` plan would fault
        the restore mid-flight and leave exactly the torn state rollback
        exists to prevent.
        """
        saved_plans = [device.fault_plan for device in self.devices]
        for device in self.devices:
            device.fault_plan = None
        try:
            self._rollback_unprotected(error)
        finally:
            # self.devices may have been swapped by a shard rebuild; plans
            # reattach by shard index (the engine shares one plan instance).
            for device, plan in zip(self.devices, saved_plans):
                device.fault_plan = plan

    def _rollback_unprotected(self, error: BaseException) -> None:
        if isinstance(self._evaluator, ShardedSemiNaiveEvaluator):
            exchange: ExchangeError | None = None
            seen: set[int] = set()
            cursor: BaseException | None = error
            while cursor is not None and id(cursor) not in seen:
                seen.add(id(cursor))
                if isinstance(cursor, ExchangeError):
                    exchange = cursor
                    break
                cursor = (
                    getattr(cursor, "cause", None)
                    or cursor.__cause__
                    or cursor.__context__
                )
            if exchange is not None:
                self._evaluator._rebuild_crashed_shard(exchange)
                self.devices = list(self._evaluator.devices)
                self.device = self.devices[0]
        for relation_name, relation in self.relations.items():
            state = self._epoch_states.get(relation_name)
            if state is None:
                continue
            if isinstance(relation, ShardedRelation):
                relation.restore(state)
            else:
                relation.restore(state.partitions[0])
        if isinstance(self._evaluator, ShardedSemiNaiveEvaluator):
            self._evaluator._invalidate_exchange_state()
        self.snapshots.discard_newer(self._versions)

    def _capture(self, relation_name: str) -> RelationState:
        """Host-snapshot one relation's (full, delta) state, uncharged.

        The rollback baseline rides the copy engine in the background,
        overlapped with serving reads — it is not on the epoch's critical
        path, so charging its D2H to the epoch would break the O(|Δ|) shape
        the trickle benchmark gates.  The simulated cost model sees
        checkpoint traffic when a checkpoint is actually persisted
        (:meth:`_save_serving_checkpoint` charges the D2H then), mirroring
        the batch engine's checkpoint phase.
        """
        relation = self.relations[relation_name]
        state = relation.checkpoint_state(charge=False)
        if isinstance(state, RelationState):
            return state
        return RelationState(name=relation_name, arity=relation.arity, partitions=[state])

    def _charge_checkpoint_io(self) -> None:
        """Charge the D2H traffic of persisting :attr:`_epoch_states` durably.

        Fault plans are suspended for the duration: persistence happens
        after the epoch committed, outside the transaction — like rollback,
        it models driver-level bookkeeping, not a production fault site.
        """
        plans = [device.fault_plan for device in self.devices]
        for device in self.devices:
            device.fault_plan = None
        try:
            for name, state in self._epoch_states.items():
                for index, partition in enumerate(state.partitions):
                    device = self.devices[index % len(self.devices)]
                    with device.profiler.phase(PHASE_CHECKPOINT):
                        device.kernels.to_host(
                            partition.full, label=f"{name}.d2h_checkpoint"
                        )
                        device.kernels.to_host(
                            partition.delta, label=f"{name}.d2h_checkpoint"
                        )
        finally:
            for index, plan in enumerate(plans):
                if index < len(self.devices):
                    self.devices[index].fault_plan = plan

    def _save_serving_checkpoint(self) -> None:
        """Write a durable epoch-boundary checkpoint and compact the WAL.

        Reuses the host states :attr:`_epoch_states` already holds, charging
        their D2H under the checkpoint phase now that the copies become
        durable.  ``metadata["serving"]``
        carries everything :meth:`recover` needs beyond relation state:
        epoch counter, snapshot versions, the WAL horizon the checkpoint
        covers, and the symbol table that interned the program and rows.
        """
        assert self.checkpoint_store is not None
        self._charge_checkpoint_io()
        checkpoint = EvaluationCheckpoint(
            program_name=self.program.name,
            stratum_index=-1,
            iteration=self.epoch,
            num_shards=self.num_shards,
            relations=dict(self._epoch_states),
            program_source=str(self.program),
            metadata={
                "serving": {
                    "epoch": self.epoch,
                    "versions": dict(self._versions),
                    "changed_epoch": dict(self._changed_epoch),
                    "covered_seq": self._committed_seq,
                    "symbols": [[s, i] for s, i in self.symbols.entries()],
                    "planner": self.planner,
                    "num_shards": self.num_shards,
                }
            },
        )
        checkpoint_id = self.checkpoint_store.save(checkpoint)
        if self.wal is not None:
            self.wal.append_checkpoint(
                self.epoch, self._committed_seq, checkpoint_id=checkpoint_id
            )
            self.wal.compact(self._committed_seq)

    def _run_epoch_attempt(self, batch: list[_Mutation], *, attempt: int) -> EpochResult:
        with self._engine_lock:
            host_start = time.perf_counter()
            sim_start = [device.elapsed_seconds for device in self._device_list()]

            net_inserts, net_retracts = self._coalesce(batch)

            # --- DRed: over-delete, apply, re-derive --------------------
            retracted_counts: dict[str, int] = {}
            rederived_counts: dict[str, int] = {}
            survivors: dict[str, set[tuple[int, ...]]] = {}
            if net_retracts:
                deleted = self._over_delete(net_retracts)
                for relation_name in sorted(deleted):
                    rows = self._rows_array(deleted[relation_name], relation_name)
                    removed = self.relations[relation_name].retract(rows)
                    if removed:
                        retracted_counts[relation_name] = removed
                # The over-delete probes lazily built exchange state (semi-
                # join filters, replicated inners) from the *pre-deletion*
                # fulls; the re-derive must see post-deletion state only.
                if isinstance(self._evaluator, ShardedSemiNaiveEvaluator):
                    self._evaluator._invalidate_exchange_state()
                survivors = self._rederive(deleted)
                rederived_counts = {
                    relation_name: len(rows) for relation_name, rows in survivors.items() if rows
                }

            # --- Insert epoch: delta fixpoint from the injected seeds ---
            seeds: dict[str, np.ndarray] = {}
            inserted_counts: dict[str, int] = {}
            for relation_name, rows in net_inserts.items():
                if rows:
                    seeds[relation_name] = self._rows_array(rows, relation_name)
            for relation_name, rows in survivors.items():
                if not rows:
                    continue
                fresh = self._rows_array(rows, relation_name)
                if relation_name in seeds:
                    seeds[relation_name] = np.concatenate([seeds[relation_name], fresh], axis=0)
                else:
                    seeds[relation_name] = fresh
            for relation_name, rows in seeds.items():
                inserted_counts[relation_name] = int(rows.shape[0])

            history_marks = {
                relation_name: len(relation.history)
                for relation_name, relation in self.relations.items()
            }
            iterations = 0
            if seeds:
                iterations, _, _ = self._evaluator.delta_fixpoint(
                    list(self.compiled.epoch_versions), seeds
                )

            # --- Commit: bump and publish snapshots of changed relations
            changed = set(retracted_counts)
            for relation_name, relation in self.relations.items():
                for entry in relation.history[history_marks[relation_name] :]:
                    if entry.delta_count:
                        changed.add(relation_name)
                        break

            # Epoch-boundary capture (still *before* any version bump: a
            # fault during these D2H downloads rolls back against the old
            # baselines and no reader ever saw a new version).  Staged into a
            # side dict so a mid-capture fault cannot corrupt the rollback
            # target with a half-updated epoch.
            new_states: dict[str, RelationState] = {}
            if self.transactional or self.checkpoint_store is not None:
                for relation_name in sorted(changed):
                    new_states[relation_name] = self._capture(relation_name)

            self.epoch += 1
            published: dict[str, int] = {}
            for relation_name in sorted(changed):
                self._versions[relation_name] += 1
                self._changed_epoch[relation_name] = self.epoch
                published[relation_name] = self._versions[relation_name]
            self._epoch_states.update(new_states)

            with self._queue:
                backlog = len(self._pending)
            if self.overload_threshold is not None and backlog >= self.overload_threshold:
                self._health = HEALTH_DEGRADED
            else:
                self._health = HEALTH_HEALTHY

            sim_end = [device.elapsed_seconds for device in self._device_list()]
            result = EpochResult(
                epoch=self.epoch,
                coalesced=len(batch),
                iterations=iterations,
                inserted=inserted_counts,
                retracted=retracted_counts,
                rederived=rederived_counts,
                simulated_seconds=max(
                    (end - start for start, end in zip(sim_start, sim_end)), default=0.0
                ),
                host_seconds=time.perf_counter() - host_start,
                snapshot_versions=published,
                attempts=attempt,
                health=self._health,
            )
            self.last_epoch = result
            return result

    def _coalesce(
        self, batch: list[_Mutation]
    ) -> tuple[dict[str, list[tuple[int, ...]]], dict[str, list[tuple[int, ...]]]]:
        """Fold a batch into net per-tuple operations (last writer wins)."""
        final_op: dict[str, dict[tuple[int, ...], str]] = defaultdict(dict)
        for mutation in batch:
            for relation_name, rows in mutation.retracts.items():
                for row in rows:
                    final_op[relation_name][row] = "retract"
            for relation_name, rows in mutation.inserts.items():
                for row in rows:
                    final_op[relation_name][row] = "insert"
        net_inserts: dict[str, list[tuple[int, ...]]] = {}
        net_retracts: dict[str, list[tuple[int, ...]]] = {}
        for relation_name, ops in final_op.items():
            inserts = sorted(row for row, op in ops.items() if op == "insert")
            retracts = sorted(row for row, op in ops.items() if op == "retract")
            if inserts:
                net_inserts[relation_name] = inserts
            if retracts:
                net_retracts[relation_name] = retracts
        return net_inserts, net_retracts

    def _over_delete(
        self, net_retracts: dict[str, list[tuple[int, ...]]]
    ) -> dict[str, set[tuple[int, ...]]]:
        """DRed phase 1: the deletion cone, computed against pre-deletion fulls.

        Seeds the frontier with the requested retractions that actually
        exist, then repeatedly shadow-presents each relation's frontier as
        its delta and executes the epoch's delta versions: any currently-
        present head tuple one join step away from a deleted tuple joins the
        cone.  Probing pre-deletion fulls is what makes this the textbook
        over-approximation — every derivation that *uses* a deleted tuple is
        found, including ones whose other support is also doomed.
        """
        deleted: dict[str, set[tuple[int, ...]]] = {}
        frontier: dict[str, set[tuple[int, ...]]] = {}
        for relation_name, rows in net_retracts.items():
            present = self.relations[relation_name].present_rows(
                self._rows_array(rows, relation_name)
            )
            tuples = {tuple(int(value) for value in row) for row in present}
            if tuples:
                deleted[relation_name] = set(tuples)
                frontier[relation_name] = tuples
        while frontier:
            next_frontier: dict[str, set[tuple[int, ...]]] = defaultdict(set)
            for version in self.compiled.epoch_versions:
                source = version.initial.relation
                if source not in frontier:
                    continue
                shadow = self._rows_array(frontier[source], source)
                with self.relations[source].shadow_delta(shadow):
                    derived = self._collect_version_rows(version)
                if not derived.shape[0]:
                    continue
                head = version.head_relation
                candidates = {
                    tuple(int(value) for value in row) for row in derived
                } - deleted.get(head, set())
                if not candidates:
                    continue
                present = self.relations[head].present_rows(
                    self._rows_array(candidates, head)
                )
                fresh = {
                    tuple(int(value) for value in row) for row in present
                } - deleted.get(head, set())
                if fresh:
                    next_frontier[head] |= fresh
            frontier = {}
            for head, fresh in next_frontier.items():
                deleted.setdefault(head, set()).update(fresh)
                frontier[head] = fresh
        return deleted

    def _rederive(
        self, deleted: dict[str, set[tuple[int, ...]]]
    ) -> dict[str, set[tuple[int, ...]]]:
        """DRed phase 3: over-deleted tuples still derivable from what remains.

        Runs each affected rule's *full* version against the post-deletion
        database and intersects the output with that rule's share of the
        deletion cone.  Survivors are seeded back through the insert-epoch
        delta fixpoint, which transitively resurrects anything derivable
        from them — the standard DRed completeness argument.
        """
        idb = self.compiled.idb_relations
        targets = {name for name, rows in deleted.items() if rows and name in idb}
        survivors: dict[str, set[tuple[int, ...]]] = {}
        if not targets:
            return survivors
        for version in self.compiled.full_versions:
            head = version.head_relation
            if head not in targets:
                continue
            derived = self._collect_version_rows(version)
            if not derived.shape[0]:
                continue
            regained = {
                tuple(int(value) for value in row) for row in derived
            } & deleted[head]
            if regained:
                survivors.setdefault(head, set()).update(regained)
        return survivors

    def _collect_version_rows(self, version: RuleVersion) -> np.ndarray:
        """Execute one rule version and download its head rows (charged D2H)."""
        arity = len(version.head)
        label = f"{version.head_relation}.d2h_dred"
        if isinstance(self._evaluator, ShardedSemiNaiveEvaluator):
            parts = []
            for shard, batch in enumerate(self._evaluator._execute_version(version)):
                if len(batch):
                    rows = batch.as_rows(label=f"{version.head_relation}.dred_materialize")
                    parts.append(self._evaluator.devices[shard].kernels.to_host(rows, label=label))
            if not parts:
                return np.empty((0, arity), dtype=np.int64)
            return np.concatenate(parts, axis=0)
        result = self._evaluator._execute_version(version)
        if len(result) == 0:
            return np.empty((0, arity), dtype=np.int64)
        if isinstance(result, ColumnBatch):
            result = result.as_rows(label=f"{version.head_relation}.dred_materialize")
        return self.device.kernels.to_host(result, label=label)

    # ------------------------------------------------------------------
    # Snapshots / encoding helpers
    # ------------------------------------------------------------------
    def _materialize(self, relation_name: str) -> RelationSnapshot:
        """Return the current snapshot, downloading it if the cache is stale.

        Fast path (no engine lock): the cached snapshot already matches the
        committed version.  Slow path: take the engine lock — briefly
        serializing with the epoch worker — re-check, then pay the charged
        D2H download and publish the canonical copy for later readers.
        """
        target = self._versions[relation_name]
        try:
            cached = self.snapshots.read(relation_name)
            if cached.version == target:
                return cached
        except KeyError:
            pass
        with self._engine_lock:
            target = self._versions[relation_name]
            try:
                cached = self.snapshots.read(relation_name)
                if cached.version == target:
                    return cached
            except KeyError:
                pass
            relation = self.relations[relation_name]
            snapshot = RelationSnapshot(
                name=relation_name,
                version=target,
                epoch=self._changed_epoch[relation_name],
                rows=canonical_rows(relation.full_rows_host(charge=True), relation.arity),
            )
            self.snapshots.publish({relation_name: snapshot})
            return snapshot

    def _device_list(self) -> list[Device]:
        if isinstance(self._evaluator, ShardedSemiNaiveEvaluator):
            return list(self._evaluator.devices)
        return [self.device]

    def _encode_rows(
        self, relation_name: str, rows: FactRows, *, register: bool = False
    ) -> np.ndarray:
        """Encode client rows (ints/strings) into an int64 host array."""
        known_arity = self._arities.get(relation_name)
        if known_arity is None and not register:
            raise SchemaError(f"unknown relation {relation_name!r}")
        if isinstance(rows, np.ndarray) and rows.dtype.kind in "iu":
            encoded = np.asarray(rows, dtype=np.int64)
            if encoded.ndim != 2:
                raise SchemaError(f"fact array for {relation_name!r} must be 2-D")
        else:
            materialized = [
                tuple(self.symbols.encode(value) for value in row) for row in rows
            ]
            if not materialized:
                encoded = np.empty((0, known_arity or 0), dtype=np.int64)
            else:
                widths = {len(row) for row in materialized}
                if len(widths) != 1:
                    raise SchemaError(
                        f"facts for {relation_name!r} have inconsistent arities {sorted(widths)}"
                    )
                encoded = np.asarray(materialized, dtype=np.int64)
        if known_arity is None:
            # A fact-only relation no rule mentions: adopt its arity.
            if encoded.shape[0] == 0:
                raise SchemaError(
                    f"cannot infer the arity of {relation_name!r} from zero facts"
                )
            self._arities[relation_name] = int(encoded.shape[1])
        elif encoded.shape[0] and encoded.shape[1] != known_arity:
            raise SchemaError(
                f"relation {relation_name!r} has arity {known_arity}, "
                f"got rows of width {encoded.shape[1]}"
            )
        return encoded.reshape(-1, self._arities[relation_name])

    def _rows_array(
        self, rows: "Iterable[tuple[int, ...]]", relation_name: str
    ) -> np.ndarray:
        arity = self.relations[relation_name].arity
        rows = sorted(rows) if isinstance(rows, set) else list(rows)
        if not rows:
            return np.empty((0, arity), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64).reshape(-1, arity)
