"""Pluggable array backends for the execution datapath.

One datapath, many array libraries: the relational substrate and the device
kernels run entirely on the :class:`ArrayBackend` contract, so the engine can
execute on host NumPy (the reference backend), CuPy (when importable), or the
contract-enforcing guard wrapper — without a single branch in the datapath.

Backend selection
-----------------

* ``Device(spec, backend=...)`` / ``GPULogEngine(backend=...)`` accept a
  backend instance or a registry name.
* The ``REPRO_BACKEND`` environment variable supplies the default for every
  device that does not name a backend explicitly (used by the CI guard job
  and the ``--backend`` flags of the experiment runner and benchmarks).
* ``guard`` wraps the reference backend; ``guard:<name>`` wraps any
  registered backend, e.g. ``guard:cupy``.

Registering a backend::

    from repro.backend import register_backend
    register_backend("mylib", MyLibBackend)   # factory: () -> ArrayBackend

The transfer-boundary rule
--------------------------

Host arrays enter the datapath only through
:meth:`~repro.backend.base.ArrayBackend.from_host` and leave it only through
:meth:`~repro.backend.base.ArrayBackend.to_host`; the device kernels charge
both as PCIe transfers.  Inside the datapath every array is backend-owned.
"""

from __future__ import annotations

import os
from typing import Callable, Union

from ..errors import BackendError, BackendUnavailableError
from .base import (
    ARRAY_BACKEND_CONTRACT,
    EMPTY_KEY,
    INDEX_DTYPE,
    INDEX_ITEMSIZE,
    TUPLE_DTYPE,
    TUPLE_ITEMSIZE,
    Array,
    ArrayBackend,
)
from .guard import GuardBackend
from .numpy_backend import NumpyBackend

#: Environment variable naming the default backend for new devices.
BACKEND_ENV_VAR = "REPRO_BACKEND"

BackendLike = Union[ArrayBackend, str, None]

_REGISTRY: dict[str, Callable[[], ArrayBackend]] = {}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (later wins, like overrides)."""
    _REGISTRY[str(name)] = factory


def available_backends() -> tuple[str, ...]:
    """Names of every registered (instantiable) backend."""
    return tuple(sorted(_REGISTRY))


register_backend("numpy", NumpyBackend)

try:  # CuPy registers only when it imports (no hard dependency).
    from .cupy_backend import CUPY_AVAILABLE, CupyBackend

    if CUPY_AVAILABLE:  # pragma: no cover - requires a CUDA device
        register_backend("cupy", CupyBackend)
except ImportError:  # pragma: no cover - cupy_backend itself always imports
    CUPY_AVAILABLE = False

#: Shared reference-backend instance (module-level helpers and host-side
#: interop delegate here so there is exactly one NumPy implementation).
HOST_BACKEND = NumpyBackend()


def get_backend(spec: BackendLike = None) -> ArrayBackend:
    """Resolve a backend instance from a name, instance, or the environment.

    ``None`` consults :data:`BACKEND_ENV_VAR` and falls back to ``numpy``.
    ``"guard"`` wraps the reference backend; ``"guard:<name>"`` wraps any
    registered backend.
    """
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or "numpy"
    if not isinstance(spec, str):
        return spec
    name = spec.strip().lower()
    if name.startswith("guard"):
        inner = name.split(":", 1)[1] if ":" in name else "numpy"
        return GuardBackend(get_backend(inner))
    factory = _REGISTRY.get(name)
    if factory is None:
        raise BackendUnavailableError(
            f"unknown array backend {spec!r}; available: {', '.join(available_backends())} "
            "(plus 'guard' / 'guard:<name>')"
        )
    return factory()


__all__ = [
    "ARRAY_BACKEND_CONTRACT",
    "Array",
    "ArrayBackend",
    "BACKEND_ENV_VAR",
    "BackendError",
    "BackendUnavailableError",
    "CUPY_AVAILABLE",
    "EMPTY_KEY",
    "GuardBackend",
    "HOST_BACKEND",
    "INDEX_DTYPE",
    "INDEX_ITEMSIZE",
    "NumpyBackend",
    "TUPLE_DTYPE",
    "TUPLE_ITEMSIZE",
    "available_backends",
    "get_backend",
    "register_backend",
]
