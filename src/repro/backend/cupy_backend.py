"""CuPy :class:`ArrayBackend` — the real-GPU implementation of the contract.

Importable only when ``cupy`` is installed (the registry registers it lazily;
CI skip-marks every CuPy-parameterized test when the import fails).  The
implementation mirrors :class:`~repro.backend.numpy_backend.NumpyBackend`
primitive-for-primitive with two documented deviations:

* ``pack_lex_keys`` — CuPy has no void/structured dtypes, so multi-column
  packed sort keys cannot live on the device as opaque byte rows.  Keys pack
  into a single device-resident uint64 with a *fixed bit budget* of
  ``64 // n_columns`` bits per column (offset-binary so signed order is
  preserved).  The budget depends only on the column count, so keys packed by
  different calls stay mutually comparable — exactly what the incremental
  merge's cross-array ``searchsorted`` needs — and every downstream consumer
  (``empty`` with the key dtype, ``scatter``, ``adjacent_unique_mask``,
  ``nonzero_indices``) sees an ordinary device uint64 array.  Values outside
  the per-column budget raise :class:`~repro.errors.BackendError` loudly
  instead of mis-sorting; VFLog-style multi-pass radix keys are the known
  fix for wider domains.
* ``reduceat_sum`` — CuPy lacks ``add.reduceat``; the segmented sum is
  computed from an inclusive scan, which requires strictly increasing segment
  starts (the only shape the datapath produces: run starts).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy as cp
    import cupyx
except ImportError as _error:  # pragma: no cover
    cp = None
    cupyx = None
    CUPY_IMPORT_ERROR: ImportError | None = _error
else:  # pragma: no cover
    CUPY_IMPORT_ERROR = None

from ..errors import BackendError, BackendUnavailableError
from .base import INDEX_DTYPE, TUPLE_DTYPE, Array, ArrayBackend

CUPY_AVAILABLE = cp is not None


class CupyBackend(ArrayBackend):  # pragma: no cover - requires a CUDA device
    """Array backend running the datapath on CuPy (CUDA/ROCm) arrays."""

    name = "cupy"

    def __init__(self) -> None:
        if not CUPY_AVAILABLE:
            raise BackendUnavailableError(
                f"cupy is not importable in this environment: {CUPY_IMPORT_ERROR}"
            )

    # ------------------------------------------------------------------
    # Transfer boundary
    # ------------------------------------------------------------------
    def to_host(self, array: Array) -> np.ndarray:
        if isinstance(array, np.ndarray):
            return array
        return cp.asnumpy(array)

    def from_host(self, array: Any, dtype: Any = None) -> Array:
        return cp.asarray(np.asarray(array, dtype=dtype))

    def is_array(self, obj: Any) -> bool:
        return isinstance(obj, cp.ndarray)

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    def empty(self, shape: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        return cp.empty(shape, dtype=dtype)

    def zeros(self, shape: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        return cp.zeros(shape, dtype=dtype)

    def ones(self, shape: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        return cp.ones(shape, dtype=dtype)

    def full(self, shape: Any, fill_value: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        return cp.full(shape, fill_value, dtype=dtype)

    def arange(self, n: int, dtype: Any = INDEX_DTYPE) -> Array:
        return cp.arange(n, dtype=dtype)

    def asarray(self, data: Any, dtype: Any = None) -> Array:
        return cp.asarray(data, dtype=dtype)

    def ascontiguousarray(self, data: Any, dtype: Any = None) -> Array:
        return cp.ascontiguousarray(cp.asarray(data, dtype=dtype))

    # ------------------------------------------------------------------
    # Movement / combination
    # ------------------------------------------------------------------
    def concatenate(self, arrays: Sequence[Array], axis: int = 0) -> Array:
        return cp.concatenate([cp.asarray(a) for a in arrays], axis=axis)

    def column_stack(self, columns: Sequence[Array]) -> Array:
        return cp.column_stack([cp.asarray(c) for c in columns])

    def take(self, array: Array, indices: Array) -> Array:
        return array[cp.asarray(indices)]

    def scatter(self, target: Array, indices: Array, values: Any) -> None:
        target[cp.asarray(indices)] = values

    def repeat(self, values: Array, repeats: Array) -> Array:
        return cp.repeat(values, repeats)

    # ------------------------------------------------------------------
    # Sorting and searching
    # ------------------------------------------------------------------
    def lexsort(self, columns: Sequence[Array], n_rows: int | None = None) -> Array:
        if not len(columns):
            return cp.arange(int(n_rows or 0), dtype=INDEX_DTYPE)
        n = int(columns[0].shape[0])
        if n == 0:
            return cp.empty(0, dtype=INDEX_DTYPE)
        stacked = cp.stack([cp.asarray(c) for c in reversed(list(columns))])
        return cp.lexsort(stacked).astype(INDEX_DTYPE)

    def searchsorted(self, haystack: Array, needles: Array, side: str = "left") -> Array:
        return cp.searchsorted(haystack, cp.asarray(needles), side=side).astype(INDEX_DTYPE)

    def pack_lex_keys(self, columns: Sequence[Array]) -> Array:
        """Device-resident packed keys with a fixed ``64 // k`` bit budget.

        Column ``j`` occupies bits ``[64 - (j+1)*width, 64 - j*width)`` of a
        uint64 after an offset-binary shift, so unsigned comparison of the
        packed word equals signed lexicographic tuple comparison.  The layout
        depends only on the column count — packings from different calls
        (full vs delta keys) stay mutually comparable.  Out-of-budget values
        fail loudly rather than mis-sort.
        """
        k = len(columns)
        if k == 0:
            return cp.empty(0, dtype=cp.uint64)
        if k == 1:
            column = cp.asarray(columns[0], dtype=TUPLE_DTYPE)
            return column.view(cp.uint64) ^ cp.uint64(1 << 63)
        width = 64 // k
        low = -(1 << (width - 1))
        high = (1 << (width - 1)) - 1
        packed = cp.zeros(int(columns[0].shape[0]), dtype=cp.uint64)
        for position, column in enumerate(columns):
            column = cp.asarray(column, dtype=TUPLE_DTYPE)
            if column.size and bool(((column < low) | (column > high)).any()):
                raise BackendError(
                    f"cupy pack_lex_keys: column {position} exceeds the "
                    f"{width}-bit budget for {k}-column keys "
                    f"(values must be in [{low}, {high}]); wider domains need "
                    "VFLog-style multi-pass radix keys"
                )
            offset = (column - low).astype(cp.uint64)
            packed |= offset << cp.uint64(64 - (position + 1) * width)
        return packed

    def adjacent_unique_mask(self, columns: Sequence[Array], n_rows: int | None = None) -> Array:
        n = int(columns[0].shape[0]) if len(columns) else int(n_rows or 0)
        mask = cp.empty(n, dtype=bool)
        if n == 0:
            return mask
        mask[0] = True
        if n > 1:
            mask[1:] = False
            for column in columns:
                mask[1:] |= column[1:] != column[:-1]
        return mask

    def is_monotone(self, indices: Array) -> bool:
        if indices.size < 2:
            return True
        return bool((indices[1:] >= indices[:-1]).all())

    # ------------------------------------------------------------------
    # Scans / reductions
    # ------------------------------------------------------------------
    def cumsum(self, values: Array) -> Array:
        return cp.cumsum(values)

    def nonzero_indices(self, mask: Array) -> Array:
        return cp.flatnonzero(mask).astype(INDEX_DTYPE)

    def count_nonzero(self, mask: Array) -> int:
        return int(cp.count_nonzero(mask))

    def add_at(self, target: Array, indices: Array, values: Any) -> None:
        cupyx.scatter_add(target, indices, values)

    def reduceat_sum(self, values: Array, starts: Array) -> Array:
        """Segmented sum via inclusive scan; requires strictly increasing starts."""
        starts = cp.asarray(starts)
        if int(starts.shape[0]) == 0:
            return cp.empty(0, dtype=values.dtype)
        cum = cp.cumsum(values)
        ends = cp.concatenate([starts[1:], cp.asarray([values.shape[0]], dtype=starts.dtype)]) - 1
        totals = cum[ends]
        prev = cp.where(starts > 0, cum[cp.maximum(starts - 1, 0)], 0)
        return (totals - prev).astype(values.dtype)
