"""The reference :class:`ArrayBackend`: host NumPy.

This backend is the semantics oracle for the conformance suite: every other
backend must match it bit-for-bit on the contract primitives.  ``to_host`` /
``from_host`` are logical no-copies (the "device" *is* host memory), but the
device kernels still charge them as PCIe transfers so the simulated cost
model treats every backend identically.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .base import INDEX_DTYPE, TUPLE_DTYPE, Array, ArrayBackend


class NumpyBackend(ArrayBackend):
    """Reference implementation of the array-backend contract on NumPy."""

    name = "numpy"

    # ------------------------------------------------------------------
    # Transfer boundary
    # ------------------------------------------------------------------
    def to_host(self, array: Array) -> np.ndarray:
        return np.asarray(array)

    def from_host(self, array: Any, dtype: Any = None) -> Array:
        return np.asarray(array, dtype=dtype)

    def is_array(self, obj: Any) -> bool:
        return isinstance(obj, np.ndarray)

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    def empty(self, shape: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        return np.zeros(shape, dtype=dtype)

    def ones(self, shape: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        return np.ones(shape, dtype=dtype)

    def full(self, shape: Any, fill_value: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        return np.full(shape, fill_value, dtype=dtype)

    def arange(self, n: int, dtype: Any = INDEX_DTYPE) -> Array:
        return np.arange(n, dtype=dtype)

    def asarray(self, data: Any, dtype: Any = None) -> Array:
        return np.asarray(data, dtype=dtype)

    def ascontiguousarray(self, data: Any, dtype: Any = None) -> Array:
        return np.ascontiguousarray(data, dtype=dtype)

    # ------------------------------------------------------------------
    # Movement / combination
    # ------------------------------------------------------------------
    def concatenate(self, arrays: Sequence[Array], axis: int = 0) -> Array:
        return np.concatenate(list(arrays), axis=axis)

    def column_stack(self, columns: Sequence[Array]) -> Array:
        return np.column_stack(list(columns))

    def take(self, array: Array, indices: Array) -> Array:
        return array[indices]

    def scatter(self, target: Array, indices: Array, values: Any) -> None:
        target[indices] = values

    def repeat(self, values: Array, repeats: Array) -> Array:
        return np.repeat(values, repeats)

    # ------------------------------------------------------------------
    # Sorting and searching
    # ------------------------------------------------------------------
    def lexsort(self, columns: Sequence[Array], n_rows: int | None = None) -> Array:
        if not len(columns):
            return np.arange(int(n_rows or 0), dtype=INDEX_DTYPE)
        n = int(columns[0].shape[0])
        if n == 0:
            return np.empty(0, dtype=INDEX_DTYPE)
        # np.lexsort sorts by the last key first, so pass columns reversed.
        return np.lexsort(tuple(reversed(list(columns)))).astype(INDEX_DTYPE)

    def searchsorted(self, haystack: Array, needles: Array, side: str = "left") -> Array:
        return np.searchsorted(haystack, needles, side=side).astype(INDEX_DTYPE)

    def pack_lex_keys(self, columns: Sequence[Array]) -> Array:
        """Pack columns into big-endian void keys preserving signed lex order.

        int64 values are converted to offset-binary (sign bit flipped) and
        byte-swapped to big-endian so the raw byte comparison of the void
        view matches signed lexicographic tuple order.
        """
        arity = len(columns)
        n = int(columns[0].shape[0]) if arity else 0
        big_endian = np.empty((n, arity), dtype=">u8")
        for position, column in enumerate(columns):
            column = np.asarray(column, dtype=TUPLE_DTYPE)
            big_endian[:, position] = column.view(np.uint64) ^ np.uint64(1 << 63)
        return big_endian.view(np.dtype((np.void, max(1, arity) * 8))).ravel()

    def adjacent_unique_mask(self, columns: Sequence[Array], n_rows: int | None = None) -> Array:
        n = int(columns[0].shape[0]) if len(columns) else int(n_rows or 0)
        mask = np.empty(n, dtype=bool)
        if n == 0:
            return mask
        mask[0] = True
        if n > 1:
            mask[1:] = False
            for column in columns:
                mask[1:] |= column[1:] != column[:-1]
        return mask

    def is_monotone(self, indices: Array) -> bool:
        if indices.size < 2:
            return True
        return bool((indices[1:] >= indices[:-1]).all())

    # ------------------------------------------------------------------
    # Scans / reductions
    # ------------------------------------------------------------------
    def cumsum(self, values: Array) -> Array:
        return np.cumsum(values)

    def nonzero_indices(self, mask: Array) -> Array:
        return np.flatnonzero(mask).astype(INDEX_DTYPE)

    def count_nonzero(self, mask: Array) -> int:
        return int(np.count_nonzero(mask))

    def add_at(self, target: Array, indices: Array, values: Any) -> None:
        np.add.at(target, indices, values)

    def reduceat_sum(self, values: Array, starts: Array) -> Array:
        if int(starts.shape[0]) == 0:
            return np.empty(0, dtype=values.dtype)
        return np.add.reduceat(values, starts)
