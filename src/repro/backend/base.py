"""The :class:`ArrayBackend` contract — every array primitive the datapath needs.

The relational substrate (``repro.relational``) and the simulated device
kernels (``repro.device.kernels``) never import an array library directly;
they reach every primitive through the :class:`ArrayBackend` instance owned by
their :class:`~repro.device.device.Device`.  A backend owns its arrays: the
relational layer only ever holds arrays a backend handed out, applies the
contract primitives plus the *array protocol* (see below) to them, and crosses
back to host NumPy exclusively through :meth:`ArrayBackend.to_host` /
:meth:`ArrayBackend.from_host` — the two charged PCIe edges.

The contract has three parts:

1. **Abstract primitives** — creation (``empty``/``full``/``arange``/
   ``asarray``), movement (``concatenate``/``take``/``scatter``/``repeat``),
   order (``lexsort``/``searchsorted``/``pack_lex_keys``/
   ``adjacent_unique_mask``), scans and reductions (``cumsum``/``add_at``/
   ``reduceat_sum``/``nonzero_indices``/``count_nonzero``), and the transfer
   boundary (``to_host``/``from_host``).  Each backend implements these with
   its native library (NumPy, CuPy, ...).
2. **Derived helpers** — implemented once here in terms of the primitives and
   the array protocol (``as_rows``, ``compare``, ``hash_columns``,
   ``run_lengths_from_starts``), so every backend hashes, coerces and compares
   identically.
3. **The array protocol** — backend arrays must support the NumPy-style
   operator surface the datapath uses in place: ``shape``/``size``/``nbytes``/
   ``dtype``, basic and fancy indexing (read and scatter-write), boolean
   masking, slicing, elementwise comparison/arithmetic/bitwise operators,
   ``astype``/``view``/``reshape``/``copy``, and reductions (``sum``, ``any``,
   ``all``).  NumPy and CuPy both satisfy this natively.

:data:`ARRAY_BACKEND_CONTRACT` is the frozen name set of parts 1 and 2 plus
the dtype attributes; :class:`~repro.backend.guard.GuardBackend` enforces it
at runtime by refusing any attribute outside the set.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from ..errors import BackendError

#: Type alias for backend-owned arrays.  Backends own their array type (NumPy
#: ``ndarray``, CuPy ``ndarray``, ...); the datapath treats them opaquely.
Array = Any

#: Canonical element type of relation tuples (64-bit signed, Section 4.1).
TUPLE_DTYPE = np.dtype(np.int64)
TUPLE_ITEMSIZE = TUPLE_DTYPE.itemsize
#: Canonical element type of index vectors (sorted index array, selections).
INDEX_DTYPE = np.dtype(np.int64)
INDEX_ITEMSIZE = INDEX_DTYPE.itemsize

# splitmix64 constants (shared by every backend so hashes are identical)
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

EMPTY_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)
"""Sentinel stored in unoccupied hash-table slots."""

_EMPTY_KEY_REMAP = np.uint64(0x123456789ABCDEF)


class ArrayBackend(ABC):
    """Abstract array backend: the one contract the whole datapath runs on."""

    #: short registry name, e.g. ``"numpy"`` or ``"cupy"``
    name: str = "abstract"

    # -- canonical dtypes (NumPy dtype objects; CuPy shares them) ----------
    int64 = np.dtype(np.int64)
    uint64 = np.dtype(np.uint64)
    bool_ = np.dtype(np.bool_)
    tuple_dtype = TUPLE_DTYPE
    index_dtype = INDEX_DTYPE

    # ------------------------------------------------------------------
    # Transfer boundary (the only host<->device crossings)
    # ------------------------------------------------------------------
    @abstractmethod
    def to_host(self, array: Array) -> np.ndarray:
        """Copy a backend array to host NumPy (device-to-host PCIe edge)."""

    @abstractmethod
    def from_host(self, array: Any, dtype: Any = None) -> Array:
        """Copy host data into a backend array (host-to-device PCIe edge)."""

    @abstractmethod
    def is_array(self, obj: Any) -> bool:
        """True if ``obj`` is an array this backend owns."""

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    @abstractmethod
    def empty(self, shape: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        """Uninitialised array of the given shape."""

    @abstractmethod
    def zeros(self, shape: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        """Zero-filled array."""

    @abstractmethod
    def ones(self, shape: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        """One-filled array."""

    @abstractmethod
    def full(self, shape: Any, fill_value: Any, dtype: Any = TUPLE_DTYPE) -> Array:
        """Constant-filled array."""

    @abstractmethod
    def arange(self, n: int, dtype: Any = INDEX_DTYPE) -> Array:
        """``[0, n)`` as a 1-D array."""

    @abstractmethod
    def asarray(self, data: Any, dtype: Any = None) -> Array:
        """Coerce ``data`` (backend array, sequence, or scalar) to an array."""

    @abstractmethod
    def ascontiguousarray(self, data: Any, dtype: Any = None) -> Array:
        """Coerce to a C-contiguous array (dense column storage)."""

    # ------------------------------------------------------------------
    # Movement / combination
    # ------------------------------------------------------------------
    @abstractmethod
    def concatenate(self, arrays: Sequence[Array], axis: int = 0) -> Array:
        """Concatenate arrays along ``axis``."""

    @abstractmethod
    def column_stack(self, columns: Sequence[Array]) -> Array:
        """Stack 1-D columns into an ``(n, k)`` row array."""

    @abstractmethod
    def take(self, array: Array, indices: Array) -> Array:
        """Gather: ``array[indices]``."""

    @abstractmethod
    def scatter(self, target: Array, indices: Array, values: Any) -> None:
        """Scatter-write: ``target[indices] = values`` (in place)."""

    @abstractmethod
    def repeat(self, values: Array, repeats: Array) -> Array:
        """Element-wise repetition (match-run expansion)."""

    # ------------------------------------------------------------------
    # Sorting and searching
    # ------------------------------------------------------------------
    @abstractmethod
    def lexsort(self, columns: Sequence[Array], n_rows: int | None = None) -> Array:
        """Stable lexicographic argsort over per-column arrays, column 0
        primary.  ``n_rows`` covers the zero-arity edge: with no sort keys
        every order is (stably) sorted, so the identity permutation returns.
        """

    @abstractmethod
    def searchsorted(self, haystack: Array, needles: Array, side: str = "left") -> Array:
        """Batch binary search of ``needles`` into sorted ``haystack``."""

    @abstractmethod
    def pack_lex_keys(self, columns: Sequence[Array]) -> Array:
        """Pack per-column tuple values into one opaque sortable key array.

        The keys of two packings are mutually comparable (``searchsorted``
        across arrays works) and ordering matches signed lexicographic tuple
        order.  The packed representation is backend-private; callers only
        ever compare, merge-scatter, and binary-search it.
        """

    @abstractmethod
    def adjacent_unique_mask(self, columns: Sequence[Array], n_rows: int | None = None) -> Array:
        """Mask of sorted tuples that differ from their predecessor, per column.

        ``n_rows`` covers the zero-arity edge: with no columns every tuple
        equals its predecessor (one survivor).
        """

    @abstractmethod
    def is_monotone(self, indices: Array) -> bool:
        """True if ``indices`` is non-decreasing (coalescable gather)."""

    # ------------------------------------------------------------------
    # Scans / reductions / compaction support
    # ------------------------------------------------------------------
    @abstractmethod
    def cumsum(self, values: Array) -> Array:
        """Inclusive prefix sum."""

    @abstractmethod
    def nonzero_indices(self, mask: Array) -> Array:
        """Indices of true mask entries as an :data:`INDEX_DTYPE` vector."""

    @abstractmethod
    def count_nonzero(self, mask: Array) -> int:
        """Number of true entries (host int)."""

    @abstractmethod
    def add_at(self, target: Array, indices: Array, values: Any) -> None:
        """Unbuffered scatter-add: ``target[indices] += values`` with repeats."""

    @abstractmethod
    def reduceat_sum(self, values: Array, starts: Array) -> Array:
        """Segmented sum: total of ``values[starts[i]:starts[i+1]]`` per segment."""

    # ------------------------------------------------------------------
    # Derived helpers (implemented once, shared by every backend)
    # ------------------------------------------------------------------
    def as_rows(self, data: Any) -> Array:
        """Coerce ``data`` to a C-contiguous 2-D :data:`TUPLE_DTYPE` row array."""
        rows = self.asarray(data, dtype=TUPLE_DTYPE)
        if rows.ndim == 1:
            rows = rows.reshape(-1, 1)
        if rows.ndim != 2:
            raise ValueError(f"expected a 2-D tuple array, got shape {rows.shape}")
        return self.ascontiguousarray(rows)

    def compare(self, op: str, left: Any, right: Any) -> Array:
        """Elementwise comparison kernel (the guard/filter primitive)."""
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise BackendError(f"unsupported comparison operator {op!r}")

    def run_lengths_from_starts(self, starts: Array, n_rows: int) -> Array:
        """Segment lengths given sorted segment starts and the total length."""
        if int(starts.shape[0]) == 0:
            return self.empty(0, dtype=INDEX_DTYPE)
        bounds = self.concatenate([starts[1:], self.asarray([n_rows], dtype=INDEX_DTYPE)])
        return (bounds - starts).astype(INDEX_DTYPE)

    def _splitmix64(self, values: Array) -> Array:
        z = values + _GAMMA
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))

    def hash_columns(self, columns: Sequence[Array]) -> Array:
        """Vectorised splitmix64 fold of join-key columns into uint64 hashes.

        This is *the* key-hash fold; every layout (rows or columns) and every
        backend produces byte-identical hashes for the same key values.
        """
        if not len(columns):
            raise BackendError("hash_columns requires at least one key column")
        first = self.asarray(columns[0], dtype=TUPLE_DTYPE)
        n = int(first.shape[0])
        acc = self.full(n, np.uint64(len(columns) + 1), dtype=self.uint64)
        for column in columns:
            column = self.asarray(column, dtype=TUPLE_DTYPE)
            acc = self._splitmix64(acc ^ column.view(self.uint64))
        # Reserve the EMPTY_KEY sentinel; remap the (vanishingly rare) clash.
        acc[acc == EMPTY_KEY] = _EMPTY_KEY_REMAP
        return acc

    def hash_rows(self, rows: Array) -> Array:
        """Hash each row of an ``(n, k)`` tuple array into a uint64 value."""
        rows = self.asarray(rows, dtype=TUPLE_DTYPE)
        if rows.ndim == 1:
            rows = rows.reshape(-1, 1)
        if rows.ndim != 2:
            raise BackendError(f"expected a 2-D array of join keys, got shape {rows.shape}")
        n, arity = rows.shape
        if arity == 0:
            return self.full(n, np.uint64(1), dtype=self.uint64)
        return self.hash_columns([rows[:, column] for column in range(arity)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


#: Every attribute a datapath component may touch on a backend instance.
#: :class:`~repro.backend.guard.GuardBackend` raises on anything else.
ARRAY_BACKEND_CONTRACT = frozenset(
    {
        # identity + dtypes
        "name",
        "int64",
        "uint64",
        "bool_",
        "tuple_dtype",
        "index_dtype",
        # transfer boundary
        "to_host",
        "from_host",
        "is_array",
        # creation
        "empty",
        "zeros",
        "ones",
        "full",
        "arange",
        "asarray",
        "ascontiguousarray",
        # movement / combination
        "concatenate",
        "column_stack",
        "take",
        "scatter",
        "repeat",
        # sorting and searching
        "lexsort",
        "searchsorted",
        "pack_lex_keys",
        "adjacent_unique_mask",
        "is_monotone",
        # scans / reductions
        "cumsum",
        "nonzero_indices",
        "count_nonzero",
        "add_at",
        "reduceat_sum",
        # derived helpers
        "as_rows",
        "compare",
        "run_lengths_from_starts",
        "hash_columns",
        "hash_rows",
    }
)
