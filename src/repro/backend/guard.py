"""GuardBackend — a contract-enforcing proxy around any :class:`ArrayBackend`.

The guard forwards exactly the attributes named in
:data:`~repro.backend.base.ARRAY_BACKEND_CONTRACT` to the wrapped backend and
raises :class:`~repro.errors.BackendContractError` on anything else.  Running
the tier-1 suite (or the TC/SG/CSPA equivalence runs) under
``GuardBackend(NumpyBackend())`` therefore proves the datapath touches *only*
the portable primitive surface — a stray ``backend.foo`` that happens to work
on NumPy but is not part of the contract fails loudly instead of silently
blocking a CuPy-class backend.

The guard also counts primitive invocations (:attr:`call_counts`), which the
conformance tests use to assert the datapath really routes through the
contract rather than around it.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from ..errors import BackendContractError
from .base import ARRAY_BACKEND_CONTRACT, ArrayBackend

_NON_CALLABLE = frozenset(
    {"name", "int64", "uint64", "bool_", "tuple_dtype", "index_dtype"}
)


class GuardBackend:
    """Proxy backend that refuses any primitive outside the contract."""

    def __init__(self, inner: ArrayBackend) -> None:
        if isinstance(inner, GuardBackend):
            inner = inner.inner
        self.inner = inner
        self.name = f"guard({inner.name})"
        self.call_counts: Counter[str] = Counter()

    def __getattr__(self, attr: str) -> Any:
        if attr.startswith("__"):  # dunder lookups (pickle, repr machinery)
            raise AttributeError(attr)
        if attr not in ARRAY_BACKEND_CONTRACT:
            raise BackendContractError(
                f"array primitive {attr!r} is outside the ArrayBackend contract; "
                "add it to ARRAY_BACKEND_CONTRACT (and every backend) or express "
                "the operation with existing primitives"
            )
        value = getattr(self.inner, attr)
        if attr in _NON_CALLABLE or not callable(value):
            return value

        counts = self.call_counts

        def counted(*args: Any, **kwargs: Any) -> Any:
            counts[attr] += 1
            return value(*args, **kwargs)

        counted.__name__ = attr
        return counted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GuardBackend({self.inner!r})"


# The guard satisfies the ArrayBackend interface by delegation.
ArrayBackend.register(GuardBackend)
