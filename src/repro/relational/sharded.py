"""Hash-partitioned relation storage for multi-device (sharded) evaluation.

The successors of GDlog scale past one device's memory and bandwidth by
partitioning relations across GPUs and exchanging delta tuples each iteration
("Scaling Worst-Case Optimal Datalog to GPUs"); this module provides the
storage half of that design for the simulated cluster:

* :func:`shard_assignments` — the partitioning rule: a tuple lives on shard
  ``hash(tuple[shard_column]) % num_shards``.  The hash is the backend's
  ``hash_columns`` fold, so every backend (and the host) assigns tuples
  identically.
* :func:`partition_rows` — a charged scatter-by-shard kernel splitting a
  device-resident row array into per-destination-shard slices.
* :class:`ShardedRelation` — a router over ``num_shards`` ordinary
  :class:`~repro.relational.relation.Relation` objects, one per shard device.
  Each shard runs the unchanged columnar ``add_new``/dedup/merge path on its
  partition; because every tuple has exactly one owner shard, per-shard
  deduplication and ``populate_delta`` compose into their global
  counterparts, and the union of the shard fulls is the single-device full.

Cross-shard movement is *not* done here: the evaluator routes foreign-owned
tuples through the charged ``device_to_device`` kernel before they reach a
shard's ``add_new`` (see :mod:`repro.datalog.sharded`).
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager

import numpy as np

from ..backend import Array
from ..device.cost import KernelCost
from ..device.device import Device
from ..errors import SchemaError
from .checkpoint import RelationState
from .hashtable import DEFAULT_LOAD_FACTOR
from .relation import IterationStats, Relation

__all__ = [
    "ShardedRelation",
    "partition_rows",
    "partition_rows_host",
    "shard_assignments",
    "shard_owners",
]


def partition_rows_host(rows, column: int, num_shards: int) -> list:
    """Host-side hash partition of fact rows by owner shard (uncharged).

    The host half of the partitioning rule — same fold, same modulo as the
    device-side :func:`partition_rows` — kept in one place so fact loading
    and delta routing can never disagree about a tuple's owner.
    """
    from ..backend import HOST_BACKEND

    rows = HOST_BACKEND.as_rows(rows)
    if num_shards <= 1:
        return [rows]
    if rows.shape[0] == 0:
        return [rows] * num_shards
    owners = shard_assignments(HOST_BACKEND, rows[:, column], num_shards)
    return [rows[owners == shard] for shard in range(num_shards)]


def _sum_iteration_stats(rows: list[IterationStats]) -> IterationStats:
    """Fold per-shard :class:`IterationStats` into the global view.

    Valid because each tuple is owned by exactly one shard, so the counts
    are disjoint and sum.
    """
    return IterationStats(
        iteration=rows[0].iteration,
        new_count=sum(s.new_count for s in rows),
        delta_count=sum(s.delta_count for s in rows),
        full_count=sum(s.full_count for s in rows),
        in_place_merges=sum(s.in_place_merges for s in rows),
        rebuild_merges=sum(s.rebuild_merges for s in rows),
    )


def shard_assignments(backend, values: Array, num_shards: int) -> Array:
    """Owner shard of each value: ``hash(value) % num_shards``.

    Uses the backend's splitmix64-style column fold so that host-side EDB
    partitioning and device-side delta routing agree bit-for-bit.
    """
    hashes = backend.hash_columns([backend.asarray(values, dtype=backend.int64)])
    return hashes % num_shards


def partition_rows(
    device: Device,
    rows: Array,
    column: int,
    num_shards: int,
    *,
    label: str = "shard_partition",
) -> list[Array]:
    """Split a device-resident row array into per-shard slices by key hash.

    Charged as one hash pass plus a scan + scatter of the payload (the
    standard GPU partition kernel); the per-shard outputs stay resident on
    ``device`` — moving foreign slices to their owners is the evaluator's
    job (through the charged ``device_to_device`` edge).
    """
    backend = device.backend
    rows = backend.as_rows(rows)
    n, arity = rows.shape
    if num_shards <= 1:
        return [rows]
    if n == 0:
        return [rows] + [backend.empty((0, arity), dtype=backend.int64) for _ in range(num_shards - 1)]
    owners = shard_assignments(backend, rows[:, column], num_shards)
    parts = [rows[owners == shard] for shard in range(num_shards)]
    row_bytes = float(rows.nbytes)
    device.charge(
        KernelCost(
            kernel=label,
            # hash read of the key column + payload read + scattered write
            sequential_bytes=float(n) * 8.0 + 2.0 * row_bytes,
            ops=float(n) * (arity + 4.0),
            launches=2,
        )
    )
    return parts


def shard_owners(
    device: Device,
    keys: Array,
    num_shards: int,
    *,
    label: str = "shard_owners",
) -> Array:
    """Owner shard of each device-resident key value (charged hash pass).

    The column-lazy sibling of :func:`partition_rows`: the exchange path
    hashes just the routing key column of a batch, then slices the batch
    lazily per destination — no full-row scatter is paid until (and unless)
    live columns actually ship.  Charged as one streaming pass over the key
    column (read + hash + owner write).
    """
    backend = device.backend
    keys = backend.asarray(keys, dtype=backend.int64)
    owners = shard_assignments(backend, keys, num_shards)
    n = float(keys.shape[0])
    device.charge(
        KernelCost(
            kernel=label,
            sequential_bytes=n * 24.0,
            ops=n * 6.0,
            launches=1,
        )
    )
    return owners


class ShardedRelation:
    """One Datalog relation hash-partitioned across ``num_shards`` devices.

    Exposes the aggregate view the engine needs (counts, history, result
    download) while delegating storage, indexing and the per-iteration
    delta lifecycle to one vanilla :class:`Relation` per shard.
    """

    def __init__(
        self,
        devices: list[Device],
        name: str,
        arity: int,
        *,
        shard_column: int = 0,
        load_factor: float = DEFAULT_LOAD_FACTOR,
        eager_buffers: bool = True,
        buffer_growth_factor: float = 8.0,
        incremental_merge: bool = True,
    ) -> None:
        if not devices:
            raise SchemaError(f"sharded relation {name!r} needs at least one device")
        if not 0 <= shard_column < arity:
            raise SchemaError(
                f"shard column {shard_column} out of range for {name!r} (arity {arity})"
            )
        self.devices = list(devices)
        self.name = name
        self.arity = int(arity)
        self.shard_column = int(shard_column)
        self.num_shards = len(self.devices)
        # Kept so a crashed shard can be rebuilt with identical configuration.
        self._relation_config = dict(
            load_factor=load_factor,
            eager_buffers=eager_buffers,
            buffer_growth_factor=buffer_growth_factor,
            incremental_merge=incremental_merge,
        )
        self.shards = [
            Relation(device, name, arity, **self._relation_config) for device in self.devices
        ]

    # ------------------------------------------------------------------
    # Index registration (forwarded to every shard)
    # ------------------------------------------------------------------
    def require_index(self, join_columns: tuple[int, ...]) -> None:
        for shard in self.shards:
            shard.require_index(join_columns)

    @property
    def index_column_sets(self) -> set[tuple[int, ...]]:
        return self.shards[0].index_column_sets

    def aligned_with(self, join_columns: tuple[int, ...]) -> bool:
        """True if a probe on ``join_columns`` is shard-local.

        Tuples are partitioned by ``hash(t[shard_column])``, so a probe
        keyed on that same column finds all its matches on the shard the
        key hashes to; any other key column scatters matches across shards
        (the evaluator then broadcasts the outer side).
        """
        return bool(join_columns) and join_columns[0] == self.shard_column

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(self, rows) -> None:
        """Partition *host* rows by owner shard and load each partition.

        The host scatters the fact file once (uncharged host work, like
        fact parsing) and each shard pays its own charged H2D upload —
        the same total PCIe volume as the single-device load.
        """
        parts = partition_rows_host(rows, self.shard_column, self.num_shards)
        for shard, part in zip(self.shards, parts):
            shard.initialize(part)

    def initialize_shard(self, shard: int, rows, *, device_resident: bool = False) -> None:
        """Load one shard's partition directly (stratum-init edge)."""
        self.shards[shard].initialize(rows, device_resident=device_resident)

    def add_new_shard(self, shard: int, rows, *, device_resident: bool = False) -> None:
        """Append tuples already routed to ``shard`` to its *new* version."""
        self.shards[shard].add_new(rows, device_resident=device_resident)

    def add_new(self, rows) -> None:
        """Partition *host* rows by owner shard and append each part to *new*.

        The sharded half of the serving engine's epoch seeding: injected
        facts are routed host-side by the canonical shard column (the same
        fold the loader and the exchange use), and each owner shard pays its
        own charged H2D upload.
        """
        parts = partition_rows_host(rows, self.shard_column, self.num_shards)
        for shard, part in zip(self.shards, parts):
            if part.shape[0]:
                shard.add_new(part)

    def present_rows(self, rows) -> np.ndarray:
        """Host rows of ``rows`` that exist in the (global) full version.

        Routes each row to its owner shard and concatenates the per-shard
        membership probes — valid because every tuple has exactly one owner.
        """
        parts = partition_rows_host(rows, self.shard_column, self.num_shards)
        found = [
            shard.present_rows(part)
            for shard, part in zip(self.shards, parts)
            if part.shape[0]
        ]
        found = [part for part in found if part.shape[0]]
        if not found:
            return np.empty((0, self.arity), dtype=np.int64)
        return np.concatenate(found, axis=0)

    def retract(self, rows) -> int:
        """Remove host ``rows`` from the full version; returns removed count.

        Each owner shard rebuilds its own partition (see
        :meth:`Relation.retract`); counts sum because ownership is disjoint.
        """
        parts = partition_rows_host(rows, self.shard_column, self.num_shards)
        return sum(
            shard.retract(part)
            for shard, part in zip(self.shards, parts)
            if part.shape[0]
        )

    @contextmanager
    def shadow_delta(self, rows):
        """Temporarily present host ``rows`` as the delta on their owner shards.

        The sharded DRed over-delete probe: the frontier is partitioned by
        the canonical shard column so each shard's shadow delta holds exactly
        the rows it owns — the same placement a real merged delta would have.
        """
        parts = partition_rows_host(rows, self.shard_column, self.num_shards)
        with ExitStack() as stack:
            for shard, part in zip(self.shards, parts):
                stack.enter_context(shard.shadow_delta(part))
            yield self

    def end_iteration(self) -> IterationStats:
        """Run populate-delta / merge / clear-new on every shard.

        Returns the global view: counts summed across shards (valid because
        each tuple is owned by exactly one shard).
        """
        shard_stats = [shard.end_iteration() for shard in self.shards]
        return _sum_iteration_stats(shard_stats)

    def clear_delta(self) -> None:
        for shard in self.shards:
            shard.clear_delta()

    # ------------------------------------------------------------------
    # Checkpoint / recovery
    # ------------------------------------------------------------------
    def checkpoint_state(self, *, charge: bool = True) -> RelationState:
        """Snapshot every shard's (full, delta) partition to host memory."""
        return RelationState(
            name=self.name,
            arity=self.arity,
            partitions=[shard.checkpoint_state(charge=charge) for shard in self.shards],
        )

    def restore(self, state: RelationState) -> None:
        """Restore every shard from a checkpoint (global rollback).

        Partial restores are unsound — by the time one shard crashes, the
        others' deltas have already advanced past the snapshot — so recovery
        always rolls the whole relation back together.
        """
        if len(state.partitions) != self.num_shards:
            raise SchemaError(
                f"checkpoint for {self.name!r} has {len(state.partitions)} partitions, "
                f"expected {self.num_shards}"
            )
        for shard, partition in zip(self.shards, state.partitions):
            shard.restore(partition)

    def rebuild_shard(self, index: int, device: Device) -> None:
        """Replace shard ``index`` with a fresh relation on a replacement device.

        Used after a shard crash: the old shard's buffers died with its
        device, so the stale :class:`Relation` is simply discarded (no
        ``free`` — its pool no longer exists) and an empty one with the same
        index declarations takes its place, ready for :meth:`restore`.
        """
        column_sets = self.shards[index].index_column_sets
        self.devices[index] = device
        replacement = Relation(device, self.name, self.arity, **self._relation_config)
        for columns in column_sets:
            replacement.require_index(columns)
        self.shards[index] = replacement

    def free(self) -> None:
        """Release every shard's simulated device memory."""
        for shard in self.shards:
            shard.free()

    # ------------------------------------------------------------------
    # Introspection (global view)
    # ------------------------------------------------------------------
    @property
    def full_count(self) -> int:
        return sum(shard.full_count for shard in self.shards)

    @property
    def delta_count(self) -> int:
        return sum(shard.delta_count for shard in self.shards)

    @property
    def new_count(self) -> int:
        return sum(shard.new_count for shard in self.shards)

    @property
    def history(self) -> list[IterationStats]:
        """Per-iteration global stats (shard histories summed position-wise)."""
        histories = [shard.history for shard in self.shards]
        length = min((len(h) for h in histories), default=0)
        return [_sum_iteration_stats([h[i] for h in histories]) for i in range(length)]

    def full_rows_host(self, *, charge: bool = True):
        """Download every shard's full partition to host rows (charged D2H).

        Shard order concatenation — a permutation of the single-device
        result (callers compare as sets).
        """
        from ..backend import HOST_BACKEND

        parts = [HOST_BACKEND.as_rows(shard.full_rows_host(charge=charge)) for shard in self.shards]
        non_empty = [part for part in parts if part.shape[0]]
        if not non_empty:
            return HOST_BACKEND.empty((0, self.arity), dtype=HOST_BACKEND.int64)
        return HOST_BACKEND.concatenate(non_empty, axis=0)

    def as_set(self) -> set[tuple[int, ...]]:
        result: set[tuple[int, ...]] = set()
        for shard in self.shards:
            result |= shard.as_set()
        return result

    def memory_bytes(self) -> int:
        return sum(shard.memory_bytes() for shard in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedRelation({self.name!r}, arity={self.arity}, shards={self.num_shards}, "
            f"shard_column={self.shard_column}, full={self.full_count})"
        )
