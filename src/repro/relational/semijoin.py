"""Per-shard semi-join key filters for volume-minimizing exchanges.

Distributed Datalog engines ("Scaling-Up In-Memory Datalog Processing";
BigDatalog's broadcast joins) cut exchange volume by shipping only the outer
tuples whose join key can actually match on the receiving shard.  This module
provides the filter side of that design for the simulated cluster: one
compact, exact key set per ``(relation, join column, shard)`` triple, built
from each shard's inner-relation join column and refreshed incrementally from
deltas after every merge.

The filters are *exact* sorted-unique key arrays rather than Bloom
signatures: the simulated interconnect charges by bytes, the key sets are a
join column's distinct values (small next to the row payloads they prune),
and exactness keeps the pruning sound without a false-positive story.

Honest accounting: building a filter charges the owning device's dedup
kernels, and distributing it to the probing peers goes through the charged
``broadcast_to`` interconnect edge — so a filter only pays for itself when
the rows it drops outweigh the keys it ships.  Probes charge the standard
``binary_search_keys`` pattern on the sending device.
"""

from __future__ import annotations

from ..backend import Array
from ..device.device import Device
from ..device.profiler import PHASE_SHARD_EXCHANGE

__all__ = ["ExchangeFilterBank"]


class ExchangeFilterBank:
    """Sorted-unique join-key sets, one per (relation, column, target shard).

    Lifecycle: :meth:`ensure` lazily builds (and charges) the per-shard key
    sets for an inner relation's join column the first time an exchange wants
    to prune against it; :meth:`refresh` folds newly merged delta keys in
    after each fixpoint iteration; :meth:`invalidate` drops everything on a
    fault rollback, since a restored ``full`` no longer matches the filters
    built from the pre-crash state.
    """

    def __init__(self, devices: "list[Device]") -> None:
        # A live view, not a copy: shard rebuilds swap device entries in
        # place and the bank must see the replacements.
        self.devices = devices
        self.num_shards = len(self.devices)
        #: (relation name, join column) -> per-shard sorted unique key arrays
        self._keys: dict[tuple[str, int], list[Array]] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def has(self, name: str, column: int) -> bool:
        return (name, int(column)) in self._keys

    def has_relation(self, name: str) -> bool:
        """True if any column of ``name`` has a live filter (refresh needed)."""
        return any(tracked == name for tracked, _column in self._keys)

    def tracked_relations(self) -> set[str]:
        """Names of relations with at least one live filter."""
        return {name for name, _column in self._keys}

    # ------------------------------------------------------------------
    # Construction / maintenance
    # ------------------------------------------------------------------
    def ensure(self, name: str, column: int, shards) -> None:
        """Build the per-shard key sets for ``shards[i]``'s ``column`` values.

        Each owning shard deduplicates its own full-version column (charged
        on the owner) and broadcasts the resulting key set to every probing
        peer over the charged interconnect.  No-op when already built.
        """
        key = (name, int(column))
        if key in self._keys:
            return
        keysets: list[Array] = []
        for shard_index, shard in enumerate(shards):
            device = self.devices[shard_index]
            with device.profiler.phase(PHASE_SHARD_EXCHANGE):
                values = shard.full_batch().column(int(column), label=f"{name}.filter_scan")
                unique = device.kernels.unique_columns([values], label=f"{name}.filter_build")
                keyset = unique[0] if unique else values
                peers = [peer for index, peer in enumerate(self.devices) if index != shard_index]
                if peers and keyset.shape[0]:
                    device.kernels.broadcast_to(keyset, peers, label=f"{name}.filter")
            keysets.append(keyset)
        self._keys[key] = keysets

    def refresh(self, name: str, shards) -> None:
        """Fold freshly merged delta keys into every filter over ``name``.

        Called right after ``end_iteration`` promotes *new* into *delta*:
        the delta rows are exactly the keys that just entered ``full``, so
        only they are deduplicated, broadcast, and merged — the incremental
        counterpart of :meth:`ensure`'s full build.
        """
        for (tracked_name, column), keysets in self._keys.items():
            if tracked_name != name:
                continue
            for shard_index, shard in enumerate(shards):
                if shard.delta_count == 0:
                    continue
                device = self.devices[shard_index]
                backend = device.backend
                with device.profiler.phase(PHASE_SHARD_EXCHANGE):
                    values = shard.delta_batch.column(column, label=f"{name}.filter_delta")
                    unique = device.kernels.unique_columns(
                        [values], label=f"{name}.filter_refresh"
                    )
                    fresh = unique[0] if unique else values
                    if not fresh.shape[0]:
                        continue
                    peers = [
                        peer for index, peer in enumerate(self.devices) if index != shard_index
                    ]
                    if peers:
                        device.kernels.broadcast_to(fresh, peers, label=f"{name}.filter")
                    merged = device.kernels.unique_columns(
                        [backend.concatenate([keysets[shard_index], fresh])],
                        label=f"{name}.filter_merge",
                    )
                keysets[shard_index] = merged[0]

    def invalidate(self) -> None:
        """Drop every filter (fault rollback: ``full`` rewound past them)."""
        self._keys.clear()

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(
        self,
        device: Device,
        name: str,
        column: int,
        target: int,
        keys: Array,
        *,
        label: str = "semijoin_probe",
    ) -> "Array | None":
        """Mask of ``keys`` present in shard ``target``'s filter, or ``None``.

        ``None`` means no filter is tracked for this (relation, column) —
        the caller ships unfiltered.  Charged as a batch binary search on
        the *sending* device (where the outer keys live).
        """
        keysets = self._keys.get((name, int(column)))
        if keysets is None:
            return None
        backend = device.backend
        keys = backend.asarray(keys, dtype=backend.int64)
        n = int(keys.shape[0])
        keyset = keysets[target]
        size = int(keyset.shape[0])
        if n == 0 or size == 0:
            return backend.zeros(n, dtype=backend.bool_)
        device.kernels.binary_search_keys(n, size, 8.0, label=label)
        positions = backend.searchsorted(keyset, keys, side="left")
        # Wrap the one-past-the-end rank back into range: a key greater than
        # the filter maximum then compares against the minimum, which cannot
        # spuriously match it.
        positions = positions % size
        return backend.take(keyset, positions) == keys
