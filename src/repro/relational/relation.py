"""Semi-naïve relation storage: full / delta / new versions backed by HISA.

Figure 3 of the paper shows the per-iteration lifecycle of every IDB relation:
relational-algebra kernels append tuples to *new*; *delta* is populated by
removing from new everything already in *full*; delta is indexed and merged
into full; new is cleared.  :class:`Relation` implements exactly that
lifecycle, maintaining one HISA index of the full version per join-column set
requested by the query plan (Datalog engines index for every query), plus one
canonical all-column index used for deduplication.

The transfer boundary
---------------------

Relations are device-resident: every array they hold belongs to the device's
:class:`~repro.backend.base.ArrayBackend`.  Host payloads cross the PCIe
boundary exactly twice, and both edges are charged to the cost model:

* **into** the relation — :meth:`initialize` and :meth:`add_new` upload host
  rows via the charged ``from_host`` kernel unless the caller certifies the
  rows are already device-resident (``device_resident=True``, which the
  evaluator does for join outputs and materialized batches);
* **out of** the relation — callers extracting rows for host consumption
  (result collection) download via the charged ``to_host`` kernel.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass

import numpy as np

from ..backend import Array
from ..device.device import Device
from ..device.memory import Buffer
from ..device.profiler import (
    PHASE_CHECKPOINT,
    PHASE_DEDUPLICATION,
    PHASE_INDEX_DELTA,
    PHASE_INDEX_FULL,
    PHASE_MERGE,
    PHASE_POPULATE_DELTA,
    PHASE_RECOVERY,
    PHASE_RETRACTION,
)
from ..errors import DeviceOutOfMemoryError, SchemaError
from .buffers import MergeBufferManager, make_buffer_manager
from .checkpoint import PartitionState
from .columnbatch import ColumnBatch
from .hashtable import DEFAULT_LOAD_FACTOR
from .hisa import HISA
from .operators import RowsLike, deduplicate, difference, union

#: Smallest row count OOM degradation will split a dedup down to; below this
#: the scratch is a few KiB and a failure means the device is genuinely full.
OOM_DEDUP_FLOOR_ROWS = 256


@dataclass
class IterationStats:
    """Per-iteration bookkeeping returned by :meth:`Relation.end_iteration`."""

    iteration: int
    new_count: int
    delta_count: int
    full_count: int
    #: per-index merges absorbed in place (delta fit the data buffer headroom)
    in_place_merges: int = 0
    #: per-index merges that fell back to the legacy scratch rebuild
    rebuild_merges: int = 0


class Relation:
    """One Datalog relation with full/delta/new versions on a simulated device."""

    def __init__(
        self,
        device: Device,
        name: str,
        arity: int,
        *,
        load_factor: float = DEFAULT_LOAD_FACTOR,
        eager_buffers: bool = True,
        buffer_growth_factor: float = 8.0,
        incremental_merge: bool = True,
        identity_index: bool = True,
        stats: "object | None" = None,
    ) -> None:
        if arity <= 0:
            raise SchemaError(f"relation {name!r} must have positive arity, got {arity}")
        self.device = device
        self.backend = device.backend
        self.name = name
        self.arity = int(arity)
        #: Optional StatsCatalog; every index merge reports its (free)
        #: delta/total counts into it for the cost-based planner.
        self.stats = stats
        self.load_factor = float(load_factor)
        self.eager_buffers = bool(eager_buffers)
        self.buffer_growth_factor = float(buffer_growth_factor)
        self.incremental_merge = bool(incremental_merge)

        self._all_columns = tuple(range(self.arity))
        # The canonical all-column index backs full_rows()/full_count and the
        # merge/dedup cycle; probe-only relations (cross-shard replicas that
        # are only ever a join inner) skip it and pay for just the indexes
        # their probes require.
        self._index_column_sets: set[tuple[int, ...]] = (
            {self._all_columns} if identity_index else set()
        )
        self.full_indexes: dict[tuple[int, ...], HISA] = {}
        self._buffer_managers: dict[tuple[int, ...], MergeBufferManager] = {}
        self._delta: RowsLike = self.backend.empty((0, self.arity), dtype=self.backend.int64)
        self._delta_rows_view: Array | None = None
        self._new_parts: list[RowsLike] = []
        self._new_buffers: list[Buffer] = []
        self._delta_buffer: Buffer | None = None
        self._iteration = 0
        self.history: list[IterationStats] = []
        #: dedup passes that had to degrade into halved chunks after an OOM
        self.oom_degradations = 0

    # ------------------------------------------------------------------
    # Index registration
    # ------------------------------------------------------------------
    def require_index(self, join_columns: tuple[int, ...]) -> None:
        """Declare that the query plan range-queries this relation on ``join_columns``."""
        join_columns = tuple(int(c) for c in join_columns)
        if not join_columns:
            raise SchemaError("an index needs at least one join column")
        if any(c < 0 or c >= self.arity for c in join_columns):
            raise SchemaError(f"index columns {join_columns} out of range for {self.name!r}")
        self._index_column_sets.add(join_columns)

    def build_index(self, join_columns: tuple[int, ...]) -> None:
        """Ensure an index on ``join_columns`` exists, building it if needed.

        ``require_index`` only *registers* a column set before
        ``initialize``; this also backfills the index on an
        already-initialized relation — the path a probe-only replica takes
        when a second rule probes it on a column set the first build didn't
        cover.  Every HISA stores complete tuples, so any existing index can
        seed the new one.
        """
        join_columns = tuple(int(c) for c in join_columns)
        self.require_index(join_columns)
        if join_columns in self.full_indexes or not self.full_indexes:
            return
        seed = next(iter(self.full_indexes.values()))
        with self.device.profiler.phase(PHASE_INDEX_FULL):
            self.full_indexes[join_columns] = HISA(
                self.device,
                seed.natural_rows(),
                join_columns,
                load_factor=self.load_factor,
                label=f"{self.name}[{','.join(map(str, join_columns))}]",
            )
            self._buffer_managers[join_columns] = make_buffer_manager(
                self.device,
                eager=self.eager_buffers,
                growth_factor=self.buffer_growth_factor,
                label=f"{self.name}.merge_buffer",
            )
            self._attach_stats(self.full_indexes[join_columns], join_columns)

    @property
    def index_column_sets(self) -> set[tuple[int, ...]]:
        return set(self._index_column_sets)

    def index_for(self, join_columns: tuple[int, ...]) -> HISA:
        """Return the full-version HISA indexed on ``join_columns``."""
        join_columns = tuple(int(c) for c in join_columns)
        if join_columns not in self.full_indexes:
            raise SchemaError(
                f"relation {self.name!r} has no index on columns {join_columns}; "
                "call require_index() before initialize()"
            )
        return self.full_indexes[join_columns]

    @property
    def canonical_index(self) -> HISA:
        """The all-column index used for deduplication / membership tests."""
        return self.index_for(self._all_columns)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(self, rows: Array, *, device_resident: bool = False) -> None:
        """Load the initial facts: full = delta = deduplicated ``rows``.

        ``rows`` is treated as a *host* payload unless ``device_resident``
        certifies it already lives on the device (the evaluator's stratum
        initialization does); host rows pay the charged H2D transfer — the
        PCIe edge the cost model previously ignored.
        """
        if not device_resident:
            rows = self.device.kernels.from_host(
                rows, dtype=self.backend.int64, label=f"{self.name}.h2d_facts"
            )
        rows = self._coerce(rows)
        with self.device.profiler.phase(PHASE_DEDUPLICATION):
            rows = deduplicate(self.device, rows, label=f"{self.name}.init_dedup")
        self._delta = rows
        self._delta_rows_view = None
        with self.device.profiler.phase(PHASE_INDEX_FULL):
            # ``deduplicate`` left ``rows`` in natural lexicographic order, so
            # every index whose column order is the identity permutation (the
            # canonical all-column index and all prefix indexes) adopts that
            # one shared sort instead of re-sorting.
            for columns in sorted(self._index_column_sets):
                self.full_indexes[columns] = HISA(
                    self.device,
                    rows,
                    columns,
                    load_factor=self.load_factor,
                    label=f"{self.name}[{','.join(map(str, columns))}]",
                    assume_sorted=True,
                )
                self._buffer_managers[columns] = make_buffer_manager(
                    self.device,
                    eager=self.eager_buffers,
                    growth_factor=self.buffer_growth_factor,
                    label=f"{self.name}.merge_buffer",
                )
                self._attach_stats(self.full_indexes[columns], columns)

    def add_new(self, rows: RowsLike, *, device_resident: bool = False) -> None:
        """Append freshly derived tuples (rows or a columnar batch) to *new*.

        A :class:`ColumnBatch` is materialized column-wise here — the
        delta-merge boundary of the late-materialization contract: every
        column that survived the rule's head projection is about to be read
        by deduplication anyway, and pinning values now decouples the batch
        from producer storage that later merges will grow.  Batches are
        device-resident by construction; row arrays are host payloads unless
        the caller says otherwise, and pay the charged H2D transfer.
        """
        if isinstance(rows, ColumnBatch):
            if rows.arity != self.arity:
                raise SchemaError(
                    f"relation {self.name!r} has arity {self.arity}, got a batch of arity {rows.arity}"
                )
            if len(rows) == 0:
                return
            # Resolving every lazy column of the incoming batch is one
            # multi-column gather kernel, not one launch per column.
            with self.device.fused(f"{self.name}.new_gather"):
                rows.columns(charge=True, label=f"{self.name}.new_gather")
        else:
            if not device_resident:
                rows = self.device.kernels.from_host(
                    rows, dtype=self.backend.int64, label=f"{self.name}.h2d_new"
                )
            rows = self._coerce(rows)
            if rows.shape[0] == 0:
                return
        buffer = self.device.allocate(rows.nbytes, label=f"{self.name}.new", charge_cost=False)
        self._new_parts.append(rows)
        self._new_buffers.append(buffer)

    def end_iteration(self) -> IterationStats:
        """Run the populate-delta / merge / clear-new steps of Figure 3."""
        self._iteration += 1
        profiler = self.device.profiler

        with profiler.phase(PHASE_DEDUPLICATION):
            if self._new_parts:
                new_rows = union(
                    self.device, self._new_parts, arity=self.arity, label=f"{self.name}.gather_new"
                )
                new_rows = self._deduplicate_new(new_rows)
            else:
                new_rows = self.backend.empty((0, self.arity), dtype=self.backend.int64)
        new_count = len(new_rows)

        with profiler.phase(PHASE_POPULATE_DELTA):
            if new_count and self.full_count:
                delta = difference(self.device, new_rows, self.canonical_index, label=f"{self.name}.populate_delta")
            else:
                delta = new_rows
        delta_count = len(delta)

        # Retire the previous delta buffer and the accumulated new buffers.
        self._release_new_buffers()
        if self._delta_buffer is not None:
            self.device.free(self._delta_buffer, charge_cost=False)
            self._delta_buffer = None
        self._delta = delta
        self._delta_rows_view = None
        if delta_count:
            self._delta_buffer = self.device.allocate(delta.nbytes, label=f"{self.name}.delta", charge_cost=False)

        in_place_merges = 0
        rebuild_merges = 0
        if delta_count:
            delta_indexes: dict[tuple[int, ...], HISA] = {}
            with profiler.phase(PHASE_INDEX_DELTA):
                # ``delta`` is a subset of the deduplicated (sorted) new rows
                # with order preserved, so the per-iteration delta sort is
                # performed once and shared by every identity-order index.
                # No hash table: the merge consumes only the delta's sorted
                # data and cached keys, and nothing ever probes a delta index.
                for columns in sorted(self._index_column_sets):
                    # A prefix index adopts the dedup sort directly, so its
                    # build is column reorder + index adoption + run finding —
                    # elementwise stages over one pass, fused into one launch.
                    # Non-prefix indexes re-sort (a real multi-pass kernel)
                    # and keep their per-stage launches.
                    adopts_sort = columns == tuple(range(len(columns)))
                    with self.device.fused(f"{self.name}.delta.build_fused") if adopts_sort else nullcontext():
                        delta_indexes[columns] = HISA(
                            self.device,
                            delta,
                            columns,
                            load_factor=self.load_factor,
                            label=f"{self.name}.delta[{','.join(map(str, columns))}]",
                            assume_sorted=True,
                            build_hash_index=False,
                        )
            with profiler.phase(PHASE_MERGE):
                for columns in sorted(self._index_column_sets):
                    manager = self._buffer_managers[columns]
                    merged = self.full_indexes[columns].merge(
                        delta_indexes[columns], manager, incremental=self.incremental_merge
                    )
                    self.full_indexes[columns] = merged
                    if merged.last_merge_in_place:
                        in_place_merges += 1
                    if not merged.last_merge_incremental:
                        rebuild_merges += 1

        stats = IterationStats(
            iteration=self._iteration,
            new_count=new_count,
            delta_count=delta_count,
            full_count=self.full_count,
            in_place_merges=in_place_merges,
            rebuild_merges=rebuild_merges,
        )
        self.history.append(stats)
        return stats

    def _deduplicate_new(self, rows: RowsLike) -> RowsLike:
        """Deduplicate the gathered new rows with an accounted sort scratch.

        The radix sort inside deduplication needs O(n) transient device
        scratch; this models it as a real pool allocation so memory pressure
        (or an injected ``alloc`` fault) can surface here.  When the scratch
        cannot be satisfied the pass *degrades* instead of failing: each half
        is deduplicated with a half-size scratch and the sorted halves are
        merged with an adjacent-unique compaction — the same sorted,
        duplicate-free output, bought with extra charged merge passes.
        """
        try:
            scratch = self.device.allocate(
                int(rows.nbytes), label=f"{self.name}.dedup_scratch", charge_cost=False
            )
        except DeviceOutOfMemoryError:
            n = len(rows)
            if n <= OOM_DEDUP_FLOOR_ROWS:
                raise
            self.oom_degradations += 1
            if isinstance(rows, ColumnBatch):
                rows = rows.as_rows(label=f"{self.name}.dedup_degrade_materialize")
            mid = n // 2
            left = self._deduplicate_new(rows[:mid])
            right = self._deduplicate_new(rows[mid:])
            merged = self.device.kernels.merge_sorted_rows(
                left, right, label=f"{self.name}.dedup_degrade_merge"
            )
            mask = self.device.kernels.adjacent_unique_mask(
                merged, label=f"{self.name}.dedup_degrade_unique"
            )
            return self.device.kernels.stream_compact(
                merged, mask, label=f"{self.name}.dedup_degrade_compact"
            )
        try:
            return deduplicate(self.device, rows, label=f"{self.name}.dedup_new")
        finally:
            self.device.free(scratch, charge_cost=False)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint_state(self, *, charge: bool = True) -> PartitionState:
        """Snapshot (full, delta) to host memory — the complete resumable state.

        Indexes, hash tables and buffer managers are deterministically
        rebuildable from these two column sets, so they are not serialized.
        The D2H downloads are charged under the checkpoint phase so snapshot
        overhead is visible in profiles (and in the robustness benchmark).
        """
        with self.device.profiler.phase(PHASE_CHECKPOINT):
            full = self.full_rows()
            delta = self.delta_rows
            if charge:
                full = self.device.kernels.to_host(full, label=f"{self.name}.d2h_checkpoint")
                delta = self.device.kernels.to_host(delta, label=f"{self.name}.d2h_checkpoint")
            else:
                full = self.backend.to_host(full)
                delta = self.backend.to_host(delta)
        return PartitionState(full=full, delta=delta, iteration=self._iteration)

    def restore(self, partition: PartitionState) -> None:
        """Rebuild every version and index from a host checkpoint partition.

        The inverse of :meth:`checkpoint_state`: frees whatever state the
        relation currently holds, re-uploads the snapshot's full rows through
        the ordinary :meth:`initialize` path (which rebuilds all HISA indexes
        from the sorted data), then overrides the delta version with the
        snapshot's delta.  All uploads are charged under the recovery phase.
        """
        self.free()
        with self.device.profiler.phase(PHASE_RECOVERY):
            self.initialize(partition.full)
            delta = self.device.kernels.from_host(
                partition.delta, dtype=self.backend.int64, label=f"{self.name}.h2d_restore_delta"
            )
            delta = self._coerce(delta)
            self._delta = delta
            self._delta_rows_view = None
            if len(delta):
                self._delta_buffer = self.device.allocate(
                    delta.nbytes, label=f"{self.name}.delta", charge_cost=False
                )
        self._iteration = int(partition.iteration)
        del self.history[self._iteration :]

    # ------------------------------------------------------------------
    # Serving-epoch support (membership probes, retraction, shadow deltas)
    # ------------------------------------------------------------------
    def present_rows(self, rows, *, device_resident: bool = False) -> "Array":
        """Host rows of ``rows`` that currently exist in the full version.

        The membership semi-join the serving engine's DRed over-delete phase
        starts from: requested retractions (and candidate over-deletions) are
        intersected with the resident full version before they enter the
        deletion frontier.  Host payloads pay the charged H2D upload, the
        probe is the canonical index's exact ``contains`` lookup, and the
        surviving rows come back through the charged D2H edge.
        """
        if not device_resident:
            rows = self.device.kernels.from_host(
                rows, dtype=self.backend.int64, label=f"{self.name}.h2d_present_probe"
            )
        rows = self._coerce(rows)
        if rows.shape[0] == 0 or self.full_count == 0:
            return np.empty((0, self.arity), dtype=np.int64)
        with self.device.profiler.phase(PHASE_RETRACTION):
            mask = self.canonical_index.contains(rows)
            kept = self.device.kernels.stream_compact(
                rows, mask, label=f"{self.name}.present_compact"
            )
            return self.device.kernels.to_host(kept, label=f"{self.name}.d2h_present")

    def retract(self, rows, *, device_resident: bool = False) -> int:
        """Remove ``rows`` from the full version; returns how many were removed.

        The apply step of a DRed deletion epoch.  HISA's merge path is
        insert-only, so retraction rebuilds: a temporary all-column index over
        the retract set masks the full version, survivors are stream-compacted,
        and every registered index is rebuilt from the compacted rows through
        the ordinary :meth:`initialize` path (all of it charged under the
        retraction phase).  The delta is cleared afterwards — between serving
        epochs every delta is empty by invariant.
        """
        if not device_resident:
            rows = self.device.kernels.from_host(
                rows, dtype=self.backend.int64, label=f"{self.name}.h2d_retract"
            )
        rows = self._coerce(rows)
        if rows.shape[0] == 0 or self.full_count == 0:
            self.clear_delta()
            return 0
        with self.device.profiler.phase(PHASE_RETRACTION):
            probe = HISA(
                self.device,
                rows,
                self._all_columns,
                load_factor=self.load_factor,
                label=f"{self.name}.retract_probe",
            )
            try:
                full = self.full_rows()
                doomed = probe.contains(full)
            finally:
                probe.free()
            keep = self.backend.compare("==", doomed, False)
            remaining = self.device.kernels.stream_compact(
                full, keep, label=f"{self.name}.retract_compact"
            )
            removed = self.full_count - int(remaining.shape[0])
            if removed == 0:
                self.clear_delta()
                return 0
            self.free()
            self.initialize(remaining, device_resident=True)
        self.clear_delta()
        return removed

    @contextmanager
    def shadow_delta(self, rows, *, device_resident: bool = False):
        """Temporarily present ``rows`` as this relation's delta version.

        The DRed over-delete phase executes delta rule versions with the
        deletion frontier standing in for the delta while the full version
        (still pre-deletion) serves the probes.  The real delta (empty
        between epochs by invariant) is restored on exit; the shadow rows
        are never merged and never allocate a delta buffer.
        """
        if not device_resident:
            rows = self.device.kernels.from_host(
                rows, dtype=self.backend.int64, label=f"{self.name}.h2d_shadow_delta"
            )
        rows = self._coerce(rows)
        saved = self._delta
        saved_view = self._delta_rows_view
        self._delta = rows
        self._delta_rows_view = None
        try:
            yield self
        finally:
            self._delta = saved
            self._delta_rows_view = saved_view

    def clear_delta(self) -> None:
        """Drop the delta version (used when a stratum reaches its fixpoint)."""
        self._delta = self.backend.empty((0, self.arity), dtype=self.backend.int64)
        self._delta_rows_view = None
        if self._delta_buffer is not None:
            self.device.free(self._delta_buffer, charge_cost=False)
            self._delta_buffer = None

    def free(self) -> None:
        """Release every simulated device buffer held by this relation."""
        for hisa in self.full_indexes.values():
            hisa.free()
        self.full_indexes.clear()
        for manager in self._buffer_managers.values():
            manager.release()
        self._buffer_managers.clear()
        self._release_new_buffers()
        self.clear_delta()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def full_count(self) -> int:
        if self._all_columns in self.full_indexes:
            return self.full_indexes[self._all_columns].tuple_count
        return 0

    @property
    def delta_count(self) -> int:
        return len(self._delta)

    @property
    def delta_rows(self) -> Array:
        """The delta version as a device-resident row array (row-pipeline view).

        A columnar delta is assembled into rows once and cached until the
        next delta replaces it.  Host consumers must download the result
        through the charged ``to_host`` kernel themselves.
        """
        if isinstance(self._delta, ColumnBatch):
            if self._delta_rows_view is None:
                self._delta_rows_view = self._delta.as_rows(charge=False)
            return self._delta_rows_view
        return self._delta

    @property
    def delta_batch(self) -> ColumnBatch:
        """The delta version as a columnar batch (zero-copy wrap)."""
        return ColumnBatch.wrap(self.device, self._delta)

    @property
    def new_count(self) -> int:
        return sum(len(part) for part in self._new_parts)

    def full_rows(self) -> Array:
        """All tuples of the full version in schema column order (device-resident)."""
        if self._all_columns in self.full_indexes:
            return self.full_indexes[self._all_columns].natural_rows()
        return self.backend.empty((0, self.arity), dtype=self.backend.int64)

    def full_rows_host(self, *, charge: bool = True):
        """Download the full version to host rows (the charged D2H edge)."""
        rows = self.full_rows()
        if charge:
            return self.device.kernels.to_host(rows, label=f"{self.name}.d2h_result")
        return self.backend.to_host(rows)

    def full_batch(self) -> ColumnBatch:
        """The full version as a columnar batch — zero-copy views of the
        canonical index's stored columns (the columnar scan fast path)."""
        if self._all_columns in self.full_indexes:
            hisa = self.full_indexes[self._all_columns]
            return ColumnBatch.from_columns(self.device, hisa.natural_columns(), length=hisa.tuple_count)
        return ColumnBatch.empty(self.device, self.arity)

    def as_set(self) -> set[tuple[int, ...]]:
        """The full version as a Python set of tuples (for tests; uncharged)."""
        return {tuple(int(v) for v in row) for row in self.full_rows_host(charge=False)}

    def memory_bytes(self) -> int:
        """Simulated device bytes currently attributable to this relation."""
        total = sum(hisa.nbytes for hisa in self.full_indexes.values())
        total += int(self._delta.nbytes)
        total += sum(int(part.nbytes) for part in self._new_parts)
        return total

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _attach_stats(self, hisa: HISA, columns: tuple[int, ...]) -> None:
        """Point one index's merge observer at the shared stats catalog.

        The initial build counts as a merge of the whole relation (iteration
        1's delta scan reads exactly these rows), so the catalog is seeded
        immediately rather than waiting for the first end_iteration.
        """
        if self.stats is None:
            return
        catalog, name, arity = self.stats, self.name, self.arity

        def observe(*, delta_rows, delta_distinct, total_rows, total_distinct, max_multiplicity=None):
            catalog.observe_merge(
                name,
                arity,
                columns,
                delta_rows=delta_rows,
                delta_distinct=delta_distinct,
                total_rows=total_rows,
                total_distinct=total_distinct,
                max_multiplicity=max_multiplicity,
            )

        hisa.stats_observer = observe
        observe(
            delta_rows=hisa.tuple_count,
            delta_distinct=hisa.distinct_key_count,
            total_rows=hisa.tuple_count,
            total_distinct=hisa.distinct_key_count,
            max_multiplicity=hisa.max_run_length,
        )

    def _coerce(self, rows: Array) -> Array:
        backend = self.backend
        rows = backend.asarray(rows, dtype=backend.int64)
        if rows.size == 0:
            return backend.empty((0, self.arity), dtype=backend.int64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        if rows.ndim != 2 or rows.shape[1] != self.arity:
            raise SchemaError(
                f"relation {self.name!r} has arity {self.arity}, got tuples of shape {rows.shape}"
            )
        return backend.as_rows(rows)

    def _release_new_buffers(self) -> None:
        for buffer in self._new_buffers:
            self.device.free(buffer, charge_cost=False)
        self._new_buffers.clear()
        self._new_parts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, arity={self.arity}, full={self.full_count}, delta={self.delta_count})"
