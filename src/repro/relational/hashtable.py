"""Open-addressing hash table over join-key hashes (HISA tier 3).

The table maps the 64-bit hash of a join key to the position, within the
sorted index array, of the *first* tuple carrying that key (Algorithm 2).  We
additionally keep the run length next to each entry: the paper discovers the
run length by scanning the sorted index array until the join columns change,
and the join kernel charges exactly that scan; storing the length lets the
simulator expand matches with vectorised bulk primitives instead of a Python
loop, without changing what is charged.

Construction emulates the massively parallel atomic-CAS insertion loop with
rounds of vectorised linear probing: in round ``o`` every still-pending key
attempts slot ``(hash + o) mod capacity``; at most one key can claim an empty
slot per round (the "CAS winner"), everyone else retries in the next round.
The number of rounds therefore equals the longest probe sequence, exactly as
it would on the GPU.

Incremental maintenance (Section 5.1, semi-naïve merge).  A persistent
``full`` index gains only the *delta*'s new join keys every fixpoint
iteration, so rebuilding the whole table each merge is O(|full|) wasted work.
The table therefore supports

* :meth:`insert_batch` — insert a batch of previously-absent keys with the
  same CAS-race emulation, growing the backing arrays *geometrically* (the
  capacity at least doubles on overflow) so the amortised per-key rehash cost
  is O(1) over a fixpoint;
* :meth:`find_slots` — resolve keys to their physical slot index (used by the
  owning HISA to remember where each run's entry lives after a growth rehash);
* :meth:`update_slots` — bulk-refresh the (value, run length) payload of
  existing entries in place.  Merging a delta shifts every run's start
  position, so the owning HISA scatters the new positions into the already
  known slots — a streaming pass, not a rebuild.

Existing keys keep their slot until a growth rehash, which is what makes the
slot-handle scheme sound.  All arrays are owned by the device's
:class:`~repro.backend.base.ArrayBackend`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..backend import EMPTY_KEY, Array
from ..device.cost import KernelCost
from ..device.device import Device
from .hashing import next_power_of_two

_SLOT_BYTES = 16  # 8-byte key + 8-byte value, the paper's (K, V) pair
DEFAULT_LOAD_FACTOR = 0.8


@dataclass(frozen=True)
class HashTableStats:
    """Construction statistics (used by the load-factor ablation)."""

    capacity: int
    n_keys: int
    build_rounds: int
    total_probes: int

    @property
    def load(self) -> float:
        return self.n_keys / self.capacity if self.capacity else 0.0

    @property
    def average_probes(self) -> float:
        return self.total_probes / self.n_keys if self.n_keys else 0.0


class OpenAddressingHashTable:
    """GPU-style open-addressing table keyed by uint64 join-key hashes."""

    def __init__(
        self,
        device: Device,
        key_hashes: Array,
        values: Array,
        run_lengths: Array | None = None,
        *,
        load_factor: float = DEFAULT_LOAD_FACTOR,
        label: str = "hash_table",
        charge: bool = True,
    ) -> None:
        if not 0 < load_factor <= 1.0:
            raise ValueError("load_factor must be in (0, 1]")
        backend = device.backend
        key_hashes = backend.asarray(key_hashes, dtype=backend.uint64)
        values = backend.asarray(values, dtype=backend.int64)
        if key_hashes.shape != values.shape:
            raise ValueError("key_hashes and values must have the same length")
        if run_lengths is None:
            run_lengths = backend.ones(values.shape, dtype=backend.int64)
        run_lengths = backend.asarray(run_lengths, dtype=backend.int64)

        self.device = device
        self.backend = backend
        self.load_factor = float(load_factor)
        self.label = label
        self.n_keys = int(key_hashes.size)
        self.capacity = next_power_of_two(int(math.ceil(max(1, self.n_keys) / self.load_factor)))
        self._mask = self._hash_scalar(self.capacity - 1)

        self._keys = backend.full(self.capacity, EMPTY_KEY, dtype=backend.uint64)
        self._values = backend.full(self.capacity, -1, dtype=backend.int64)
        self._lengths = backend.zeros(self.capacity, dtype=backend.int64)

        rounds, probes, slots = self._build(key_hashes, values, run_lengths)
        #: physical slot claimed by each constructor key, in input order
        #: (valid until the first growth rehash) — saves callers a probe pass.
        self.built_slots = slots
        self.stats = HashTableStats(
            capacity=self.capacity,
            n_keys=self.n_keys,
            build_rounds=rounds,
            total_probes=probes,
        )
        if charge:
            self.device.charge(
                KernelCost(
                    kernel=f"{label}.build",
                    random_bytes=float(probes) * _SLOT_BYTES,
                    sequential_bytes=float(self.n_keys) * 24.0,
                    ops=float(probes) * 4.0,
                    alloc_bytes=float(self.nbytes),
                    allocations=1,
                )
            )

    def _hash_scalar(self, value: int):
        """A uint64 scalar in the backend's hash dtype (for masking/offsets)."""
        return self.backend.asarray(value, dtype=self.backend.uint64)[()]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(
        self, key_hashes: Array, values: Array, lengths: Array
    ) -> tuple[int, int, Array]:
        """CAS-race insertion rounds; returns (rounds, probes, winning slots)."""
        backend = self.backend
        pending = backend.arange(key_hashes.size, dtype=backend.int64)
        slot_of = backend.full(key_hashes.size, -1, dtype=backend.int64)
        offset = 0
        rounds = 0
        probes = 0
        while pending.size:
            rounds += 1
            probes += int(pending.size)
            slots = ((key_hashes[pending] + self._hash_scalar(offset)) & self._mask).astype(backend.int64)
            empty = self._keys[slots] == EMPTY_KEY
            candidates = pending[empty]
            candidate_slots = slots[empty]
            if candidates.size:
                # Emulate the CAS race: every candidate writes its key to its
                # slot; with duplicate targets the scatter keeps one write per
                # slot (exactly one CAS wins).  Reading the slot back tells
                # each candidate whether it was the winner.
                backend.scatter(self._keys, candidate_slots, key_hashes[candidates])
                won = self._keys[candidate_slots] == key_hashes[candidates]
                winners = candidates[won]
                winner_slots = candidate_slots[won]
                backend.scatter(self._values, winner_slots, values[winners])
                backend.scatter(self._lengths, winner_slots, lengths[winners])
                backend.scatter(slot_of, winners, winner_slots)
                inserted = backend.zeros(key_hashes.size, dtype=backend.bool_)
                backend.scatter(inserted, winners, True)
                pending = pending[~inserted[pending]]
            offset += 1
            if offset > self.capacity:
                raise RuntimeError("hash table build did not converge; table is over-full")
        return rounds, probes, slot_of

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def insert_batch(
        self,
        key_hashes: Array,
        values: Array,
        run_lengths: Array | None = None,
        *,
        charge: bool = True,
        label: str | None = None,
    ) -> tuple[Array, bool]:
        """Insert previously-absent keys; returns ``(slots, grew)``.

        ``slots[i]`` is the physical slot claimed by ``key_hashes[i]``; the
        slot stays valid until the next growth rehash (signalled by ``grew``).
        Growth is geometric — the capacity at least doubles — so a fixpoint
        inserting many small deltas pays amortised O(1) rehash work per key.
        Only the *new* keys' probe work (plus the occasional rehash) is
        charged, which is the whole point of the incremental merge path.
        """
        backend = self.backend
        key_hashes = backend.asarray(key_hashes, dtype=backend.uint64)
        values = backend.asarray(values, dtype=backend.int64)
        if key_hashes.shape != values.shape:
            raise ValueError("key_hashes and values must have the same length")
        if run_lengths is None:
            run_lengths = backend.ones(values.shape, dtype=backend.int64)
        run_lengths = backend.asarray(run_lengths, dtype=backend.int64)
        m = int(key_hashes.size)

        grew = False
        rebuild_probes = 0
        if self.n_keys + m > self.load_factor * self.capacity:
            # Fixpoint deltas tend to grow geometrically, so a 2x growth
            # stride pays allocation latency on almost every merge; a 4x
            # stride amortizes it to every other merge for at most one
            # doubling of slack.
            target = self.capacity * 4
            while self.n_keys + m > self.load_factor * target:
                target *= 2
            rebuild_probes = self._grow(next_power_of_two(target))
            grew = True

        if m:
            rounds, probes, slots = self._build(key_hashes, values, run_lengths)
        else:
            rounds, probes, slots = 0, 0, backend.empty(0, dtype=backend.int64)
        self.n_keys += m
        self.stats = HashTableStats(
            capacity=self.capacity,
            n_keys=self.n_keys,
            build_rounds=self.stats.build_rounds + rounds,
            total_probes=self.stats.total_probes + probes + rebuild_probes,
        )
        if charge:
            self.device.charge(
                KernelCost(
                    kernel=label or f"{self.label}.insert_batch",
                    random_bytes=float(probes + rebuild_probes) * _SLOT_BYTES,
                    sequential_bytes=float(m) * 24.0,
                    ops=float(probes + rebuild_probes) * 4.0,
                    alloc_bytes=float(self.nbytes) if grew else 0.0,
                    allocations=1 if grew else 0,
                )
            )
        return slots, grew

    def _grow(self, new_capacity: int) -> int:
        """Rehash every live entry into a larger table; returns probe count."""
        backend = self.backend
        live = self._keys != EMPTY_KEY
        old_keys = self._keys[live]
        old_values = self._values[live]
        old_lengths = self._lengths[live]

        self.capacity = int(new_capacity)
        self._mask = self._hash_scalar(self.capacity - 1)
        self._keys = backend.full(self.capacity, EMPTY_KEY, dtype=backend.uint64)
        self._values = backend.full(self.capacity, -1, dtype=backend.int64)
        self._lengths = backend.zeros(self.capacity, dtype=backend.int64)
        _rounds, probes, _slots = self._build(old_keys, old_values, old_lengths)
        return probes

    def find_slots(self, query_hashes: Array, *, charge: bool = False, label: str | None = None) -> Array:
        """Resolve keys to their physical slot index (misses yield ``-1``)."""
        backend = self.backend
        query = backend.asarray(query_hashes, dtype=backend.uint64)
        n = query.size
        slots_out = backend.full(n, -1, dtype=backend.int64)
        if n == 0 or self.n_keys == 0:
            return slots_out
        unresolved = backend.arange(n, dtype=backend.int64)
        offset = 0
        probes = 0
        while unresolved.size:
            probes += int(unresolved.size)
            slots = ((query[unresolved] + self._hash_scalar(offset)) & self._mask).astype(backend.int64)
            slot_keys = self._keys[slots]
            hit = slot_keys == query[unresolved]
            miss = slot_keys == EMPTY_KEY
            backend.scatter(slots_out, unresolved[hit], slots[hit])
            unresolved = unresolved[~(hit | miss)]
            offset += 1
            if offset > self.capacity:
                break
        if charge:
            self.device.charge(
                KernelCost(
                    kernel=label or f"{self.label}.find_slots",
                    random_bytes=float(probes) * _SLOT_BYTES,
                    ops=float(probes) * 2.0,
                )
            )
        return slots_out

    def update_slots(
        self,
        slots: Array,
        values: Array,
        run_lengths: Array,
        *,
        charge: bool = True,
        label: str | None = None,
    ) -> None:
        """Overwrite the payload of existing entries (one streaming pass).

        The keys in the given slots are untouched — this refreshes the run
        start/length of entries whose sorted-index positions shifted during a
        merge.  Charged as a bandwidth-bound scatter, not per-key probing.
        """
        backend = self.backend
        slots = backend.asarray(slots, dtype=backend.int64)
        backend.scatter(self._values, slots, backend.asarray(values, dtype=backend.int64))
        backend.scatter(self._lengths, slots, backend.asarray(run_lengths, dtype=backend.int64))
        if charge and slots.size:
            self.device.charge(
                KernelCost(
                    kernel=label or f"{self.label}.update_slots",
                    sequential_bytes=float(slots.size) * 24.0,
                    ops=float(slots.size),
                )
            )

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self, query_hashes: Array, *, charge: bool = True, label: str | None = None) -> tuple[Array, Array]:
        """Look up a batch of join-key hashes.

        Returns ``(positions, lengths)``: the sorted-index position of the
        first tuple of each matched run and the run length; misses yield
        ``(-1, 0)``.
        """
        backend = self.backend
        query = backend.asarray(query_hashes, dtype=backend.uint64)
        n = query.size
        positions = backend.full(n, -1, dtype=backend.int64)
        lengths = backend.zeros(n, dtype=backend.int64)
        if n == 0 or self.n_keys == 0:
            if charge and n:
                self.device.charge(
                    KernelCost(kernel=label or f"{self.label}.probe", random_bytes=float(n) * _SLOT_BYTES, ops=float(n))
                )
            return positions, lengths

        unresolved = backend.arange(n, dtype=backend.int64)
        offset = 0
        probes = 0
        while unresolved.size:
            probes += int(unresolved.size)
            slots = ((query[unresolved] + self._hash_scalar(offset)) & self._mask).astype(backend.int64)
            slot_keys = self._keys[slots]
            hit = slot_keys == query[unresolved]
            miss = slot_keys == EMPTY_KEY
            if hit.any():
                hit_idx = unresolved[hit]
                hit_slots = slots[hit]
                backend.scatter(positions, hit_idx, self._values[hit_slots])
                backend.scatter(lengths, hit_idx, self._lengths[hit_slots])
            unresolved = unresolved[~(hit | miss)]
            offset += 1
            if offset > self.capacity:
                break
        if charge:
            self.device.charge(
                KernelCost(
                    kernel=label or f"{self.label}.probe",
                    random_bytes=float(probes) * _SLOT_BYTES,
                    ops=float(probes) * 2.0,
                )
            )
        return positions, lengths

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Device bytes occupied by the table (keys, values, run lengths)."""
        return self.capacity * (_SLOT_BYTES + 8)

    def occupancy(self) -> float:
        return self.n_keys / self.capacity if self.capacity else 0.0

    def __len__(self) -> int:
        return self.n_keys
