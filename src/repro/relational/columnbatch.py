"""Columnar (SoA) tuple batches with late materialization.

The seed pipeline moved row-major ``(n, arity)`` tuple arrays between every
operator, so each join / project / dedup step re-materialized full tuples even
when downstream steps only needed a subset of columns.  :class:`ColumnBatch`
is the column-oriented replacement: a set of named per-column ``int64`` arrays
plus an optional *lazy gather* — each column is either

* **materialized** — a 1-D array of length ``num_rows``, or
* **lazy** — a pair ``(base, selection chain)`` where ``base`` is a (usually
  larger) backing column (e.g. a HISA's stored column) and the selection
  chain is a sequence of index vectors shared by every column drawn from the
  same *source*.

All arrays are owned by the device's
:class:`~repro.backend.base.ArrayBackend`; the batch never touches an array
library directly, which is what lets the same datapath run on NumPy, CuPy, or
the contract-enforcing guard.

The late-materialization contract
---------------------------------

1. Operators that only *route* tuples — ``project``, join output wiring,
   comparison filtering, ``take`` — never copy column values.  They append
   index vectors to the per-source selection chains and rewire column
   metadata; nothing is charged to the device.
2. Column values are gathered exactly once, at first access
   (:meth:`column` / :meth:`as_rows`).  Resolving a source's selection chain
   composes its index vectors right-to-left, so every composition runs at
   the *final* (smallest, post-filter) batch length, and the simulated
   device is charged per column and per composition actually performed.
   Columns no downstream operator reads — join attributes dropped by a later
   projection, variables absent from a rule head — are **never** gathered,
   and sources no live column references are never composed.
3. Base arrays are append-only: producers (HISA merges) may grow their
   storage or swap in larger buffers, but never mutate the prefix a live
   selection can reference, so a lazy batch stays valid across fixpoint
   bookkeeping until it is materialized.

Row arrays remain the interop format at the edges (:meth:`from_rows` /
:meth:`as_rows`), which is what keeps the legacy row pipeline available as an
ablation baseline behind ``columnar=False``.  Note :meth:`as_rows` stays
device-resident — crossing to host NumPy goes through the charged
``Device.kernels.to_host`` transfer edge.
"""

from __future__ import annotations

from typing import Sequence

from ..backend import INDEX_DTYPE, TUPLE_DTYPE, TUPLE_ITEMSIZE, Array
from ..device.device import Device
from ..errors import SchemaError

__all__ = ["ColumnBatch"]


class ColumnBatch:
    """A batch of tuples stored column-wise, with optional lazy gathers."""

    __slots__ = ("device", "_length", "_selections", "_sources", "_bases", "_cache", "_monotone", "names")

    def __init__(
        self,
        device: Device,
        *,
        length: int,
        bases: list[Array],
        sources: list[int],
        selections: list["list[Array] | None"],
        names: tuple[str, ...] | None = None,
    ) -> None:
        self.device = device
        self._length = int(length)
        self._bases = bases
        self._sources = sources
        self._selections = selections
        self._cache: dict[int, Array] = {}
        #: per-source coalescing flag of the resolved selection, computed once
        #: and shared by every column gathered from that source
        self._monotone: dict[int, bool] = {}
        if names is not None and len(names) != len(bases):
            raise SchemaError(f"{len(names)} column names for {len(bases)} columns")
        self.names = names

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        device: Device,
        columns: Sequence[Array],
        *,
        length: int | None = None,
        names: tuple[str, ...] | None = None,
    ) -> "ColumnBatch":
        """Wrap already-materialized per-column arrays (no copy)."""
        backend = device.backend
        cols = [backend.asarray(column, dtype=TUPLE_DTYPE).reshape(-1) for column in columns]
        if length is None:
            length = int(cols[0].shape[0]) if cols else 0
        for column in cols:
            if column.shape[0] != length:
                raise SchemaError("all columns of a batch must have the same length")
        return cls(
            device,
            length=int(length),
            bases=cols,
            sources=[0] * len(cols),
            selections=[None],
            names=names,
        )

    @classmethod
    def from_rows(
        cls, device: Device, rows: Array, *, names: tuple[str, ...] | None = None
    ) -> "ColumnBatch":
        """Wrap a row-major tuple array as column views (no copy)."""
        rows = device.backend.as_rows(rows)
        return cls.from_columns(
            device,
            [rows[:, position] for position in range(rows.shape[1])],
            length=int(rows.shape[0]),
            names=names,
        )

    @classmethod
    def empty(cls, device: Device, arity: int, *, names: tuple[str, ...] | None = None) -> "ColumnBatch":
        backend = device.backend
        return cls.from_columns(
            device, [backend.empty(0, dtype=TUPLE_DTYPE) for _ in range(arity)], length=0, names=names
        )

    @classmethod
    def wrap(cls, device: Device, data: "ColumnBatch | Array") -> "ColumnBatch":
        """Coerce rows-or-batch input to a batch (rows are wrapped, not copied)."""
        if isinstance(data, ColumnBatch):
            return data
        return cls.from_rows(device, data)

    @classmethod
    def from_shipped(
        cls,
        device: Device,
        rows: Array,
        live_positions: Sequence[int],
        arity: int,
        *,
        names: tuple[str, ...] | None = None,
    ) -> "ColumnBatch":
        """Rebuild a full-arity batch from a cross-shard shipment.

        The exchange path ships only *live* columns (positions a downstream
        plan step reads, per the planner's liveness analysis) packed as a
        ``(n, len(live_positions))`` row block.  This wraps that block back
        into the receiving shard's full flowing schema: live positions become
        zero-copy column views of the block, and every dead position shares
        one zero-filled placeholder column that, by construction, no
        downstream operator will ever gather.
        """
        backend = device.backend
        rows = backend.as_rows(rows)
        if rows.shape[0] and rows.shape[1] != len(live_positions):
            raise SchemaError(
                f"shipped block has {rows.shape[1]} columns, expected {len(live_positions)}"
            )
        length = int(rows.shape[0])
        live = {int(position): index for index, position in enumerate(live_positions)}
        placeholder: Array | None = None
        columns: list[Array] = []
        for position in range(arity):
            index = live.get(position)
            if index is not None:
                columns.append(rows[:, index])
            else:
                if placeholder is None:
                    placeholder = backend.zeros(length, dtype=TUPLE_DTYPE)
                columns.append(placeholder)
        return cls.from_columns(device, columns, length=length, names=names)

    def ship_columns(
        self, positions: Sequence[int], *, label: str = "ship"
    ) -> "list[Array]":
        """Materialise exactly the columns a shipment carries (sender-side).

        Resolving the selection chains here — before the bytes cross the
        interconnect — is what makes cross-shard laziness pay: a filtered or
        projected batch ships its post-selection values, never the backing
        stores the lazy metadata points into.
        """
        return [self.column(int(position), label=f"{label}.resolve") for position in positions]

    @classmethod
    def concatenate(
        cls,
        device: Device,
        parts: Sequence["ColumnBatch"],
        *,
        arity: int,
        label: str = "concatenate_columns",
        charge: bool = True,
    ) -> "ColumnBatch":
        """Concatenate batches column-wise; empty input keeps ``arity``."""
        parts = [part for part in parts if part is not None and len(part)]
        if not parts:
            return cls.empty(device, arity)
        for part in parts:
            if part.arity != arity:
                raise SchemaError(f"cannot concatenate batches of arity {part.arity} into arity {arity}")
        materialized = [
            [part.column(position, charge=charge, label=label) for position in range(arity)]
            for part in parts
        ]
        if charge:
            columns = device.kernels.concatenate_columns(materialized, label=label)
        else:
            columns = [
                device.backend.concatenate([cols[position] for cols in materialized])
                for position in range(arity)
            ]
        # Pass the row count explicitly so zero-arity batches keep their length.
        total = sum(len(part) for part in parts)
        return cls.from_columns(device, columns, length=total, names=parts[0].names)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._length

    @property
    def arity(self) -> int:
        return len(self._bases)

    @property
    def nbytes(self) -> int:
        """Logical payload size: the bytes a full materialization would occupy."""
        return self._length * self.arity * TUPLE_ITEMSIZE

    def is_materialized(self, position: int) -> bool:
        return position in self._cache or self._selections[self._sources[position]] is None

    @property
    def materialized_column_count(self) -> int:
        return sum(1 for position in range(self.arity) if self.is_materialized(position))

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def _resolve_selection(
        self, source: int, *, charge: bool, label: str
    ) -> Array | None:
        """Collapse a source's selection chain to one index vector.

        Compositions run right-to-left, so each one is sized by the *last*
        (post-filter, smallest) index vector of the chain; the resolved
        vector replaces the chain so later columns of the same source reuse
        it for free.
        """
        chain = self._selections[source]
        if chain is None:
            return None
        while len(chain) > 1:
            tail = chain.pop()
            head = chain.pop()
            if charge:
                composed = self.device.kernels.compose_selection(head, tail, label=f"{label}.compose")
            else:
                composed = head[tail]
            chain.append(composed)
        return chain[0]

    def column(self, position: int, *, charge: bool = True, label: str = "gather_column") -> Array:
        """Materialise (and cache) one column as a 1-D int64 array."""
        if position < 0 or position >= self.arity:
            raise SchemaError(f"column {position} out of range for arity {self.arity}")
        cached = self._cache.get(position)
        if cached is not None:
            return cached
        base = self._bases[position]
        source = self._sources[position]
        selection = self._resolve_selection(source, charge=charge, label=label)
        if selection is None:
            out = base
        elif charge:
            coalesced = self._monotone.get(source)
            if coalesced is None:
                coalesced = self.device.backend.is_monotone(selection)
                self._monotone[source] = coalesced
            out = self.device.kernels.gather_column(base, selection, label=label, coalesced=coalesced)
        else:
            out = base[selection]
        self._cache[position] = out
        return out

    def columns(self, *, charge: bool = True, label: str = "gather_column") -> list[Array]:
        return [self.column(position, charge=charge, label=label) for position in range(self.arity)]

    def as_rows(self, *, charge: bool = True, label: str = "materialize_rows") -> Array:
        """Materialise the batch as a ``(n, arity)`` row array (interop edge)."""
        backend = self.device.backend
        out = backend.empty((self._length, self.arity), dtype=TUPLE_DTYPE)
        for position in range(self.arity):
            out[:, position] = self.column(position, charge=charge, label=label)
        if charge and self.arity:
            self.device.kernels.transform(
                self._length,
                bytes_per_item=float(self.arity) * TUPLE_ITEMSIZE,
                ops_per_item=float(self.arity),
                label=label,
            )
        return out

    # ------------------------------------------------------------------
    # Lazy routing operators (metadata only — nothing is copied or charged)
    # ------------------------------------------------------------------
    def project(self, positions: Sequence[int], *, names: tuple[str, ...] | None = None) -> "ColumnBatch":
        """Reorder / repeat / drop columns — pure metadata, no copies."""
        positions = [int(position) for position in positions]
        for position in positions:
            if position < 0 or position >= self.arity:
                raise SchemaError(f"projection column {position} out of range for arity {self.arity}")
        batch = ColumnBatch(
            self.device,
            length=self._length,
            bases=[self._bases[position] for position in positions],
            sources=[self._sources[position] for position in positions],
            selections=self._selections,
            names=names,
        )
        for new_position, position in enumerate(positions):
            if position in self._cache:
                batch._cache[new_position] = self._cache[position]
        return batch

    def assemble(
        self,
        entries: Sequence[tuple[str, int]],
        *,
        label: str = "assemble",
        charge: bool = True,
        names: tuple[str, ...] | None = None,
    ) -> "ColumnBatch":
        """Build a new batch from ``("column", position)`` / ``("constant", value)``
        entries — the head-projection primitive.  Routed columns stay lazy;
        only constant columns are written (and charged) here.
        """
        backend = self.device.backend
        bases: list[Array] = []
        sources: list[int] = []
        selections = list(self._selections)
        identity_slot: int | None = None
        cache_entries: dict[int, Array] = {}
        constant_columns = 0
        for new_position, (kind, value) in enumerate(entries):
            if kind == "column":
                position = int(value)
                if position < 0 or position >= self.arity:
                    raise SchemaError(f"assemble column {position} out of range for arity {self.arity}")
                bases.append(self._bases[position])
                sources.append(self._sources[position])
                if position in self._cache:
                    cache_entries[new_position] = self._cache[position]
            else:
                if identity_slot is None:
                    identity_slot = len(selections)
                    selections.append(None)
                bases.append(backend.full(self._length, int(value), dtype=TUPLE_DTYPE))
                sources.append(identity_slot)
                constant_columns += 1
        if charge and constant_columns and self._length:
            self.device.kernels.transform(
                self._length,
                bytes_per_item=float(constant_columns) * TUPLE_ITEMSIZE,
                ops_per_item=float(constant_columns),
                label=label,
            )
        batch = ColumnBatch(
            self.device, length=self._length, bases=bases, sources=sources, selections=selections, names=names
        )
        batch._cache.update(cache_entries)
        return batch

    def append_lazy(self, specs: Sequence[tuple[Array, Array]]) -> "ColumnBatch":
        """Append lazy ``(base, selection)`` columns — the join-output wiring.

        Specs sharing the *same* selection array object share one source, so
        later routing composes that selection only once.  Pure metadata: no
        values move until the columns are read.
        """
        backend = self.device.backend
        bases = list(self._bases)
        sources = list(self._sources)
        selections = list(self._selections)
        slot_of: dict[int, int] = {}
        for base, selection in specs:
            selection = backend.asarray(selection, dtype=INDEX_DTYPE)
            if selection.shape[0] != self._length:
                raise SchemaError("appended selection length must equal the batch length")
            slot = slot_of.get(id(selection))
            if slot is None:
                slot = len(selections)
                selections.append([selection])
                slot_of[id(selection)] = slot
            bases.append(backend.asarray(base, dtype=TUPLE_DTYPE).reshape(-1))
            sources.append(slot)
        batch = ColumnBatch(
            self.device, length=self._length, bases=bases, sources=sources, selections=selections
        )
        batch._cache.update(self._cache)
        return batch

    def take(self, indices: Array, *, label: str = "take") -> "ColumnBatch":
        """Select rows by index — appends to each source's selection chain.

        No composition happens here; chains resolve lazily at first column
        access, so sources whose columns are never read are never composed.
        Columns already materialized are re-based onto their cached values,
        reusing the earlier gather instead of repeating it.
        """
        indices = self.device.backend.asarray(indices, dtype=INDEX_DTYPE).reshape(-1)
        bases = list(self._bases)
        sources = list(self._sources)
        IDENTITY = -1
        for position, cached in self._cache.items():
            bases[position] = cached
            sources[position] = IDENTITY
        selections: list[list[Array] | None] = []
        slot_of: dict[int, int] = {}
        for position in range(len(bases)):
            source = sources[position]
            if source == IDENTITY:
                continue
            slot = slot_of.get(source)
            if slot is None:
                chain = self._selections[source]
                slot = len(selections)
                selections.append([indices] if chain is None else list(chain) + [indices])
                slot_of[source] = slot
            sources[position] = slot
        if IDENTITY in sources or not selections:
            identity_slot = len(selections)
            selections.append([indices])
            sources = [identity_slot if source == IDENTITY else source for source in sources]
        return ColumnBatch(
            self.device,
            length=int(indices.shape[0]),
            bases=bases,
            sources=sources,
            selections=selections,
            names=self.names,
        )

    def filter(self, mask: Array, *, charge: bool = True, label: str = "filter") -> "ColumnBatch":
        """Keep rows where ``mask`` is true (scan + lazy selection append)."""
        backend = self.device.backend
        mask = backend.asarray(mask, dtype=backend.bool_)
        if mask.shape[0] != self._length:
            raise SchemaError("mask length must equal the batch length")
        indices = backend.nonzero_indices(mask)
        if charge:
            self.device.kernels.transform(
                self._length, bytes_per_item=1.0, ops_per_item=1.0, label=f"{label}.scan"
            )
        return self.take(indices, label=label)
