"""Relational substrate: HISA, hash tables, relational-algebra kernels, buffers."""

from .buffers import (
    BufferManagerStats,
    EagerBufferManager,
    MergeBufferManager,
    SimpleBufferManager,
    make_buffer_manager,
)
from .checkpoint import (
    CheckpointStore,
    DiskCheckpointStore,
    EvaluationCheckpoint,
    InMemoryCheckpointStore,
    PartitionState,
    RelationState,
)
from .columnbatch import ColumnBatch
from .hashing import EMPTY_KEY, hash_columns, hash_rows, hash_single, next_power_of_two
from .hashtable import DEFAULT_LOAD_FACTOR, HashTableStats, OpenAddressingHashTable
from .hisa import HISA, HisaMemoryBreakdown
from .operators import (
    ColumnComparison,
    JoinOutput,
    deduplicate,
    difference,
    fused_nway_join,
    hash_join,
    project,
    select,
    union,
)
from .relation import IterationStats, Relation
from .sharded import ShardedRelation, partition_rows, partition_rows_host, shard_assignments

__all__ = [
    "BufferManagerStats",
    "CheckpointStore",
    "ColumnBatch",
    "ColumnComparison",
    "DEFAULT_LOAD_FACTOR",
    "DiskCheckpointStore",
    "EMPTY_KEY",
    "EagerBufferManager",
    "EvaluationCheckpoint",
    "HISA",
    "InMemoryCheckpointStore",
    "PartitionState",
    "RelationState",
    "HashTableStats",
    "HisaMemoryBreakdown",
    "IterationStats",
    "JoinOutput",
    "MergeBufferManager",
    "OpenAddressingHashTable",
    "Relation",
    "ShardedRelation",
    "SimpleBufferManager",
    "deduplicate",
    "difference",
    "fused_nway_join",
    "hash_columns",
    "hash_join",
    "hash_rows",
    "hash_single",
    "make_buffer_manager",
    "next_power_of_two",
    "partition_rows",
    "partition_rows_host",
    "project",
    "select",
    "shard_assignments",
    "union",
]
