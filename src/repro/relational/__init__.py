"""Relational substrate: HISA, hash tables, relational-algebra kernels, buffers.

Everything here is device-resident state and device-kernel computation:
:class:`~repro.relational.hisa.HISA` indexes (sorted capacity-backed column
buffers + run-structured index + open-addressing hash table, with an O(Δ)
incremental ``merge``), lazy :class:`~repro.relational.columnbatch.ColumnBatch`
operands, the join/dedup/difference operators, semi-naïve
:class:`~repro.relational.relation.Relation` version triples and their
sharded router, planner statistics, semi-join exchange filters, and
iteration-boundary checkpoints.  No module in this package imports an array
library — every primitive goes through the owning device's
:class:`~repro.backend.base.ArrayBackend`, and host arrays cross only at
the charged transfer edges.  See ``docs/architecture.md``.
"""

from .buffers import (
    BufferManagerStats,
    EagerBufferManager,
    MergeBufferManager,
    SimpleBufferManager,
    make_buffer_manager,
)
from .checkpoint import (
    CheckpointStore,
    DiskCheckpointStore,
    EvaluationCheckpoint,
    InMemoryCheckpointStore,
    PartitionState,
    RelationState,
)
from .columnbatch import ColumnBatch
from .hashing import EMPTY_KEY, hash_columns, hash_rows, hash_single, next_power_of_two
from .hashtable import DEFAULT_LOAD_FACTOR, HashTableStats, OpenAddressingHashTable
from .hisa import HISA, HisaMemoryBreakdown
from .operators import (
    ColumnComparison,
    JoinOutput,
    deduplicate,
    difference,
    fused_nway_join,
    hash_join,
    project,
    select,
    union,
)
from .relation import IterationStats, Relation
from .sharded import ShardedRelation, partition_rows, partition_rows_host, shard_assignments

__all__ = [
    "BufferManagerStats",
    "CheckpointStore",
    "ColumnBatch",
    "ColumnComparison",
    "DEFAULT_LOAD_FACTOR",
    "DiskCheckpointStore",
    "EMPTY_KEY",
    "EagerBufferManager",
    "EvaluationCheckpoint",
    "HISA",
    "InMemoryCheckpointStore",
    "PartitionState",
    "RelationState",
    "HashTableStats",
    "HisaMemoryBreakdown",
    "IterationStats",
    "JoinOutput",
    "MergeBufferManager",
    "OpenAddressingHashTable",
    "Relation",
    "ShardedRelation",
    "SimpleBufferManager",
    "deduplicate",
    "difference",
    "fused_nway_join",
    "hash_columns",
    "hash_join",
    "hash_rows",
    "hash_single",
    "make_buffer_manager",
    "next_power_of_two",
    "partition_rows",
    "partition_rows_host",
    "project",
    "select",
    "shard_assignments",
    "union",
]
