"""Worst-case-optimal generic join over HISA indexes (columnar pipeline).

The planner's ``cost+wcoj`` mode compiles a cyclic rule version into a
sequence of :class:`~repro.datalog.planner.WCOJLevel`\\ s — one per variable
beyond the outer atom's — and every level lists the body atoms (candidates)
that constrain its variable.  :func:`generic_join` executes those levels with
the classic generic-join recipe, vectorised over the whole frontier batch:

1. **Probe** every candidate's bound-column HISA index with the frontier's
   already-bound columns, yielding per-row match counts (``lookup_columns``
   returns run lengths; a miss is 0).
2. **Pick the minimum side per row** — the worst-case-optimality argument:
   each frontier row expands only its *smallest* candidate run, never a
   larger one, so the per-level work is bounded by the intersection size
   times the number of candidates (up to the membership probes).  The
   argmin is deterministic: ties keep the lowest candidate position.
3. **Expand** each candidate's chosen rows through its sorted-run index
   (``expand_matches``) and append the level variable's values as a lazy
   column — same late-materialization wiring as the binary columnar join.
4. **Membership-check** the expanded rows against every *other* candidate's
   full-arity (deduplicated) index and compact the survivors.
5. **Concatenate** the per-candidate parts in candidate order.

Everything is charged to the simulated device with deterministic kernel
names (level index + candidate atom index), so fault plans targeting WCOJ
kernels replay exactly like binary-join plans.  The sharded evaluator never
calls this operator — a WCOJ version's decomposed expand/check
:class:`~repro.datalog.planner.JoinStep`\\ s run through the ordinary
exchange machinery instead — so this file is the single-device columnar
fast path.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..backend import INDEX_ITEMSIZE
from ..device.cost import KernelCost
from ..device.device import Device
from .columnbatch import ColumnBatch
from .hisa import HISA
from .operators import _divergence

__all__ = ["generic_join"]

#: Resolves (relation name, join columns) to the relation's full-version HISA.
IndexResolver = Callable[[str, tuple[int, ...]], HISA]


def generic_join(
    device: Device,
    outer: ColumnBatch,
    levels: Sequence,
    index_for: IndexResolver,
    *,
    label: str = "wcoj",
    charge: bool = True,
) -> ColumnBatch:
    """Extend ``outer`` by one variable per level via multi-way intersection.

    ``outer`` flows in the version's initial schema; the result batch appends
    one column per level, matching the decomposed plan's final schema.
    """
    batch = ColumnBatch.wrap(device, outer)
    total_levels = len(levels)
    for depth, level in enumerate(levels):
        if len(batch) == 0:
            return ColumnBatch.empty(device, batch.arity + total_levels - depth)
        batch = _extend_level(
            device, batch, level, index_for, label=f"{label}.l{depth}", charge=charge
        )
    return batch


def _extend_level(
    device: Device,
    batch: ColumnBatch,
    level,
    index_for: IndexResolver,
    *,
    label: str,
    charge: bool,
) -> ColumnBatch:
    """One generic-join level: per-row min-side expansion + membership checks."""
    backend = device.backend
    n = len(batch)
    out_arity = batch.arity + 1

    # The probe / argmin / expand / check chain is one fused launch per
    # level, like the binary join's probe pipeline; stages keep charging
    # their own bytes/ops so the accounting stays per-stage exact.
    with device.fused(f"{label}.intersect_fused"):
        # 1. Probe every candidate's bound-column index for match counts.
        probes: list[tuple[object, HISA, object, object]] = []
        for candidate in level.candidates:
            index = index_for(candidate.relation, candidate.join_columns)
            keys = [
                batch.column(position, charge=charge, label=f"{label}.gather_keys")
                for position in candidate.outer_key_positions
            ]
            starts, lengths = index.lookup_columns(keys, charge=charge)
            probes.append((candidate, index, starts, lengths))

        # 2. Deterministic per-row argmin of the match counts: strict `<`
        #    keeps the earlier (lowest candidate position) side on ties.
        #    Complements come from a second compare so the whole selection
        #    stays inside the backend contract (compare + arithmetic).
        choice = backend.zeros(n, dtype=backend.int64)
        best = probes[0][3]
        for position in range(1, len(probes)):
            lengths_here = probes[position][3]
            smaller = backend.compare("<", lengths_here, best).astype(backend.int64)
            keep = backend.compare(">=", lengths_here, best).astype(backend.int64)
            choice = choice * keep + smaller * position
            best = best * keep + lengths_here * smaller
        if charge and len(probes) > 1:
            device.charge(
                KernelCost(
                    kernel=f"{label}.min_select",
                    sequential_bytes=float(n) * len(probes) * INDEX_ITEMSIZE,
                    ops=float(n) * len(probes),
                )
            )

        # 3-4. Expand each candidate's chosen rows, then semi-join the
        #      expansion against every other candidate's full-arity index.
        parts: list[ColumnBatch] = []
        for position, (candidate, index, starts, lengths) in enumerate(probes):
            if len(probes) == 1:
                part, starts_sel, lengths_sel = batch, starts, lengths
            else:
                mask = backend.compare("==", choice, position)
                row_indices = backend.nonzero_indices(mask)
                if charge:
                    device.kernels.transform(
                        n, bytes_per_item=float(INDEX_ITEMSIZE), ops_per_item=1.0,
                        label=f"{label}.route_min",
                    )
                if int(row_indices.shape[0]) == 0:
                    continue
                part = batch.take(row_indices, label=f"{label}.route_min")
                starts_sel = starts[row_indices]
                lengths_sel = lengths[row_indices]

            total = int(lengths_sel.sum())
            divergence = _divergence(device, lengths_sel)
            if charge:
                device.charge(
                    KernelCost(
                        kernel=f"{label}.expand[{candidate.atom_index}]",
                        random_bytes=float(total) * INDEX_ITEMSIZE,
                        sequential_bytes=2.0 * float(total) * INDEX_ITEMSIZE,
                        ops=float(total),
                        divergence=divergence,
                    )
                )
            if total == 0:
                continue
            probe_idx, data_positions = index.expand_matches(starts_sel, lengths_sel)
            expanded = part.take(probe_idx, label=f"{label}.route_expand")
            value_base = index.stored_column(index.column_order.index(candidate.value_column))
            expanded = expanded.append_lazy([(value_base, data_positions)])

            for other_position, (other, _other_index, _s, _l) in enumerate(probes):
                if other_position == position or len(expanded) == 0:
                    continue
                member = index_for(other.relation, tuple(range(other.arity)))
                columns = [
                    expanded.column(p, charge=charge, label=f"{label}.gather_member")
                    for p in other.member_positions
                ]
                keep = member.contains_columns(columns, charge=charge)
                expanded = expanded.filter(
                    keep, charge=charge, label=f"{label}.member[{other.atom_index}]"
                )
            if len(expanded):
                parts.append(expanded)

        # 5. Stitch the per-candidate parts back together in candidate order.
        return ColumnBatch.concatenate(
            device, parts, arity=out_arity, label=f"{label}.gather_parts", charge=charge
        )
