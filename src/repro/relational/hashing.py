"""Vectorised 64-bit hashing of join-column tuples.

Section 4.3: HISA's open-addressing hash table stores the *hash* of the join
columns as its key rather than the column values themselves, which is how the
structure supports join keys wider than the 64/128-bit atomic-CAS limit
([R3]).  We reproduce that decision: keys of any arity are folded into one
64-bit value with a splitmix64-style mixer.

A 64-bit hash can collide for distinct join keys; the probability for the
relation sizes in this reproduction is ~n^2 / 2^64 and the join kernel always
verifies the actual column values while scanning the sorted index array, so a
collision can cost a wasted scan but never an incorrect result.
"""

from __future__ import annotations

import numpy as np

# splitmix64 constants
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

EMPTY_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)
"""Sentinel stored in unoccupied hash-table slots."""


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Finalising mixer from splitmix64, vectorised over uint64 values."""
    z = values + _GAMMA
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def hash_rows(rows: np.ndarray) -> np.ndarray:
    """Hash each row of an ``(n, k)`` int64 array into a uint64 value.

    Columns are folded left-to-right so that every column influences the
    result; the folding is order sensitive, matching a hash of the
    concatenated join-column bytes.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim == 1:
        rows = rows.reshape(-1, 1)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-D array of join keys, got shape {rows.shape}")
    n, arity = rows.shape
    if arity == 0:
        acc = np.full(n, np.uint64(1), dtype=np.uint64)
        acc[acc == EMPTY_KEY] = np.uint64(0x123456789ABCDEF)
        return acc
    # One fold implementation: delegate to the columnar variant so the hash
    # of a key is identical however the key is laid out (the table is built
    # from rows and probed from columns).
    return hash_columns([rows[:, column] for column in range(arity)])


def hash_columns(columns) -> np.ndarray:
    """Hash join keys given as per-column arrays (SoA layout).

    This is *the* key-hash fold; :func:`hash_rows` delegates here, so row
    and columnar pipelines always produce byte-identical hashes.
    """
    if not len(columns):
        raise ValueError("hash_columns requires at least one key column")
    first = np.asarray(columns[0], dtype=np.int64)
    n = first.shape[0]
    acc = np.full(n, np.uint64(len(columns) + 1), dtype=np.uint64)
    for column in columns:
        column = np.asarray(column, dtype=np.int64)
        acc = _splitmix64(acc ^ column.view(np.uint64))
    # Reserve the EMPTY_KEY sentinel; remap the (vanishingly rare) clash.
    acc[acc == EMPTY_KEY] = np.uint64(0x123456789ABCDEF)
    return acc


def hash_single(values: tuple[int, ...] | list[int]) -> int:
    """Hash one join key given as a Python tuple (convenience for tests)."""
    row = np.asarray([list(values)], dtype=np.int64)
    return int(hash_rows(row)[0])


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (minimum 2)."""
    value = max(2, int(value))
    return 1 << (value - 1).bit_length()
