"""Vectorised 64-bit hashing of join-column tuples.

Section 4.3: HISA's open-addressing hash table stores the *hash* of the join
columns as its key rather than the column values themselves, which is how the
structure supports join keys wider than the 64/128-bit atomic-CAS limit
([R3]).  We reproduce that decision: keys of any arity are folded into one
64-bit value with a splitmix64-style mixer.

A 64-bit hash can collide for distinct join keys; the probability for the
relation sizes in this reproduction is ~n^2 / 2^64 and the join kernel always
verifies the actual column values while scanning the sorted index array, so a
collision can cost a wasted scan but never an incorrect result.

The fold itself lives on the :class:`~repro.backend.base.ArrayBackend`
contract (:meth:`~repro.backend.base.ArrayBackend.hash_columns`), so every
backend — and every layout, row or columnar — produces byte-identical hashes.
The module-level functions here are the host-side conveniences bound to the
reference backend; datapath code hashes through ``device.backend`` instead.
"""

from __future__ import annotations

from ..backend import EMPTY_KEY, HOST_BACKEND, Array

__all__ = ["EMPTY_KEY", "hash_columns", "hash_rows", "hash_single", "next_power_of_two"]


def hash_rows(rows: Array) -> Array:
    """Hash each row of an ``(n, k)`` int64 array into a uint64 value.

    Columns are folded left-to-right so that every column influences the
    result; the folding is order sensitive, matching a hash of the
    concatenated join-column bytes.
    """
    return HOST_BACKEND.hash_rows(rows)


def hash_columns(columns) -> Array:
    """Hash join keys given as per-column arrays (SoA layout)."""
    return HOST_BACKEND.hash_columns(columns)


def hash_single(values: tuple[int, ...] | list[int]) -> int:
    """Hash one join key given as a Python tuple (convenience for tests)."""
    row = HOST_BACKEND.as_rows([list(values)])
    return int(HOST_BACKEND.hash_rows(row)[0])


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (minimum 2)."""
    value = max(2, int(value))
    return 1 << (value - 1).bit_length()
