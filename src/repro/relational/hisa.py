"""The Hash-Indexed Sorted Array (HISA) — Section 4 of the paper.

A HISA stores one relation (or one index of a relation) in three tiers:

1. **data array** — the dense ``n x k`` tuple buffer, stored with the join
   columns permuted to the front (Algorithm 1 lines 1-5).  Dense storage is
   what gives parallel iteration [R2] and coalesced access.  The buffer is
   *capacity-backed*: it can carry reserved headroom (Eager Buffer
   Management, Section 5.3) so that a fixpoint iteration appends its delta
   in place instead of copying the whole relation.
2. **sorted index array** — the positions of the tuples, ordered
   lexicographically (join columns first).  Sorting groups equal join keys
   into contiguous runs, enabling range queries [R1] and adjacent-compare
   deduplication [R4].
3. **open-addressing hash table** — maps the 64-bit hash of a join key to the
   first sorted-index position of that key's run [R1, R3]
   (:class:`~repro.relational.hashtable.OpenAddressingHashTable`).

Incremental maintenance across fixpoint iterations
--------------------------------------------------

The semi-naïve loop merges a (small) ``delta`` into the persistent ``full``
index every iteration.  A scratch rebuild — re-sorting, re-packing sort keys,
re-hashing and re-inserting every key — costs O(|full|) per iteration and
O(n²) over a long fixpoint.  :meth:`HISA.merge` is therefore *incremental*:

* the packed lexicographic sort keys of the sorted tuples are **cached** on
  the HISA (``_sorted_keys`` for all columns, ``_sorted_join_keys`` for the
  join-column prefix) and path-merged with the delta's cached keys via one
  O(|Δ| log |full|) binary-search batch plus streaming scatter passes —
  nothing is re-derived from the data array;
* the data array grows by an **in-place append** of the delta whenever the
  backing device buffer has headroom (the eager buffer manager's
  over-allocation), falling back to an amortised copy into a larger buffer
  otherwise;
* the hash table is maintained **persistently**: each distinct join key owns
  a stable *ordinal*; the table entry of an existing key stays in its slot
  and only its (run start, run length) payload is refreshed with a streaming
  scatter, while the delta's genuinely new keys are inserted via
  :meth:`~repro.relational.hashtable.OpenAddressingHashTable.insert_batch`
  with geometric growth.

``merge(delta)`` mutates ``self`` (the full index) and returns it; ``delta``
is consumed.  Passing ``incremental=False`` forces the legacy scratch
rebuild, which exists as the cost baseline for the merge ablation and the
equivalence tests (the incremental result is tuple-identical to it).

All algorithms run for real on the device's
:class:`~repro.backend.base.ArrayBackend` arrays (host NumPy by default, CuPy
when selected); every step charges the owning simulated device so the
profiler sees the same phases the paper measures.  The packed sort keys are
backend-opaque (:meth:`~repro.backend.base.ArrayBackend.pack_lex_keys`); this
module only compares, merge-scatters and binary-searches them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..backend import INDEX_ITEMSIZE, TUPLE_DTYPE, TUPLE_ITEMSIZE, Array, ArrayBackend
from ..device.cost import KernelCost
from ..device.device import Device
from ..device.memory import Buffer
from ..errors import HisaStateError, SchemaError
from .buffers import MergeBufferManager, SimpleBufferManager
from .columnbatch import ColumnBatch
from .hashtable import DEFAULT_LOAD_FACTOR, OpenAddressingHashTable


@dataclass(frozen=True)
class HisaMemoryBreakdown:
    """Bytes used by each HISA tier (for the memory columns of Tables 1-3)."""

    data_bytes: int
    index_bytes: int
    table_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.index_bytes + self.table_bytes


class HISA:
    """Hash-indexed sorted array over a single relation's tuples."""

    def __init__(
        self,
        device: Device,
        rows: "Array | ColumnBatch",
        join_columns: Sequence[int],
        *,
        load_factor: float = DEFAULT_LOAD_FACTOR,
        label: str = "relation",
        charge_build: bool = True,
        build_hash_index: bool = True,
        assume_sorted: bool = False,
    ) -> None:
        backend = device.backend
        # Columnar ingestion: a ColumnBatch hands over its (possibly lazy)
        # columns directly — values are gathered per column, never packed
        # into row tuples.  A row array is split into column views.
        if isinstance(rows, ColumnBatch):
            n = len(rows)
            arity = rows.arity
            natural_columns = rows.columns(charge=charge_build, label=f"{label}.ingest")
        else:
            rows = backend.as_rows(rows)
            n = int(rows.shape[0])
            arity = int(rows.shape[1])
            natural_columns = [rows[:, column] for column in range(arity)]
        self.device = device
        self.backend: ArrayBackend = backend
        self.label = label
        self.load_factor = float(load_factor)
        self.natural_arity = arity
        self._freed = False
        self.last_merge_in_place = False
        self.last_merge_incremental = False
        # Optional statistics hook: called after every merge with the delta
        # and post-merge tuple/distinct-key counts (already maintained by the
        # run structure, so observation is free).  Wired by Relation when the
        # engine runs with a StatsCatalog; see relational/stats.py.
        self.stats_observer = None

        join_columns = tuple(int(c) for c in join_columns)
        if arity and any(c < 0 or c >= arity for c in join_columns):
            raise SchemaError(
                f"join columns {join_columns} out of range for arity {arity}"
            )
        if len(set(join_columns)) != len(join_columns):
            raise SchemaError(f"join columns must be distinct, got {join_columns}")
        if not join_columns and arity:
            raise SchemaError("at least one join column is required")
        self.join_columns = join_columns
        self.n_join = len(join_columns)

        rest = tuple(c for c in range(arity) if c not in join_columns)
        self.column_order = join_columns + rest
        self._inverse_order = _invert_permutation(self.column_order)

        # --- Tier 1: SoA data columns (join columns permuted to the front) ---
        # Each stored column is its own dense, capacity-backed 1-D buffer, so
        # joins and merges gather single columns instead of whole tuples.
        self._column_storage: list[Array] = [
            backend.ascontiguousarray(natural_columns[column]) for column in self.column_order
        ]
        self._live = n
        self._rows_cache: Array | None = None
        if charge_build and n:
            self.device.kernels.transform(
                n,
                bytes_per_item=2.0 * arity * TUPLE_ITEMSIZE,
                ops_per_item=arity,
                label=f"{label}.reorder_columns",
            )

        # --- Tier 2: sorted index array --------------------------------------
        # ``assume_sorted`` signals that ``rows`` are already in natural
        # lexicographic order (the deduplication kernel sorts them).  When the
        # index column order is the identity permutation — the canonical
        # all-column index and every prefix index — the producer's sort *is*
        # this index's sort, so the per-iteration delta is sorted once and
        # shared instead of re-sorted per index (callers guarantee the
        # precondition; it is not re-checked tuple by tuple).
        if assume_sorted and self.column_order == tuple(range(self.natural_arity)):
            self.sorted_index = backend.arange(n, dtype=backend.int64)
            if charge_build and n:
                self.device.kernels.transform(
                    n,
                    bytes_per_item=float(self.natural_arity) * TUPLE_ITEMSIZE,
                    ops_per_item=self.natural_arity,
                    label=f"{label}.adopt_sorted",
                )
        elif charge_build:
            self.sorted_index = self.device.kernels.lexsort_columns(
                self.stored_columns(), label=f"{label}.sort_index", n_rows=n
            )
        else:
            self.sorted_index = backend.lexsort(self.stored_columns(), n_rows=n)

        # --- Cached packed sort keys + join-key runs ---------------------------
        if n:
            sorted_columns = [column[self.sorted_index] for column in self.stored_columns()]
        else:
            sorted_columns = self.stored_columns()
        key_rows = self._recompute_sorted_state(sorted_columns)
        if charge_build and n and self.n_join:
            self.device.kernels.transform(
                n,
                bytes_per_item=2.0 * self.n_join * TUPLE_ITEMSIZE,
                ops_per_item=self.n_join,
                label=f"{label}.find_runs",
            )

        # --- Tier 3: open-addressing hash table --------------------------------
        self.table: OpenAddressingHashTable | None = None
        self._hash_by_ordinal = backend.empty(0, dtype=backend.uint64)
        self._slot_by_ordinal = backend.empty(0, dtype=backend.int64)
        if build_hash_index and self.n_join:
            if key_rows.size:
                hashes = backend.hash_rows(key_rows)
            else:
                hashes = backend.empty(0, dtype=backend.uint64)
            if charge_build and key_rows.size:
                self.device.kernels.transform(
                    key_rows.shape[0],
                    bytes_per_item=self.n_join * TUPLE_ITEMSIZE,
                    ops_per_item=4.0 * self.n_join,
                    label=f"{label}.hash_keys",
                )
            self.table = OpenAddressingHashTable(
                device,
                hashes,
                self.run_starts,
                self.run_lengths,
                load_factor=self.load_factor,
                label=f"{label}.table",
                charge=charge_build,
            )
            self._hash_by_ordinal = hashes
            self._slot_by_ordinal = self.table.built_slots

        # --- Device memory accounting ------------------------------------------
        # The index tier covers both the sorted index array and the cached
        # packed sort keys (which persist across merges in the incremental
        # design and are as large as the data array).
        self._data_buffer: Buffer | None = device.allocate(
            self._storage_nbytes(), label=f"{label}.data", charge_cost=False
        )
        self._index_buffer: Buffer | None = device.allocate(
            max(0, self.sorted_index.nbytes + self._cached_keys_nbytes()),
            label=f"{label}.index",
            charge_cost=False,
        )
        self._table_buffer: Buffer | None = None
        if self.table is not None:
            self._table_buffer = device.allocate(
                self.table.nbytes, label=f"{label}.table", charge_cost=False
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        return self._live

    def __len__(self) -> int:
        return self.tuple_count

    @property
    def arity(self) -> int:
        return self.natural_arity

    @property
    def distinct_key_count(self) -> int:
        return int(self.run_starts.size)

    @property
    def capacity_rows(self) -> int:
        """Rows the backing storage can hold without reallocating."""
        if not self._column_storage:
            return self._live
        return int(self._column_storage[0].shape[0])

    def _storage_nbytes(self) -> int:
        return sum(int(column.nbytes) for column in self._column_storage)

    def memory_breakdown(self) -> HisaMemoryBreakdown:
        data_bytes = (
            self._data_buffer.nbytes
            if self._data_buffer is not None
            else self._live * self.natural_arity * TUPLE_ITEMSIZE
        )
        index_bytes = (
            self._index_buffer.nbytes
            if self._index_buffer is not None
            else int(self.sorted_index.nbytes) + self._cached_keys_nbytes()
        )
        return HisaMemoryBreakdown(
            data_bytes=int(data_bytes),
            index_bytes=int(index_bytes),
            table_bytes=int(self.table.nbytes) if self.table is not None else 0,
        )

    @property
    def nbytes(self) -> int:
        return self.memory_breakdown().total_bytes

    # ------------------------------------------------------------------
    # Column access (the SoA fast path) and row-array interop views
    # ------------------------------------------------------------------
    def stored_column(self, position: int) -> Array:
        """One stored column (index column order) as a dense 1-D view."""
        self._check_live()
        return self._column_storage[position][: self._live]

    def stored_columns(self) -> list[Array]:
        """All stored columns (join columns first), insertion order."""
        self._check_live()
        return [column[: self._live] for column in self._column_storage]

    def natural_column(self, column: int) -> Array:
        """One column in the relation's natural (schema) order."""
        return self.stored_column(self._inverse_order[column])

    def natural_columns(self) -> list[Array]:
        """All columns in schema order — zero-copy views for ColumnBatch wrapping."""
        return [self.natural_column(column) for column in range(self.natural_arity)]

    @property
    def data(self) -> Array:
        """Materialized ``(n, arity)`` row view in stored column order.

        Kept for interop (tests, the legacy rebuild merge); the cache is
        invalidated whenever a merge mutates the column storage.
        """
        cache = self._rows_cache
        if cache is None:
            cache = self.backend.empty((self._live, len(self._column_storage)), dtype=TUPLE_DTYPE)
            for position, column in enumerate(self._column_storage):
                cache[:, position] = column[: self._live]
            self._rows_cache = cache
        return cache

    def natural_rows(self) -> Array:
        """All tuples in their original (schema) column order, insertion order."""
        self._check_live()
        out = self.backend.empty((self._live, self.natural_arity), dtype=TUPLE_DTYPE)
        for column in range(self.natural_arity):
            out[:, column] = self.natural_column(column)
        return out

    def sorted_natural_rows(self) -> Array:
        """All tuples in schema order, sorted by (join columns, rest)."""
        self._check_live()
        out = self.backend.empty((self._live, self.natural_arity), dtype=TUPLE_DTYPE)
        for column in range(self.natural_arity):
            out[:, column] = self.natural_column(column)[self.sorted_index]
        return out

    def stored_rows(self) -> Array:
        """All tuples in index column order (join columns first), insertion order."""
        self._check_live()
        return self.data

    def rows_at_sorted_positions(self, positions: Array) -> Array:
        """Tuples (schema order) at the given positions of the sorted index array."""
        self._check_live()
        backend = self.backend
        positions = backend.asarray(positions, dtype=backend.int64)
        if positions.size == 0:
            return backend.empty((0, self.natural_arity), dtype=backend.int64)
        data_positions = self.sorted_index[positions]
        out = backend.empty((positions.size, self.natural_arity), dtype=TUPLE_DTYPE)
        for column in range(self.natural_arity):
            out[:, column] = self.natural_column(column)[data_positions]
        return out

    # ------------------------------------------------------------------
    # Range queries (Algorithm 3 support)
    # ------------------------------------------------------------------
    def lookup(self, keys: Array, *, charge: bool = True, verify: bool = True) -> tuple[Array, Array]:
        """Range-query a batch of join keys.

        ``keys`` has shape ``(m, n_join)`` and column ``j`` holds the value of
        ``join_columns[j]``.  Returns ``(starts, lengths)`` in sorted-index
        space; misses are ``(-1, 0)``.
        """
        keys = self.backend.as_rows(keys)
        if keys.shape[0] and keys.shape[1] != self.n_join:
            raise SchemaError(f"expected keys of width {self.n_join}, got {keys.shape[1]}")
        return self.lookup_columns(
            [keys[:, position] for position in range(keys.shape[1])],
            charge=charge,
            verify=verify,
            n_keys=int(keys.shape[0]),
        )

    def lookup_columns(
        self,
        key_columns: Sequence[Array],
        *,
        charge: bool = True,
        verify: bool = True,
        n_keys: int | None = None,
    ) -> tuple[Array, Array]:
        """Columnar :meth:`lookup`: ``key_columns[j]`` holds ``join_columns[j]``.

        The SoA fast path — keys are hashed by folding the columns directly
        and verified against single stored columns, so no row tuples are ever
        assembled.
        """
        self._check_live()
        backend = self.backend
        m = int(key_columns[0].shape[0]) if key_columns else int(n_keys or 0)
        if m == 0:
            return backend.empty(0, dtype=backend.int64), backend.empty(0, dtype=backend.int64)
        if len(key_columns) != self.n_join:
            raise SchemaError(f"expected keys of width {self.n_join}, got {len(key_columns)}")
        if self.table is None:
            raise HisaStateError("this HISA was built without a hash index")
        if charge:
            self.device.kernels.transform(
                m,
                bytes_per_item=self.n_join * TUPLE_ITEMSIZE,
                ops_per_item=4.0 * self.n_join,
                label=f"{self.label}.hash_keys",
            )
        hashes = backend.hash_columns(key_columns)
        starts, lengths = self.table.probe(hashes, charge=charge, label=f"{self.label}.probe")
        if verify and starts.size:
            hits = starts >= 0
            if hits.any():
                first_positions = self.sorted_index[starts[hits]]
                matches = backend.ones(first_positions.size, dtype=backend.bool_)
                for position, key_column in enumerate(key_columns):
                    matches &= self.stored_column(position)[first_positions] == key_column[hits]
                if charge:
                    self.device.kernels.random_access(
                        int(hits.sum()),
                        bytes_per_access=self.n_join * TUPLE_ITEMSIZE,
                        label=f"{self.label}.verify_key",
                    )
                bad = backend.nonzero_indices(hits)[~matches]
                backend.scatter(starts, bad, -1)
                backend.scatter(lengths, bad, 0)
        return starts, lengths

    def expand_matches(self, starts: Array, lengths: Array) -> tuple[Array, Array]:
        """Expand ``(starts, lengths)`` into flat (probe index, data position) pairs.

        Returns ``(probe_indices, data_positions)`` where ``data_positions``
        index directly into the data array (already translated through the
        sorted index array).
        """
        self._check_live()
        backend = self.backend
        starts = backend.asarray(starts, dtype=backend.int64)
        lengths = backend.asarray(lengths, dtype=backend.int64)
        total = int(lengths.sum())
        if total == 0:
            return backend.empty(0, dtype=backend.int64), backend.empty(0, dtype=backend.int64)
        probe_indices = backend.repeat(backend.arange(starts.size, dtype=backend.int64), lengths)
        cumulative = backend.cumsum(lengths)
        offsets = backend.repeat(cumulative - lengths, lengths)
        within_run = backend.arange(total, dtype=backend.int64) - offsets
        sorted_positions = backend.repeat(starts, lengths) + within_run
        data_positions = self.sorted_index[sorted_positions]
        return probe_indices, data_positions

    def contains(self, rows: Array, *, charge: bool = True) -> Array:
        """Exact membership test for whole tuples (schema column order).

        Requires the HISA to be indexed on *all* columns (as the ``full``
        version used for deduplication is).
        """
        self._check_live()
        rows = self.backend.as_rows(rows)
        if rows.shape[0] == 0:
            return self.backend.empty(0, dtype=self.backend.bool_)
        return self.contains_columns(
            [rows[:, column] for column in range(rows.shape[1])], charge=charge
        )

    def contains_columns(self, columns: Sequence[Array], *, charge: bool = True) -> Array:
        """Columnar :meth:`contains`: ``columns`` are in schema order."""
        self._check_live()
        if self.n_join != self.natural_arity:
            raise HisaStateError("contains() requires an all-column index")
        if not columns or columns[0].shape[0] == 0:
            return self.backend.empty(0, dtype=self.backend.bool_)
        key_columns = [columns[column] for column in self.column_order]
        starts, _lengths = self.lookup_columns(key_columns, charge=charge, verify=True)
        return starts >= 0

    # ------------------------------------------------------------------
    # Merge (full <- full U delta), Section 4.2 / 5.1
    # ------------------------------------------------------------------
    def merge(
        self,
        delta: "HISA",
        buffer_manager: MergeBufferManager | None = None,
        *,
        charge: bool = True,
        incremental: bool = True,
    ) -> "HISA":
        """Absorb ``delta``'s tuples into this HISA and return ``self``.

        ``delta`` must already be disjoint from ``self`` (the populate-delta
        phase guarantees it), so no deduplication is performed.  ``delta`` is
        consumed: its device buffers are freed and it must not be used
        afterwards.  The default incremental path does O(|Δ| log |full|)
        key-merge work plus streaming scatter passes and never re-derives the
        sort keys, runs, or hash entries of the pre-existing tuples;
        ``incremental=False`` forces the legacy scratch rebuild (the cost
        baseline the ablation and the equivalence tests compare against).
        """
        self._check_live()
        delta._check_live()
        if delta.natural_arity != self.natural_arity:
            raise SchemaError("cannot merge HISAs with different arity")
        if delta.join_columns != self.join_columns:
            raise SchemaError("cannot merge HISAs indexed on different join columns")
        manager = buffer_manager if buffer_manager is not None else SimpleBufferManager(self.device, label=f"{self.label}.merge")

        if delta.tuple_count == 0:
            delta._consume()
            self.last_merge_in_place = True
            self.last_merge_incremental = True
            self._notify_stats(0, 0)
            return self

        # Capture the delta's counts before either merge path consumes it.
        delta_rows = delta.tuple_count
        delta_distinct = delta.distinct_key_count
        use_incremental = (
            incremental
            and self.n_join > 0
            and self.natural_arity > 0
            and self._sorted_keys is not None
            and delta._sorted_keys is not None
            and not (self.table is None and delta.table is not None)
        )
        if use_incremental:
            merged = self._merge_incremental(delta, manager, charge=charge)
        else:
            merged = self._merge_rebuild(delta, manager, charge=charge)
        self._notify_stats(delta_rows, delta_distinct)
        return merged

    @property
    def max_run_length(self) -> int:
        """Longest join-key run — the worst-case matches one probe key returns.

        Uncharged host introspection over the incrementally maintained run
        structure (same precedent as the divergence inspection in the join
        operators): the planner's skew signal, not a datapath kernel.
        """
        if not int(self.run_lengths.size):
            return 0
        return int(self.backend.to_host(self.run_lengths).max())

    def _notify_stats(self, delta_rows: int, delta_distinct: int) -> None:
        if self.stats_observer is not None:
            self.stats_observer(
                delta_rows=delta_rows,
                delta_distinct=delta_distinct,
                total_rows=self.tuple_count,
                total_distinct=self.distinct_key_count,
                max_multiplicity=self.max_run_length,
            )

    # -- data-tier helper ------------------------------------------------
    def _append_data(
        self, delta: "HISA", manager: MergeBufferManager, *, charge: bool, allow_in_place: bool = True
    ) -> bool:
        """Append ``delta``'s rows to the data array; returns True if in place.

        In place requires the backing device buffer (and host storage) to have
        enough reserved headroom — exactly what the eager buffer manager's
        over-allocation provides.  Otherwise a destination buffer is acquired
        from the manager and the whole relation is copied (amortised by the
        manager's growth policy).  ``allow_in_place=False`` forces the copy
        branch (the legacy rebuild always pays it).
        """
        backend = self.backend
        n, d = self.tuple_count, delta.tuple_count
        arity = self.natural_arity
        row_bytes = arity * TUPLE_ITEMSIZE
        required = (n + d) * row_bytes

        in_place = (
            allow_in_place
            and self._data_buffer is not None
            and self._data_buffer.nbytes >= required
            and self.capacity_rows >= n + d
        )
        if in_place:
            # Per-column streaming appends into the reserved headroom.  Only
            # the region past ``n`` is written, so live lazy batches holding
            # (base, selection) references into these columns stay valid.
            for position, column in enumerate(self._column_storage):
                column[n : n + d] = delta.stored_column(position)
            if charge:
                self.device.charge(
                    KernelCost(
                        kernel=f"{self.label}.merge_append",
                        sequential_bytes=2.0 * d * row_bytes,
                        ops=float(d),
                    )
                )
            manager.note_in_place(d * row_bytes)
        else:
            dest = manager.acquire(required, d * row_bytes)
            capacity = max(n + d, dest.nbytes // row_bytes if row_bytes else n + d)
            storage: list[Array] = []
            for position, column in enumerate(self._column_storage):
                grown = backend.empty(capacity, dtype=TUPLE_DTYPE)
                grown[:n] = column[:n]
                grown[n : n + d] = delta.stored_column(position)
                storage.append(grown)
            if charge:
                self.device.charge(
                    KernelCost(
                        kernel=f"{self.label}.merge_copy",
                        sequential_bytes=2.0 * float(required),
                        ops=float(n + d),
                    )
                )
            self._column_storage = storage
            old_buffer = self._data_buffer
            self._data_buffer = dest
            if old_buffer is not None:
                manager.retire(old_buffer)
        self._live = n + d
        self._rows_cache = None
        self.last_merge_in_place = in_place
        return in_place

    def _cached_keys_nbytes(self) -> int:
        """Bytes held by the persistent packed-key caches."""
        total = 0
        if self._sorted_keys is not None:
            total += int(self._sorted_keys.nbytes)
        if self._sorted_join_keys is not None and self._sorted_join_keys is not self._sorted_keys:
            total += int(self._sorted_join_keys.nbytes)
        return total

    def _recompute_sorted_state(self, sorted_columns: list[Array]) -> Array:
        """(Re)derive the cached keys, runs, and ordinals from sorted columns.

        Shared by the constructor and the legacy rebuild merge so the two
        stay byte-identical (the rebuild path is the equivalence oracle).
        Returns the distinct join-key rows for hashing.
        """
        backend = self.backend
        if self.natural_arity:
            self._sorted_keys = backend.pack_lex_keys(sorted_columns)
        else:
            self._sorted_keys = None
        if self.n_join:
            if self.n_join == self.natural_arity:
                # Join key == whole tuple: alias the full-key array instead of
                # packing the same bytes a second time.
                self._sorted_join_keys = self._sorted_keys
            else:
                self._sorted_join_keys = backend.pack_lex_keys(sorted_columns[: self.n_join])
            self.run_starts, self.run_lengths = _runs_from_keys(backend, self._sorted_join_keys)
            key_rows = backend.column_stack(
                [sorted_columns[position][self.run_starts] for position in range(self.n_join)]
            )
        else:
            self._sorted_join_keys = None
            self.run_starts = backend.empty(0, dtype=backend.int64)
            self.run_lengths = backend.empty(0, dtype=backend.int64)
            key_rows = backend.empty((0, max(1, self.n_join)), dtype=backend.int64)
        self._run_ordinals = backend.arange(self.run_starts.size, dtype=backend.int64)
        return key_rows

    def _replace_index_buffer(self) -> None:
        if self._index_buffer is not None:
            self.device.free(self._index_buffer, charge_cost=False)
        self._index_buffer = self.device.allocate(
            self.sorted_index.nbytes + self._cached_keys_nbytes(),
            label=f"{self.label}.index",
            charge_cost=False,
        )

    def _sync_table_buffer(self) -> None:
        if self.table is None:
            return
        if self._table_buffer is not None and self._table_buffer.nbytes == self.table.nbytes:
            return
        if self._table_buffer is not None:
            self.device.free(self._table_buffer, charge_cost=False)
        self._table_buffer = self.device.allocate(
            self.table.nbytes, label=f"{self.label}.table", charge_cost=False
        )

    # -- incremental path -------------------------------------------------
    def _merge_incremental(self, delta: "HISA", manager: MergeBufferManager, *, charge: bool) -> "HISA":
        backend = self.backend
        n, d = self.tuple_count, delta.tuple_count
        m = n + d

        # 1. Data tier: in-place append into reserved headroom when possible.
        self._append_data(delta, manager, charge=charge)

        # 2. Sorted index + cached keys: binary-search the delta's cached keys
        #    into the full's cached keys (O(d log n)), then scatter both runs
        #    of keys/indices into the merged arrays (streaming passes).
        insert_at = backend.searchsorted(self._sorted_keys, delta._sorted_keys, side="left")
        delta_pos = insert_at + backend.arange(d, dtype=backend.int64)
        old_pos_mask = backend.ones(m, dtype=backend.bool_)
        backend.scatter(old_pos_mask, delta_pos, False)

        merged_index = backend.empty(m, dtype=backend.int64)
        backend.scatter(merged_index, delta_pos, delta.sorted_index + n)
        merged_index[old_pos_mask] = self.sorted_index

        merged_keys = backend.empty(m, dtype=self._sorted_keys.dtype)
        backend.scatter(merged_keys, delta_pos, delta._sorted_keys)
        merged_keys[old_pos_mask] = self._sorted_keys

        join_keys_aliased = self._sorted_join_keys is self._sorted_keys
        if join_keys_aliased:
            merged_join_keys = merged_keys
        else:
            merged_join_keys = backend.empty(m, dtype=self._sorted_join_keys.dtype)
            backend.scatter(merged_join_keys, delta_pos, delta._sorted_join_keys)
            merged_join_keys[old_pos_mask] = self._sorted_join_keys

        # 3. Runs.  Fast path: an all-column index over duplicate-free inputs
        #    has singleton runs by construction (delta is disjoint from full),
        #    so the run structure is positional and needs no key comparisons.
        unique_runs = (
            join_keys_aliased
            and self.run_starts.size == n
            and delta.run_starts.size == d
        )
        if unique_runs:
            run_starts = backend.arange(m, dtype=backend.int64)
            run_lengths = backend.ones(m, dtype=backend.int64)
            is_new_run = ~old_pos_mask
        else:
            # Adjacent-compare over the cached join keys (no gather); a run is
            # pre-existing iff it contains at least one pre-existing element.
            run_starts, run_lengths = _runs_from_keys(backend, merged_join_keys)
            old_counts = backend.reduceat_sum(old_pos_mask.astype(backend.int64), run_starts)
            is_new_run = old_counts == 0
        n_new = int(is_new_run.sum())
        merged_ordinals = backend.empty(run_starts.size, dtype=backend.int64)
        # Pre-existing runs never split or reorder (equal join keys stay
        # contiguous under the lexicographic sort), so their ordinals carry
        # over positionally; new keys get fresh append-order ordinals.
        merged_ordinals[~is_new_run] = self._run_ordinals
        ordinal_base = int(self._hash_by_ordinal.size) if self.table is not None else int(self._run_ordinals.size)
        merged_ordinals[is_new_run] = ordinal_base + backend.arange(n_new, dtype=backend.int64)
        if charge:
            self.device.kernels.binary_search_keys(
                d,
                haystack_size=n,
                key_bytes=self.natural_arity * TUPLE_ITEMSIZE,
                label=f"{self.label}.merge_path",
            )
            # The index-merge epilogue — key/index scatter, run detection,
            # delta run finding and new-key hashing — streams the merged
            # arrays once, so it is charged as one fused finalize kernel.
            # Each stage below still describes its own bytes/ops (the honest
            # O(m) residual of dense sorted arrays); only the launches fold.
            with self.device.fused(f"{self.label}.merge_finalize"):
                scatter_bytes = 2.0 * m * INDEX_ITEMSIZE + 2.0 * m * self._sorted_keys.dtype.itemsize
                if not join_keys_aliased:
                    scatter_bytes += 2.0 * m * self._sorted_join_keys.dtype.itemsize
                self.device.charge(
                    KernelCost(
                        kernel=f"{self.label}.merge_scatter",
                        sequential_bytes=scatter_bytes,
                        ops=float(m),
                    )
                )
                if not unique_runs:
                    # The run scan reads every cached join key once plus the
                    # origin bitmap — another bandwidth-bound O(m) pass.
                    self.device.charge(
                        KernelCost(
                            kernel=f"{self.label}.run_scan",
                            sequential_bytes=float(m) * (merged_join_keys.dtype.itemsize + 1.0),
                            ops=float(m),
                        )
                    )
                self.device.kernels.transform(
                    d,
                    bytes_per_item=2.0 * self.n_join * TUPLE_ITEMSIZE,
                    ops_per_item=self.n_join,
                    label=f"{self.label}.find_runs_delta",
                )
                if self.table is not None and n_new:
                    self.device.kernels.transform(
                        n_new,
                        bytes_per_item=self.n_join * TUPLE_ITEMSIZE,
                        ops_per_item=4.0 * self.n_join,
                        label=f"{self.label}.hash_keys",
                    )

        # 4. Hash table: insert only the delta's new keys; refresh the shifted
        #    run starts of existing keys through their remembered slots.
        if self.table is not None:
            new_starts = run_starts[is_new_run]
            new_lengths = run_lengths[is_new_run]
            if n_new:
                new_key_positions = merged_index[new_starts]
                new_hashes = backend.hash_columns(
                    [
                        self.stored_column(position)[new_key_positions]
                        for position in range(self.n_join)
                    ]
                )
            else:
                new_hashes = backend.empty(0, dtype=backend.uint64)
            new_slots, grew = self.table.insert_batch(
                new_hashes, new_starts, new_lengths, charge=charge, label=f"{self.label}.table_insert"
            )
            self._hash_by_ordinal = backend.concatenate([self._hash_by_ordinal, new_hashes])
            if grew:
                self._slot_by_ordinal = self.table.find_slots(self._hash_by_ordinal)
            else:
                self._slot_by_ordinal = backend.concatenate([self._slot_by_ordinal, new_slots])
            existing = ~is_new_run
            self.table.update_slots(
                self._slot_by_ordinal[self._run_ordinals],
                run_starts[existing],
                run_lengths[existing],
                charge=charge,
                label=f"{self.label}.table_refresh",
            )
            self._sync_table_buffer()

        # 5. Adopt the merged state and consume the delta.
        self.sorted_index = merged_index
        self._sorted_keys = merged_keys
        self._sorted_join_keys = merged_join_keys
        self.run_starts = run_starts
        self.run_lengths = run_lengths
        self._run_ordinals = merged_ordinals
        self._replace_index_buffer()
        delta._consume()
        self.last_merge_incremental = True
        return self

    # -- legacy scratch rebuild -------------------------------------------
    def _merge_rebuild(self, delta: "HISA", manager: MergeBufferManager, *, charge: bool) -> "HISA":
        """Rebuild-from-scratch merge: O(|full|) per call, the pre-incremental
        behaviour kept as the ablation baseline and equivalence oracle."""
        backend = self.backend
        n, d = self.tuple_count, delta.tuple_count
        old_columns = self.stored_columns()
        old_index = self.sorted_index
        old_key_count = self.run_starts.size

        self._append_data(delta, manager, charge=charge, allow_in_place=False)
        merged_index = _merge_sorted_indices(
            backend, old_columns, old_index, delta.stored_columns(), delta.sorted_index
        )
        if charge:
            self.device.charge(
                KernelCost(
                    kernel=f"{self.label}.merge_path",
                    sequential_bytes=float((n + d) * self.natural_arity * TUPLE_ITEMSIZE)
                    + 2.0 * float(merged_index.nbytes),
                    ops=float(merged_index.size) * max(1, self.natural_arity),
                )
            )
        self.sorted_index = merged_index

        # Re-derive every cached structure from scratch (the whole point of
        # the incremental path is to avoid this O(|full|) block).
        if n + d:
            sorted_columns = [column[self.sorted_index] for column in self.stored_columns()]
        else:
            sorted_columns = self.stored_columns()
        key_rows = self._recompute_sorted_state(sorted_columns)
        if charge and self.n_join:
            self.device.kernels.transform(
                n + d,
                bytes_per_item=2.0 * self.n_join * TUPLE_ITEMSIZE,
                ops_per_item=self.n_join,
                label=f"{self.label}.find_runs",
            )

        rebuild_table = self.table is not None or delta.table is not None
        old_capacity = self.table.capacity if self.table is not None else 0
        self.table = None
        self._hash_by_ordinal = backend.empty(0, dtype=backend.uint64)
        self._slot_by_ordinal = backend.empty(0, dtype=backend.int64)
        if rebuild_table and self.n_join:
            if key_rows.size:
                hashes = backend.hash_rows(key_rows)
            else:
                hashes = backend.empty(0, dtype=backend.uint64)
            self.table = OpenAddressingHashTable(
                self.device,
                hashes,
                self.run_starts,
                self.run_lengths,
                load_factor=self.load_factor,
                label=f"{self.label}.table",
                charge=False,
            )
            self._hash_by_ordinal = hashes
            self._slot_by_ordinal = self.table.built_slots
            if charge:
                needs_rebuild = self.table.capacity != old_capacity
                if needs_rebuild:
                    rehash_keys = self.run_starts.size
                    alloc_bytes = float(self.table.nbytes)
                    allocations = 1
                else:
                    rehash_keys = max(0, self.run_starts.size - old_key_count)
                    alloc_bytes = 0.0
                    allocations = 0
                self.device.charge(
                    KernelCost(
                        kernel=f"{self.label}.table_merge",
                        random_bytes=float(rehash_keys) * 16.0 * 2.0,
                        ops=float(rehash_keys) * 4.0,
                        alloc_bytes=alloc_bytes,
                        allocations=allocations,
                    )
                )
        self._sync_table_buffer()
        self._replace_index_buffer()
        delta._consume()
        self.last_merge_incremental = False
        return self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def free(self) -> None:
        """Release all simulated device memory held by this HISA."""
        if self._freed:
            return
        self._release_buffers(retire_data_to=None)
        self._freed = True

    @property
    def is_freed(self) -> bool:
        return self._freed

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_live(self) -> None:
        if self._freed:
            raise HisaStateError(f"HISA {self.label!r} has been freed")

    def _consume(self) -> None:
        """Free buffers and mark this HISA as merged away."""
        self._release_buffers(retire_data_to=None)
        self._freed = True

    def _release_buffers(self, retire_data_to: MergeBufferManager | None) -> None:
        if self._data_buffer is not None:
            if retire_data_to is not None:
                retire_data_to.retire(self._data_buffer)
            else:
                self.device.free(self._data_buffer, charge_cost=False)
            self._data_buffer = None
        if self._index_buffer is not None:
            self.device.free(self._index_buffer, charge_cost=False)
            self._index_buffer = None
        if self._table_buffer is not None:
            self.device.free(self._table_buffer, charge_cost=False)
            self._table_buffer = None


# ----------------------------------------------------------------------
# Module-level helpers
# ----------------------------------------------------------------------

def _invert_permutation(order: tuple[int, ...]) -> tuple[int, ...]:
    inverse = [0] * len(order)
    for position, column in enumerate(order):
        inverse[column] = position
    return tuple(inverse)


def _runs_from_keys(backend: ArrayBackend, sorted_join_keys: Array) -> tuple[Array, Array]:
    """Run starts/lengths from packed join keys in sorted order."""
    n = int(sorted_join_keys.shape[0])
    if n == 0:
        empty = backend.empty(0, dtype=backend.int64)
        return empty, empty.copy()
    new_run = backend.adjacent_unique_mask([sorted_join_keys], n_rows=n)
    run_starts = backend.nonzero_indices(new_run)
    run_lengths = backend.run_lengths_from_starts(run_starts, n)
    return run_starts, run_lengths


def _merge_sorted_indices(
    backend: ArrayBackend,
    left_columns: list[Array],
    left_index: Array,
    right_columns: list[Array],
    right_index: Array,
) -> Array:
    """Merge two sorted index arrays into one over the concatenated columns.

    The result indexes into the per-column concatenation of ``left_columns``
    and ``right_columns``.  This is the legacy scratch-merge helper: it
    re-packs both sides' sort keys from the data columns (O(left + right)
    work), which the incremental merge path avoids by caching the packed
    keys.  The simulated cost is charged by the caller; here we only compute
    the exact answer.
    """
    n_left = int(left_columns[0].shape[0]) if left_columns else 0
    n_right = int(right_columns[0].shape[0]) if right_columns else 0
    if n_left == 0:
        return (right_index + n_left).astype(backend.int64)
    if n_right == 0:
        return left_index.astype(backend.int64)
    left_sorted_keys = backend.pack_lex_keys([column[left_index] for column in left_columns])
    right_sorted_keys = backend.pack_lex_keys([column[right_index] for column in right_columns])
    right_before_left = backend.searchsorted(right_sorted_keys, left_sorted_keys, side="left")
    left_before_right = backend.searchsorted(left_sorted_keys, right_sorted_keys, side="right")
    merged = backend.empty(n_left + n_right, dtype=backend.int64)
    left_positions = backend.arange(n_left, dtype=backend.int64) + right_before_left
    right_positions = backend.arange(n_right, dtype=backend.int64) + left_before_right
    backend.scatter(merged, left_positions, left_index)
    backend.scatter(merged, right_positions, right_index + n_left)
    return merged
