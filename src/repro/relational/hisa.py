"""The Hash-Indexed Sorted Array (HISA) — Section 4 of the paper.

A HISA stores one relation (or one index of a relation) in three tiers:

1. **data array** — the dense ``n x k`` tuple buffer, stored with the join
   columns permuted to the front (Algorithm 1 lines 1-5).  Dense storage is
   what gives parallel iteration [R2] and coalesced access.
2. **sorted index array** — the positions of the tuples, ordered
   lexicographically (join columns first).  Sorting groups equal join keys
   into contiguous runs, enabling range queries [R1] and adjacent-compare
   deduplication [R4].
3. **open-addressing hash table** — maps the 64-bit hash of a join key to the
   first sorted-index position of that key's run [R1, R3]
   (:class:`~repro.relational.hashtable.OpenAddressingHashTable`).

All algorithms run for real on NumPy arrays; every step charges the owning
simulated device so the profiler sees the same phases the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..device.cost import KernelCost
from ..device.device import Device
from ..device.kernels import INDEX_ITEMSIZE, TUPLE_ITEMSIZE, as_rows, lex_rank_keys
from ..device.memory import Buffer
from ..errors import HisaStateError, SchemaError
from .buffers import MergeBufferManager, SimpleBufferManager
from .hashing import hash_rows
from .hashtable import DEFAULT_LOAD_FACTOR, OpenAddressingHashTable


@dataclass(frozen=True)
class HisaMemoryBreakdown:
    """Bytes used by each HISA tier (for the memory columns of Tables 1-3)."""

    data_bytes: int
    index_bytes: int
    table_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.index_bytes + self.table_bytes


class HISA:
    """Hash-indexed sorted array over a single relation's tuples."""

    def __init__(
        self,
        device: Device,
        rows: np.ndarray,
        join_columns: Sequence[int],
        *,
        load_factor: float = DEFAULT_LOAD_FACTOR,
        label: str = "relation",
        charge_build: bool = True,
        build_hash_index: bool = True,
    ) -> None:
        rows = as_rows(rows)
        self.device = device
        self.label = label
        self.load_factor = float(load_factor)
        self.natural_arity = int(rows.shape[1]) if rows.size else int(rows.shape[1])
        self._freed = False

        join_columns = tuple(int(c) for c in join_columns)
        if rows.shape[1] and any(c < 0 or c >= rows.shape[1] for c in join_columns):
            raise SchemaError(
                f"join columns {join_columns} out of range for arity {rows.shape[1]}"
            )
        if len(set(join_columns)) != len(join_columns):
            raise SchemaError(f"join columns must be distinct, got {join_columns}")
        if not join_columns and rows.shape[1]:
            raise SchemaError("at least one join column is required")
        self.join_columns = join_columns
        self.n_join = len(join_columns)

        rest = tuple(c for c in range(rows.shape[1]) if c not in join_columns)
        self.column_order = join_columns + rest
        self._inverse_order = _invert_permutation(self.column_order)

        # --- Tier 1: data array (join columns permuted to the front) ---------
        if rows.shape[0]:
            reordered = np.ascontiguousarray(rows[:, list(self.column_order)])
        else:
            reordered = rows.reshape(0, rows.shape[1])
        self.data = reordered
        if charge_build and rows.shape[0]:
            self.device.kernels.transform(
                rows.shape[0],
                bytes_per_item=2.0 * rows.shape[1] * TUPLE_ITEMSIZE,
                ops_per_item=rows.shape[1],
                label=f"{label}.reorder_columns",
            )

        # --- Tier 2: sorted index array --------------------------------------
        if charge_build:
            self.sorted_index = self.device.kernels.lexsort_rows(self.data, label=f"{label}.sort_index")
        else:
            self.sorted_index = _host_lexsort(self.data)

        # --- Join-key runs -----------------------------------------------------
        self.run_starts, self.run_lengths, key_rows = self._compute_runs(charge=charge_build)

        # --- Tier 3: open-addressing hash table --------------------------------
        self.table: OpenAddressingHashTable | None = None
        if build_hash_index and self.n_join:
            hashes = hash_rows(key_rows) if key_rows.size else np.empty(0, dtype=np.uint64)
            if charge_build and key_rows.size:
                self.device.kernels.transform(
                    key_rows.shape[0],
                    bytes_per_item=self.n_join * TUPLE_ITEMSIZE,
                    ops_per_item=4.0 * self.n_join,
                    label=f"{label}.hash_keys",
                )
            self.table = OpenAddressingHashTable(
                device,
                hashes,
                self.run_starts,
                self.run_lengths,
                load_factor=self.load_factor,
                label=f"{label}.table",
                charge=charge_build,
            )

        # --- Device memory accounting ------------------------------------------
        self._data_buffer: Buffer | None = device.allocate(
            max(0, self.data.nbytes), label=f"{label}.data", charge_cost=False
        )
        self._index_buffer: Buffer | None = device.allocate(
            max(0, self.sorted_index.nbytes), label=f"{label}.index", charge_cost=False
        )
        self._table_buffer: Buffer | None = None
        if self.table is not None:
            self._table_buffer = device.allocate(
                self.table.nbytes, label=f"{label}.table", charge_cost=False
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        return int(self.data.shape[0])

    def __len__(self) -> int:
        return self.tuple_count

    @property
    def arity(self) -> int:
        return self.natural_arity

    @property
    def distinct_key_count(self) -> int:
        return int(self.run_starts.size)

    def memory_breakdown(self) -> HisaMemoryBreakdown:
        return HisaMemoryBreakdown(
            data_bytes=int(self.data.nbytes),
            index_bytes=int(self.sorted_index.nbytes),
            table_bytes=int(self.table.nbytes) if self.table is not None else 0,
        )

    @property
    def nbytes(self) -> int:
        return self.memory_breakdown().total_bytes

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def natural_rows(self) -> np.ndarray:
        """All tuples in their original (schema) column order, insertion order."""
        self._check_live()
        if self.data.shape[0] == 0:
            return self.data.reshape(0, self.natural_arity)
        return self.data[:, list(self._inverse_order)]

    def sorted_natural_rows(self) -> np.ndarray:
        """All tuples in schema order, sorted by (join columns, rest)."""
        self._check_live()
        if self.data.shape[0] == 0:
            return self.data.reshape(0, self.natural_arity)
        return self.data[self.sorted_index][:, list(self._inverse_order)]

    def stored_rows(self) -> np.ndarray:
        """All tuples in index column order (join columns first), insertion order."""
        self._check_live()
        return self.data

    def rows_at_sorted_positions(self, positions: np.ndarray) -> np.ndarray:
        """Tuples (schema order) at the given positions of the sorted index array."""
        self._check_live()
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return np.empty((0, self.natural_arity), dtype=np.int64)
        gathered = self.data[self.sorted_index[positions]]
        return gathered[:, list(self._inverse_order)]

    # ------------------------------------------------------------------
    # Range queries (Algorithm 3 support)
    # ------------------------------------------------------------------
    def lookup(self, keys: np.ndarray, *, charge: bool = True, verify: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Range-query a batch of join keys.

        ``keys`` has shape ``(m, n_join)`` and column ``j`` holds the value of
        ``join_columns[j]``.  Returns ``(starts, lengths)`` in sorted-index
        space; misses are ``(-1, 0)``.
        """
        self._check_live()
        keys = as_rows(keys)
        if keys.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        if keys.shape[1] != self.n_join:
            raise SchemaError(f"expected keys of width {self.n_join}, got {keys.shape[1]}")
        if self.table is None:
            raise HisaStateError("this HISA was built without a hash index")
        if charge:
            self.device.kernels.transform(
                keys.shape[0],
                bytes_per_item=self.n_join * TUPLE_ITEMSIZE,
                ops_per_item=4.0 * self.n_join,
                label=f"{self.label}.hash_keys",
            )
        hashes = hash_rows(keys)
        starts, lengths = self.table.probe(hashes, charge=charge, label=f"{self.label}.probe")
        if verify and starts.size:
            hits = starts >= 0
            if hits.any():
                first_rows = self.data[self.sorted_index[starts[hits]]][:, : self.n_join]
                matches = np.all(first_rows == keys[hits], axis=1)
                if charge:
                    self.device.kernels.random_access(
                        int(hits.sum()),
                        bytes_per_access=self.n_join * TUPLE_ITEMSIZE,
                        label=f"{self.label}.verify_key",
                    )
                bad = np.flatnonzero(hits)[~matches]
                starts[bad] = -1
                lengths[bad] = 0
        return starts, lengths

    def expand_matches(self, starts: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand ``(starts, lengths)`` into flat (probe index, data position) pairs.

        Returns ``(probe_indices, data_positions)`` where ``data_positions``
        index directly into the data array (already translated through the
        sorted index array).
        """
        self._check_live()
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        probe_indices = np.repeat(np.arange(starts.size, dtype=np.int64), lengths)
        offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
        within_run = np.arange(total, dtype=np.int64) - offsets
        sorted_positions = np.repeat(starts, lengths) + within_run
        data_positions = self.sorted_index[sorted_positions]
        return probe_indices, data_positions

    def contains(self, rows: np.ndarray, *, charge: bool = True) -> np.ndarray:
        """Exact membership test for whole tuples (schema column order).

        Requires the HISA to be indexed on *all* columns (as the ``full``
        version used for deduplication is).
        """
        self._check_live()
        rows = as_rows(rows)
        if rows.shape[0] == 0:
            return np.empty(0, dtype=bool)
        if self.n_join != self.natural_arity:
            raise HisaStateError("contains() requires an all-column index")
        keys = rows[:, list(self.column_order)]
        starts, _lengths = self.lookup(keys, charge=charge, verify=True)
        return starts >= 0

    # ------------------------------------------------------------------
    # Merge (full <- full U delta), Section 4.2 / 5.1
    # ------------------------------------------------------------------
    def merge(
        self,
        delta: "HISA",
        buffer_manager: MergeBufferManager | None = None,
        *,
        charge: bool = True,
    ) -> "HISA":
        """Return a new HISA containing this relation's tuples plus ``delta``'s.

        ``delta`` must already be disjoint from ``self`` (the populate-delta
        phase guarantees it), so no deduplication is performed — the data
        arrays are concatenated and the sorted index arrays are path-merged.
        Both input HISAs are consumed: their device buffers are retired/freed
        and they must not be used afterwards.
        """
        self._check_live()
        delta._check_live()
        if delta.natural_arity != self.natural_arity:
            raise SchemaError("cannot merge HISAs with different arity")
        if delta.join_columns != self.join_columns:
            raise SchemaError("cannot merge HISAs indexed on different join columns")
        manager = buffer_manager if buffer_manager is not None else SimpleBufferManager(self.device, label=f"{self.label}.merge")

        full_rows = self.data
        delta_rows = delta.data
        required_bytes = int(full_rows.nbytes + delta_rows.nbytes)

        # Destination buffer for the out-of-place path merge.
        dest_buffer = manager.acquire(required_bytes, delta_rows.nbytes)

        merged_data = np.concatenate([full_rows, delta_rows], axis=0) if required_bytes else full_rows
        if charge:
            self.device.charge(
                KernelCost(
                    kernel=f"{self.label}.merge_copy",
                    sequential_bytes=2.0 * float(required_bytes),
                    ops=float(merged_data.shape[0]),
                )
            )

        # Path-merge the two sorted index arrays (Green et al. merge path).
        merged_index = _merge_sorted_indices(full_rows, self.sorted_index, delta_rows, delta.sorted_index)
        if charge:
            self.device.charge(
                KernelCost(
                    kernel=f"{self.label}.merge_path",
                    sequential_bytes=float(required_bytes) + 2.0 * float(merged_index.nbytes),
                    ops=float(merged_index.size) * max(1, self.natural_arity),
                )
            )

        merged = HISA.__new__(HISA)
        merged.device = self.device
        merged.label = self.label
        merged.load_factor = self.load_factor
        merged.natural_arity = self.natural_arity
        merged.join_columns = self.join_columns
        merged.n_join = self.n_join
        merged.column_order = self.column_order
        merged._inverse_order = self._inverse_order
        merged._freed = False
        merged.data = merged_data
        merged.sorted_index = merged_index
        merged.run_starts, merged.run_lengths, key_rows = merged._compute_runs(charge=False)

        # Hash index: insert delta's keys into the full table, growing if needed.
        merged.table = None
        if self.table is not None or delta.table is not None:
            hashes = hash_rows(key_rows) if key_rows.size else np.empty(0, dtype=np.uint64)
            merged.table = OpenAddressingHashTable(
                self.device,
                hashes,
                merged.run_starts,
                merged.run_lengths,
                load_factor=self.load_factor,
                label=f"{self.label}.table",
                charge=False,
            )
            if charge:
                old_capacity = self.table.capacity if self.table is not None else 0
                needs_rebuild = merged.table.capacity != old_capacity
                if needs_rebuild:
                    rehash_keys = merged.run_starts.size
                    alloc_bytes = float(merged.table.nbytes)
                    allocations = 1
                else:
                    rehash_keys = max(0, merged.run_starts.size - (self.run_starts.size if self.run_starts is not None else 0))
                    alloc_bytes = 0.0
                    allocations = 0
                self.device.charge(
                    KernelCost(
                        kernel=f"{self.label}.table_merge",
                        random_bytes=float(rehash_keys) * 16.0 * 2.0,
                        ops=float(rehash_keys) * 4.0,
                        alloc_bytes=alloc_bytes,
                        allocations=allocations,
                    )
                )

        # ------------------------------------------------------------------
        # Device-memory bookkeeping: the merged HISA takes over the destination
        # buffer; old buffers are retired (data) or freed (index, table).
        # ------------------------------------------------------------------
        merged._data_buffer = dest_buffer
        merged._index_buffer = self.device.allocate(
            merged.sorted_index.nbytes, label=f"{self.label}.index", charge_cost=False
        )
        merged._table_buffer = None
        if merged.table is not None:
            merged._table_buffer = self.device.allocate(
                merged.table.nbytes, label=f"{self.label}.table", charge_cost=False
            )

        self._release_buffers(retire_data_to=manager)
        self._freed = True
        delta._release_buffers(retire_data_to=None)
        delta._freed = True
        return merged

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def free(self) -> None:
        """Release all simulated device memory held by this HISA."""
        if self._freed:
            return
        self._release_buffers(retire_data_to=None)
        self._freed = True

    @property
    def is_freed(self) -> bool:
        return self._freed

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_live(self) -> None:
        if self._freed:
            raise HisaStateError(f"HISA {self.label!r} has been freed")

    def _compute_runs(self, *, charge: bool) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compute join-key run starts/lengths over the sorted index array."""
        n = self.data.shape[0]
        if n == 0 or self.n_join == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), np.empty((0, max(1, self.n_join)), dtype=np.int64)
        sorted_join = self.data[self.sorted_index][:, : self.n_join]
        new_run = np.ones(n, dtype=bool)
        if n > 1:
            new_run[1:] = np.any(sorted_join[1:] != sorted_join[:-1], axis=1)
        run_starts = np.flatnonzero(new_run).astype(np.int64)
        run_lengths = np.diff(np.append(run_starts, n)).astype(np.int64)
        key_rows = sorted_join[run_starts]
        if charge:
            self.device.kernels.transform(
                n,
                bytes_per_item=2.0 * self.n_join * TUPLE_ITEMSIZE,
                ops_per_item=self.n_join,
                label=f"{self.label}.find_runs",
            )
        return run_starts, run_lengths, key_rows

    def _release_buffers(self, retire_data_to: MergeBufferManager | None) -> None:
        if self._data_buffer is not None:
            if retire_data_to is not None:
                retire_data_to.retire(self._data_buffer)
            else:
                self.device.free(self._data_buffer, charge_cost=False)
            self._data_buffer = None
        if self._index_buffer is not None:
            self.device.free(self._index_buffer, charge_cost=False)
            self._index_buffer = None
        if self._table_buffer is not None:
            self.device.free(self._table_buffer, charge_cost=False)
            self._table_buffer = None


# ----------------------------------------------------------------------
# Module-level helpers
# ----------------------------------------------------------------------

def _invert_permutation(order: tuple[int, ...]) -> tuple[int, ...]:
    inverse = [0] * len(order)
    for position, column in enumerate(order):
        inverse[column] = position
    return tuple(inverse)


def _host_lexsort(rows: np.ndarray) -> np.ndarray:
    if rows.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    keys = tuple(rows[:, col] for col in reversed(range(rows.shape[1])))
    return np.lexsort(keys).astype(np.int64)


def _merge_sorted_indices(
    left_rows: np.ndarray,
    left_index: np.ndarray,
    right_rows: np.ndarray,
    right_index: np.ndarray,
) -> np.ndarray:
    """Merge two sorted index arrays into one over the concatenated data array.

    The result indexes into ``concatenate([left_rows, right_rows])``.  The
    simulated cost of the path merge is charged by the caller; here we only
    compute the exact answer.
    """
    n_left = left_rows.shape[0]
    n_right = right_rows.shape[0]
    if n_left == 0:
        return (right_index + n_left).astype(np.int64)
    if n_right == 0:
        return left_index.astype(np.int64)
    # Linear two-way merge: compare the two already-sorted sequences via packed
    # row keys and compute each element's final rank directly (the CPU-side
    # equivalent of the GPU merge-path algorithm).
    left_sorted_keys = lex_rank_keys(left_rows[left_index])
    right_sorted_keys = lex_rank_keys(right_rows[right_index])
    right_before_left = np.searchsorted(right_sorted_keys, left_sorted_keys, side="left")
    left_before_right = np.searchsorted(left_sorted_keys, right_sorted_keys, side="right")
    merged = np.empty(n_left + n_right, dtype=np.int64)
    left_positions = np.arange(n_left, dtype=np.int64) + right_before_left
    right_positions = np.arange(n_right, dtype=np.int64) + left_before_right
    merged[left_positions] = left_index
    merged[right_positions] = right_index + n_left
    return merged
