"""Relational-algebra kernels over HISA relations (Section 5.1).

These are the compute kernels the fixpoint loop of Figure 3 executes:

* :func:`hash_join` — Algorithm 3: iterate the outer relation's data array in
  strides, hash each tuple's join columns, probe the inner HISA's hash table,
  scan the matched run of the sorted index array, and emit result tuples.
* :func:`fused_nway_join` — the *non*-materialized nested n-way join used as
  the baseline of the Section 5.2 ablation: one kernel performs both joins,
  so warp divergence is charged on the combined per-thread workload.
* :func:`select`, :func:`project`, :func:`deduplicate`, :func:`difference` —
  the remaining operators of the evaluation pipeline.

Every operator is *polymorphic over the pipeline layout*: given a row-major
tuple array it runs the legacy row pipeline and returns a row array (the
ablation baseline, unchanged); given a :class:`ColumnBatch` it runs the
columnar late-materialization pipeline and returns a batch whose columns are
gathered only when a downstream consumer touches them.  ``hash_join`` in
columnar mode returns the match-index pairs wrapped as a lazy batch instead
of materializing output tuples.

Every array is owned by the device's
:class:`~repro.backend.base.ArrayBackend`; no operator calls an array library
directly, so the same code runs on NumPy, CuPy or the guard backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..backend import Array, ArrayBackend, HOST_BACKEND, INDEX_ITEMSIZE, TUPLE_ITEMSIZE
from ..device.cost import KernelCost
from ..device.device import Device
from ..device.simt import warp_divergence_factor
from ..errors import SchemaError
from .columnbatch import ColumnBatch
from .hisa import HISA

OUTER = "outer"
INNER = "inner"

#: Operators accept either layout; the output layout follows the input.
RowsLike = Union[Array, ColumnBatch]


@dataclass(frozen=True)
class JoinOutput:
    """One output column of a join: copy ``column`` from ``source``.

    ``source`` is ``"outer"`` or ``"inner"``; ``column`` is the natural
    (schema-order) column index within that relation.
    """

    source: str
    column: int

    def __post_init__(self) -> None:
        if self.source not in (OUTER, INNER):
            raise SchemaError(f"join output source must be 'outer' or 'inner', got {self.source!r}")
        if self.column < 0:
            raise SchemaError("join output column must be non-negative")


@dataclass(frozen=True)
class ColumnComparison:
    """A comparison predicate applied to result tuples (e.g. ``x != y``).

    Evaluation routes through the backend's ``compare`` kernel (the one
    comparison implementation every backend shares), so a backend overriding
    it for device-side evaluation is honoured by both pipelines.
    """

    op: str
    left_column: int
    right_column: int | None = None
    constant: int | None = None

    _OPS = ("==", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise SchemaError(f"unsupported comparison operator {self.op!r}")
        if (self.right_column is None) == (self.constant is None):
            raise SchemaError("exactly one of right_column or constant must be given")

    def evaluate(self, rows: Array, backend: "ArrayBackend | None" = None) -> Array:
        left = rows[:, self.left_column]
        right = rows[:, self.right_column] if self.right_column is not None else self.constant
        return (backend or HOST_BACKEND).compare(self.op, left, right)

    def evaluate_batch(self, batch: ColumnBatch, *, charge: bool = True, label: str = "compare") -> Array:
        """Evaluate on a columnar batch — materializes only the referenced columns."""
        left = batch.column(self.left_column, charge=charge, label=label)
        if self.right_column is not None:
            right = batch.column(self.right_column, charge=charge, label=label)
        else:
            right = self.constant
        return batch.device.backend.compare(self.op, left, right)


def _divergence(device: Device, work_per_item: Array) -> float:
    """Warp-divergence factor of per-lane work (host-side cost modelling).

    The SIMT model is analytic host code; backend arrays cross to host via
    the *uncharged* raw ``to_host`` — this is introspection of the cost
    model, not datapath payload movement.
    """
    return warp_divergence_factor(device.backend.to_host(work_per_item), device.spec.warp_size)


# ----------------------------------------------------------------------
# Binary hash join (Algorithm 3)
# ----------------------------------------------------------------------

def hash_join(
    device: Device,
    outer_rows: RowsLike,
    outer_join_columns: Sequence[int],
    inner: HISA,
    output: Sequence[JoinOutput],
    *,
    comparisons: Sequence[ColumnComparison] = (),
    label: str = "join",
    charge: bool = True,
) -> RowsLike:
    """Join an outer tuple array (or columnar batch) against an inner HISA.

    ``outer_join_columns[j]`` is the outer column matched against the inner's
    ``join_columns[j]``.  ``output`` lists the columns of the result tuple;
    ``comparisons`` (evaluated on the result layout) filter the output, which
    is how guards such as ``x != y`` in SG are applied inside the join kernel.

    Given a :class:`ColumnBatch` outer, the join runs the columnar
    late-materialization pipeline: only the outer key columns are gathered to
    probe, and the result is a lazy batch of (match index, stored column)
    pairs — no output tuple is materialized until someone reads it.
    """
    if isinstance(outer_rows, ColumnBatch):
        return _hash_join_columnar(
            device,
            outer_rows,
            outer_join_columns,
            inner,
            output,
            comparisons=comparisons,
            label=label,
            charge=charge,
        )
    backend = device.backend
    outer_rows = backend.as_rows(outer_rows)
    outer_join_columns = [int(c) for c in outer_join_columns]
    if len(outer_join_columns) != inner.n_join:
        raise SchemaError(
            f"outer join columns {outer_join_columns} do not match inner key width {inner.n_join}"
        )
    out_arity = len(output)
    if outer_rows.shape[0] == 0 or inner.tuple_count == 0:
        if charge and outer_rows.shape[0]:
            device.charge(KernelCost(kernel=f"{label}.scan_outer", sequential_bytes=float(outer_rows.nbytes)))
        return backend.empty((0, out_arity), dtype=backend.int64)

    # 1. Stride over the outer relation's data array (coalesced reads).
    if charge:
        device.charge(
            KernelCost(
                kernel=f"{label}.scan_outer",
                sequential_bytes=float(outer_rows.nbytes),
                ops=float(outer_rows.shape[0]),
            )
        )

    # 2. Hash the outer join columns and probe the inner hash table.
    keys = outer_rows[:, outer_join_columns]
    starts, lengths = inner.lookup(keys, charge=charge)

    # 3. Scan the matched runs of the sorted index array.
    total_matches = int(lengths.sum())
    divergence = _divergence(device, lengths)
    inner_row_bytes = max(1, inner.natural_arity) * TUPLE_ITEMSIZE
    if charge:
        device.charge(
            KernelCost(
                kernel=f"{label}.scan_inner",
                random_bytes=float(total_matches) * (inner_row_bytes + 8.0),
                ops=float(total_matches) * max(1, inner.natural_arity),
                divergence=divergence,
            )
        )
    if total_matches == 0:
        return backend.empty((0, out_arity), dtype=backend.int64)

    probe_idx, data_positions = inner.expand_matches(starts, lengths)

    # 4. Materialise the output columns (gathered from the SoA storage —
    #    no full row array is assembled for the probed index).
    columns = []
    for spec in output:
        if spec.source == OUTER:
            if spec.column >= outer_rows.shape[1]:
                raise SchemaError(f"outer column {spec.column} out of range")
            columns.append(outer_rows[probe_idx, spec.column])
        else:
            if spec.column >= inner.natural_arity:
                raise SchemaError(f"inner column {spec.column} out of range")
            stored_col = inner.column_order.index(spec.column)
            columns.append(inner.stored_column(stored_col)[data_positions])
    if columns:
        result = backend.column_stack(columns).astype(backend.int64)
    else:
        result = backend.empty((total_matches, 0), dtype=backend.int64)

    # 5. Apply in-kernel comparison guards.
    if comparisons:
        mask = backend.ones(result.shape[0], dtype=backend.bool_)
        for comparison in comparisons:
            mask &= comparison.evaluate(result, backend)
        result = result[mask]

    if charge:
        device.charge(
            KernelCost(
                kernel=f"{label}.write_output",
                sequential_bytes=float(result.nbytes),
                ops=float(result.shape[0]) * max(1, out_arity),
                divergence=divergence,
            )
        )
    return result


def _hash_join_columnar(
    device: Device,
    outer: ColumnBatch,
    outer_join_columns: Sequence[int],
    inner: HISA,
    output: Sequence[JoinOutput],
    *,
    comparisons: Sequence[ColumnComparison] = (),
    label: str = "join",
    charge: bool = True,
) -> ColumnBatch:
    """Columnar hash join: probe with key columns, emit a lazy index batch."""
    backend = device.backend
    outer_join_columns = [int(c) for c in outer_join_columns]
    if len(outer_join_columns) != inner.n_join:
        raise SchemaError(
            f"outer join columns {outer_join_columns} do not match inner key width {inner.n_join}"
        )
    out_arity = len(output)
    for spec in output:
        if spec.source == OUTER and spec.column >= outer.arity:
            raise SchemaError(f"outer column {spec.column} out of range")
        if spec.source == INNER and spec.column >= inner.natural_arity:
            raise SchemaError(f"inner column {spec.column} out of range")
    n = len(outer)
    streamed_keys = sum(1 for column in outer_join_columns if outer.is_materialized(column))
    streamed_bytes = float(n) * streamed_keys * TUPLE_ITEMSIZE
    if n == 0 or inner.tuple_count == 0:
        if charge and n and streamed_keys:
            device.charge(KernelCost(kernel=f"{label}.scan_outer", sequential_bytes=streamed_bytes))
        return ColumnBatch.empty(device, out_arity)

    # The whole probe pipeline — key gather, hash, table probe, key verify,
    # match expansion and guard evaluation — is a chain of elementwise
    # stages over the same index space, which a real engine compiles into
    # one fused kernel.  The fusion scope folds every stage's bytes/ops
    # into a single launch; the stages below keep charging their own work
    # descriptions so the memory/compute accounting stays per-stage exact.
    with device.fused(f"{label}.probe_fused"):
        # 1. Read only the outer *key* columns (the columnar saving: non-key
        #    columns of the outer batch are not touched by the probe).
        #    Already-materialized key columns are charged here as a streaming
        #    scan; lazy ones pay their own gather in ``column()`` instead, so
        #    a fully lazy key set charges only the per-tuple probe ops.
        if charge:
            device.charge(
                KernelCost(
                    kernel=f"{label}.scan_outer",
                    sequential_bytes=streamed_bytes,
                    ops=float(n),
                )
            )
        key_columns = [
            outer.column(column, charge=charge, label=f"{label}.gather_keys")
            for column in outer_join_columns
        ]

        # 2. Hash the key columns and probe the inner hash table.
        starts, lengths = inner.lookup_columns(key_columns, charge=charge)

        # 3. Expand the matched runs into (probe index, data position) pairs.
        #    Only the two index vectors are written — tuple values stay put.
        total_matches = int(lengths.sum())
        divergence = _divergence(device, lengths)
        if charge:
            device.charge(
                KernelCost(
                    kernel=f"{label}.scan_inner",
                    random_bytes=float(total_matches) * INDEX_ITEMSIZE,
                    sequential_bytes=2.0 * float(total_matches) * INDEX_ITEMSIZE,
                    ops=float(total_matches),
                    divergence=divergence,
                )
            )
        if total_matches == 0:
            return ColumnBatch.empty(device, out_arity)
        probe_idx, data_positions = inner.expand_matches(starts, lengths)

        # 4. Wire the output columns as lazy gathers: outer columns route
        #    through the probe indices, inner columns reference the HISA's
        #    stored columns selected by data position.  Nothing is copied or
        #    composed here — selection chains resolve when (and only if) a
        #    column is read.
        routed_outer = outer.take(probe_idx, label=f"{label}.route_outer")
        inner_specs = [
            (inner.stored_column(inner.column_order.index(spec.column)), data_positions)
            for spec in output
            if spec.source == INNER
        ]
        extended = routed_outer.append_lazy(inner_specs)
        positions: list[int] = []
        inner_position = routed_outer.arity
        for spec in output:
            if spec.source == OUTER:
                positions.append(spec.column)
            else:
                positions.append(inner_position)
                inner_position += 1
        result = extended.project(positions)

        # 5. In-kernel comparison guards materialize only the columns they
        #    read; the guard mask and compaction ride in the fused kernel.
        if comparisons:
            mask = backend.ones(len(result), dtype=backend.bool_)
            for comparison in comparisons:
                mask &= comparison.evaluate_batch(result, charge=charge, label=f"{label}.guard")
            result = result.filter(mask, charge=charge, label=f"{label}.guard_compact")
    return result


# ----------------------------------------------------------------------
# Fused (non-materialized) n-way join — the Section 5.2 ablation baseline
# ----------------------------------------------------------------------

def fused_nway_join(
    device: Device,
    outer_rows: RowsLike,
    stages: Sequence[tuple[Sequence[int], HISA, Sequence[JoinOutput]]],
    *,
    comparisons: Sequence[ColumnComparison] = (),
    label: str = "fused_join",
    charge: bool = True,
) -> Array:
    """Evaluate a chain of joins inside a single simulated kernel.

    ``stages`` is a list of ``(outer_join_columns, inner_hisa, output)``
    entries; the output of stage *i* becomes the outer relation of stage
    *i + 1*.  Results are identical to running :func:`hash_join` per stage,
    but the cost is charged as one kernel whose per-thread workload is the
    *entire* downstream match count of each original outer tuple — threads
    whose tuple finds no matches idle until the busiest warp lane finishes
    every nested loop (Figure 5).
    """
    backend = device.backend
    if isinstance(outer_rows, ColumnBatch):
        # The fused kernel is inherently row-at-a-time (it is the ablation
        # baseline); a columnar outer is materialized at this edge.
        outer_rows = outer_rows.as_rows(charge=charge, label=f"{label}.materialize_outer")
    outer_rows = backend.as_rows(outer_rows)
    if not stages:
        raise SchemaError("fused_nway_join requires at least one stage")

    current = outer_rows
    # Track, for every original outer tuple, how much nested work it generates.
    origin = backend.arange(outer_rows.shape[0], dtype=backend.int64)
    per_origin_work = backend.zeros(outer_rows.shape[0], dtype=backend.int64)
    total_random_bytes = 0.0
    total_ops = 0.0

    for stage_index, (join_cols, inner, output) in enumerate(stages):
        if current.shape[0] == 0:
            current = backend.empty((0, len(output)), dtype=backend.int64)
            origin = backend.empty(0, dtype=backend.int64)
            break
        keys = current[:, [int(c) for c in join_cols]]
        starts, lengths = inner.lookup(keys, charge=False)
        backend.add_at(per_origin_work, origin, lengths)
        inner_row_bytes = max(1, inner.natural_arity) * TUPLE_ITEMSIZE
        total_matches = int(lengths.sum())
        total_random_bytes += float(total_matches) * (inner_row_bytes + 8.0)
        total_random_bytes += float(current.shape[0]) * 16.0  # hash-table probes
        total_ops += float(total_matches) * max(1, inner.natural_arity) + float(current.shape[0]) * 4.0

        probe_idx, data_positions = inner.expand_matches(starts, lengths)
        columns = []
        for spec in output:
            if spec.source == OUTER:
                columns.append(current[probe_idx, spec.column])
            else:
                stored_col = inner.column_order.index(spec.column)
                columns.append(inner.stored_column(stored_col)[data_positions])
        current = (
            backend.column_stack(columns).astype(backend.int64)
            if columns
            else backend.empty((probe_idx.size, 0), dtype=backend.int64)
        )
        origin = origin[probe_idx]

    if comparisons and current.shape[0]:
        mask = backend.ones(current.shape[0], dtype=backend.bool_)
        for comparison in comparisons:
            mask &= comparison.evaluate(current, backend)
        current = current[mask]

    if charge:
        divergence = _divergence(device, per_origin_work)
        # Idle lanes issue no memory requests, so the whole warp's effective
        # bandwidth drops with divergence too — this is exactly the thread
        # starvation of Figure 5 that temporary materialization removes.
        device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=float(outer_rows.nbytes) + float(current.nbytes),
                random_bytes=total_random_bytes * divergence,
                ops=max(total_ops, float(outer_rows.shape[0])),
                divergence=divergence,
                launches=1,
            )
        )
    return current


# ----------------------------------------------------------------------
# Remaining relational operators
# ----------------------------------------------------------------------

def select(
    device: Device,
    rows: RowsLike,
    comparisons: Sequence[ColumnComparison],
    *,
    label: str = "select",
    charge: bool = True,
) -> RowsLike:
    """Filter ``rows`` by conjunction of comparison predicates.

    Columnar batches materialize only the columns the predicates read; the
    surviving rows stay lazy (one selection compose per source).
    """
    backend = device.backend
    if isinstance(rows, ColumnBatch):
        if len(rows) == 0 or not comparisons:
            return rows
        mask = backend.ones(len(rows), dtype=backend.bool_)
        for comparison in comparisons:
            mask &= comparison.evaluate_batch(rows, charge=charge, label=label)
        return rows.filter(mask, charge=charge, label=f"{label}.compact")
    rows = backend.as_rows(rows)
    if rows.shape[0] == 0 or not comparisons:
        return rows
    mask = backend.ones(rows.shape[0], dtype=backend.bool_)
    for comparison in comparisons:
        mask &= comparison.evaluate(rows, backend)
    result = rows[mask]
    if charge:
        device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=float(rows.nbytes) + float(result.nbytes),
                ops=float(rows.shape[0]) * len(comparisons),
            )
        )
    return result


def project(
    device: Device,
    rows: RowsLike,
    columns: Sequence[int],
    *,
    label: str = "project",
    charge: bool = True,
) -> RowsLike:
    """Project ``rows`` onto the given natural column indices (with reorder/repeat).

    On a columnar batch this is pure metadata — no bytes move, which is the
    core late-materialization saving over the row pipeline's copy.
    """
    if isinstance(rows, ColumnBatch):
        return rows.project(columns)
    backend = device.backend
    rows = backend.as_rows(rows)
    columns = [int(c) for c in columns]
    if rows.shape[0] == 0:
        return backend.empty((0, len(columns)), dtype=backend.int64)
    result = rows[:, columns]
    if charge:
        device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=float(rows.nbytes) + float(result.nbytes),
                ops=float(rows.shape[0]) * max(1, len(columns)),
            )
        )
    return backend.ascontiguousarray(result)


def deduplicate(device: Device, rows: RowsLike, *, label: str = "deduplicate", charge: bool = True) -> RowsLike:
    """Sort + adjacent-compare + compact deduplication [R4].

    Columnar batches are deduplicated with a per-column lexsort — no packed
    row keys are built.  Both layouts (and the uncharged oracle) share the
    backend lexsort / adjacent-compare primitives, so the result order is
    identical everywhere: natural lexicographic.
    """
    backend = device.backend
    if isinstance(rows, ColumnBatch):
        if len(rows) <= 1:
            return rows
        if rows.arity == 0:
            # All zero-arity tuples are equal: one survivor.
            return ColumnBatch.from_columns(device, [], length=1, names=rows.names)
        if charge:
            # Column gather, sort epilogue, adjacent-compare and compaction
            # fuse around the multi-pass sort core: two radix passes plus one
            # fused gather/mask/compact kernel.
            with device.fused(f"{label}.dedup_fused", launches=3):
                columns = rows.columns(charge=charge, label=f"{label}.gather")
                deduped = device.kernels.unique_columns(columns, label=label)
        else:
            columns = rows.columns(charge=charge, label=f"{label}.gather")
            order = backend.lexsort(columns, n_rows=len(rows))
            sorted_columns = [column[order] for column in columns]
            keep = backend.adjacent_unique_mask(sorted_columns, n_rows=len(rows))
            deduped = [column[keep] for column in sorted_columns]
        return ColumnBatch.from_columns(device, deduped, names=rows.names)
    rows = backend.as_rows(rows)
    if rows.shape[0] <= 1:
        return rows
    if charge:
        return device.kernels.unique_rows(rows, label=label)
    column_views = [rows[:, column] for column in range(rows.shape[1])]
    packed_order = backend.lexsort(column_views, n_rows=rows.shape[0])
    sorted_rows = rows[packed_order]
    keep = backend.adjacent_unique_mask(
        [sorted_rows[:, column] for column in range(rows.shape[1])], n_rows=rows.shape[0]
    )
    return sorted_rows[keep]


def difference(
    device: Device,
    rows: RowsLike,
    existing: HISA,
    *,
    label: str = "difference",
    charge: bool = True,
) -> RowsLike:
    """Return the tuples of ``rows`` not present in ``existing`` (populate-delta).

    ``existing`` must be indexed on all of its columns (the canonical ``full``
    index) so that membership can be answered by one range probe per tuple.
    The columnar path hashes the batch's columns directly — no row tuples are
    assembled for the membership probe.
    """
    backend = device.backend
    if isinstance(rows, ColumnBatch):
        if len(rows) == 0 or existing.tuple_count == 0:
            return rows
        # The membership probe is one fused kernel: gather, hash, table
        # probe, verify and compact all stream the same rows once.
        with device.fused(f"{label}.diff_fused"):
            columns = rows.columns(charge=charge, label=f"{label}.gather")
            present = existing.contains_columns(columns, charge=charge)
            keep = ~present
            # Compact eagerly: the delta feeds every index build next, so each
            # column is streamed once here instead of re-gathered per consumer.
            if charge:
                kept_columns = device.kernels.compact_columns(columns, keep, label=f"{label}.compact")
            else:
                kept_columns = [column[keep] for column in columns]
        return ColumnBatch.from_columns(
            device, kept_columns, length=backend.count_nonzero(keep), names=rows.names
        )
    rows = backend.as_rows(rows)
    if rows.shape[0] == 0:
        return rows
    if existing.tuple_count == 0:
        return rows
    present = existing.contains(rows, charge=charge)
    result = rows[~present]
    if charge:
        device.charge(
            KernelCost(
                kernel=f"{label}.compact",
                sequential_bytes=float(rows.nbytes) + float(result.nbytes),
                ops=float(rows.shape[0]),
            )
        )
    return result


def union(
    device: Device,
    parts: Sequence[RowsLike],
    *,
    arity: int | None = None,
    label: str = "union",
    charge: bool = True,
) -> RowsLike:
    """Concatenate tuple arrays or batches (no deduplication).

    ``arity`` pins the schema: when every part is empty the result keeps its
    column count instead of silently collapsing to ``(0, 0)``.  Any non-empty
    part must agree with it.
    """
    backend = device.backend
    live_parts = [part for part in parts if part is not None and len(part)]
    if arity is None:
        # Infer the schema from any part (empty parts still carry their width).
        for part in parts:
            if part is not None:
                arity = part.arity if isinstance(part, ColumnBatch) else backend.as_rows(part).shape[1]
                break
        else:
            arity = 0
    if any(isinstance(part, ColumnBatch) for part in live_parts) or (
        not live_parts and any(isinstance(part, ColumnBatch) for part in parts if part is not None)
    ):
        batches = [ColumnBatch.wrap(device, part) for part in live_parts]
        return ColumnBatch.concatenate(device, batches, arity=arity, label=label, charge=charge)
    arrays = [backend.as_rows(part) for part in live_parts]
    if not arrays:
        return backend.empty((0, int(arity)), dtype=backend.int64)
    for array in arrays:
        if array.shape[1] != arity:
            raise SchemaError("cannot union tuple arrays with different arity")
    if charge:
        return device.kernels.concatenate_rows(arrays, label=label)
    return backend.concatenate(arrays, axis=0)
