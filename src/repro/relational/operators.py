"""Relational-algebra kernels over HISA relations (Section 5.1).

These are the compute kernels the fixpoint loop of Figure 3 executes:

* :func:`hash_join` — Algorithm 3: iterate the outer relation's data array in
  strides, hash each tuple's join columns, probe the inner HISA's hash table,
  scan the matched run of the sorted index array, and emit result tuples.
* :func:`fused_nway_join` — the *non*-materialized nested n-way join used as
  the baseline of the Section 5.2 ablation: one kernel performs both joins,
  so warp divergence is charged on the combined per-thread workload.
* :func:`select`, :func:`project`, :func:`deduplicate`, :func:`difference` —
  the remaining operators of the evaluation pipeline.

All functions return plain NumPy tuple arrays in the schema (natural) column
order; the caller decides when to wrap results into HISAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..device.cost import KernelCost
from ..device.device import Device
from ..device.kernels import TUPLE_ITEMSIZE, as_rows
from ..device.simt import warp_divergence_factor
from ..errors import SchemaError
from .hisa import HISA

OUTER = "outer"
INNER = "inner"


@dataclass(frozen=True)
class JoinOutput:
    """One output column of a join: copy ``column`` from ``source``.

    ``source`` is ``"outer"`` or ``"inner"``; ``column`` is the natural
    (schema-order) column index within that relation.
    """

    source: str
    column: int

    def __post_init__(self) -> None:
        if self.source not in (OUTER, INNER):
            raise SchemaError(f"join output source must be 'outer' or 'inner', got {self.source!r}")
        if self.column < 0:
            raise SchemaError("join output column must be non-negative")


@dataclass(frozen=True)
class ColumnComparison:
    """A comparison predicate applied to result tuples (e.g. ``x != y``)."""

    op: str
    left_column: int
    right_column: int | None = None
    constant: int | None = None

    _OPS = ("==", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise SchemaError(f"unsupported comparison operator {self.op!r}")
        if (self.right_column is None) == (self.constant is None):
            raise SchemaError("exactly one of right_column or constant must be given")

    def evaluate(self, rows: np.ndarray) -> np.ndarray:
        left = rows[:, self.left_column]
        right = rows[:, self.right_column] if self.right_column is not None else self.constant
        if self.op == "==":
            return left == right
        if self.op == "!=":
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        return left >= right


# ----------------------------------------------------------------------
# Binary hash join (Algorithm 3)
# ----------------------------------------------------------------------

def hash_join(
    device: Device,
    outer_rows: np.ndarray,
    outer_join_columns: Sequence[int],
    inner: HISA,
    output: Sequence[JoinOutput],
    *,
    comparisons: Sequence[ColumnComparison] = (),
    label: str = "join",
    charge: bool = True,
) -> np.ndarray:
    """Join an outer tuple array against an inner HISA.

    ``outer_join_columns[j]`` is the outer column matched against the inner's
    ``join_columns[j]``.  ``output`` lists the columns of the result tuple;
    ``comparisons`` (evaluated on the result layout) filter the output, which
    is how guards such as ``x != y`` in SG are applied inside the join kernel.
    """
    outer_rows = as_rows(outer_rows)
    outer_join_columns = [int(c) for c in outer_join_columns]
    if len(outer_join_columns) != inner.n_join:
        raise SchemaError(
            f"outer join columns {outer_join_columns} do not match inner key width {inner.n_join}"
        )
    out_arity = len(output)
    if outer_rows.shape[0] == 0 or inner.tuple_count == 0:
        if charge and outer_rows.shape[0]:
            device.charge(KernelCost(kernel=f"{label}.scan_outer", sequential_bytes=float(outer_rows.nbytes)))
        return np.empty((0, out_arity), dtype=np.int64)

    # 1. Stride over the outer relation's data array (coalesced reads).
    if charge:
        device.charge(
            KernelCost(
                kernel=f"{label}.scan_outer",
                sequential_bytes=float(outer_rows.nbytes),
                ops=float(outer_rows.shape[0]),
            )
        )

    # 2. Hash the outer join columns and probe the inner hash table.
    keys = outer_rows[:, outer_join_columns]
    starts, lengths = inner.lookup(keys, charge=charge)

    # 3. Scan the matched runs of the sorted index array.
    total_matches = int(lengths.sum())
    divergence = warp_divergence_factor(lengths, device.spec.warp_size)
    inner_row_bytes = max(1, inner.natural_arity) * TUPLE_ITEMSIZE
    if charge:
        device.charge(
            KernelCost(
                kernel=f"{label}.scan_inner",
                random_bytes=float(total_matches) * (inner_row_bytes + 8.0),
                ops=float(total_matches) * max(1, inner.natural_arity),
                divergence=divergence,
            )
        )
    if total_matches == 0:
        return np.empty((0, out_arity), dtype=np.int64)

    probe_idx, data_positions = inner.expand_matches(starts, lengths)
    inner_stored = inner.stored_rows()

    # 4. Materialise the output columns.
    columns = []
    for spec in output:
        if spec.source == OUTER:
            if spec.column >= outer_rows.shape[1]:
                raise SchemaError(f"outer column {spec.column} out of range")
            columns.append(outer_rows[probe_idx, spec.column])
        else:
            if spec.column >= inner.natural_arity:
                raise SchemaError(f"inner column {spec.column} out of range")
            stored_col = inner.column_order.index(spec.column)
            columns.append(inner_stored[data_positions, stored_col])
    result = np.column_stack(columns).astype(np.int64) if columns else np.empty((total_matches, 0), dtype=np.int64)

    # 5. Apply in-kernel comparison guards.
    if comparisons:
        mask = np.ones(result.shape[0], dtype=bool)
        for comparison in comparisons:
            mask &= comparison.evaluate(result)
        result = result[mask]

    if charge:
        device.charge(
            KernelCost(
                kernel=f"{label}.write_output",
                sequential_bytes=float(result.nbytes),
                ops=float(result.shape[0]) * max(1, out_arity),
                divergence=divergence,
            )
        )
    return result


# ----------------------------------------------------------------------
# Fused (non-materialized) n-way join — the Section 5.2 ablation baseline
# ----------------------------------------------------------------------

def fused_nway_join(
    device: Device,
    outer_rows: np.ndarray,
    stages: Sequence[tuple[Sequence[int], HISA, Sequence[JoinOutput]]],
    *,
    comparisons: Sequence[ColumnComparison] = (),
    label: str = "fused_join",
    charge: bool = True,
) -> np.ndarray:
    """Evaluate a chain of joins inside a single simulated kernel.

    ``stages`` is a list of ``(outer_join_columns, inner_hisa, output)``
    entries; the output of stage *i* becomes the outer relation of stage
    *i + 1*.  Results are identical to running :func:`hash_join` per stage,
    but the cost is charged as one kernel whose per-thread workload is the
    *entire* downstream match count of each original outer tuple — threads
    whose tuple finds no matches idle until the busiest warp lane finishes
    every nested loop (Figure 5).
    """
    outer_rows = as_rows(outer_rows)
    if not stages:
        raise SchemaError("fused_nway_join requires at least one stage")

    current = outer_rows
    # Track, for every original outer tuple, how much nested work it generates.
    origin = np.arange(outer_rows.shape[0], dtype=np.int64)
    per_origin_work = np.zeros(outer_rows.shape[0], dtype=np.int64)
    total_random_bytes = 0.0
    total_ops = 0.0

    for stage_index, (join_cols, inner, output) in enumerate(stages):
        if current.shape[0] == 0:
            current = np.empty((0, len(output)), dtype=np.int64)
            origin = np.empty(0, dtype=np.int64)
            break
        keys = current[:, [int(c) for c in join_cols]]
        starts, lengths = inner.lookup(keys, charge=False)
        np.add.at(per_origin_work, origin, lengths)
        inner_row_bytes = max(1, inner.natural_arity) * TUPLE_ITEMSIZE
        total_matches = int(lengths.sum())
        total_random_bytes += float(total_matches) * (inner_row_bytes + 8.0)
        total_random_bytes += float(current.shape[0]) * 16.0  # hash-table probes
        total_ops += float(total_matches) * max(1, inner.natural_arity) + float(current.shape[0]) * 4.0

        probe_idx, data_positions = inner.expand_matches(starts, lengths)
        inner_stored = inner.stored_rows()
        columns = []
        for spec in output:
            if spec.source == OUTER:
                columns.append(current[probe_idx, spec.column])
            else:
                stored_col = inner.column_order.index(spec.column)
                columns.append(inner_stored[data_positions, stored_col])
        current = (
            np.column_stack(columns).astype(np.int64)
            if columns
            else np.empty((probe_idx.size, 0), dtype=np.int64)
        )
        origin = origin[probe_idx]

    if comparisons and current.shape[0]:
        mask = np.ones(current.shape[0], dtype=bool)
        for comparison in comparisons:
            mask &= comparison.evaluate(current)
        current = current[mask]

    if charge:
        divergence = warp_divergence_factor(per_origin_work, device.spec.warp_size)
        # Idle lanes issue no memory requests, so the whole warp's effective
        # bandwidth drops with divergence too — this is exactly the thread
        # starvation of Figure 5 that temporary materialization removes.
        device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=float(outer_rows.nbytes) + float(current.nbytes),
                random_bytes=total_random_bytes * divergence,
                ops=max(total_ops, float(outer_rows.shape[0])),
                divergence=divergence,
                launches=1,
            )
        )
    return current


# ----------------------------------------------------------------------
# Remaining relational operators
# ----------------------------------------------------------------------

def select(
    device: Device,
    rows: np.ndarray,
    comparisons: Sequence[ColumnComparison],
    *,
    label: str = "select",
    charge: bool = True,
) -> np.ndarray:
    """Filter ``rows`` by conjunction of comparison predicates."""
    rows = as_rows(rows)
    if rows.shape[0] == 0 or not comparisons:
        return rows
    mask = np.ones(rows.shape[0], dtype=bool)
    for comparison in comparisons:
        mask &= comparison.evaluate(rows)
    result = rows[mask]
    if charge:
        device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=float(rows.nbytes) + float(result.nbytes),
                ops=float(rows.shape[0]) * len(comparisons),
            )
        )
    return result


def project(
    device: Device,
    rows: np.ndarray,
    columns: Sequence[int],
    *,
    label: str = "project",
    charge: bool = True,
) -> np.ndarray:
    """Project ``rows`` onto the given natural column indices (with reorder/repeat)."""
    rows = as_rows(rows)
    columns = [int(c) for c in columns]
    if rows.shape[0] == 0:
        return np.empty((0, len(columns)), dtype=np.int64)
    result = rows[:, columns]
    if charge:
        device.charge(
            KernelCost(
                kernel=label,
                sequential_bytes=float(rows.nbytes) + float(result.nbytes),
                ops=float(rows.shape[0]) * max(1, len(columns)),
            )
        )
    return np.ascontiguousarray(result)


def deduplicate(device: Device, rows: np.ndarray, *, label: str = "deduplicate", charge: bool = True) -> np.ndarray:
    """Sort + adjacent-compare + compact deduplication of a tuple array [R4]."""
    rows = as_rows(rows)
    if rows.shape[0] <= 1:
        return rows
    if charge:
        return device.kernels.unique_rows(rows, label=label)
    packed_order = np.lexsort(tuple(rows[:, c] for c in reversed(range(rows.shape[1]))))
    sorted_rows = rows[packed_order]
    keep = np.ones(sorted_rows.shape[0], dtype=bool)
    keep[1:] = np.any(sorted_rows[1:] != sorted_rows[:-1], axis=1)
    return sorted_rows[keep]


def difference(
    device: Device,
    rows: np.ndarray,
    existing: HISA,
    *,
    label: str = "difference",
    charge: bool = True,
) -> np.ndarray:
    """Return the tuples of ``rows`` not present in ``existing`` (populate-delta).

    ``existing`` must be indexed on all of its columns (the canonical ``full``
    index) so that membership can be answered by one range probe per tuple.
    """
    rows = as_rows(rows)
    if rows.shape[0] == 0:
        return rows
    if existing.tuple_count == 0:
        return rows
    present = existing.contains(rows, charge=charge)
    result = rows[~present]
    if charge:
        device.charge(
            KernelCost(
                kernel=f"{label}.compact",
                sequential_bytes=float(rows.nbytes) + float(result.nbytes),
                ops=float(rows.shape[0]),
            )
        )
    return result


def union(device: Device, parts: Sequence[np.ndarray], *, label: str = "union", charge: bool = True) -> np.ndarray:
    """Concatenate tuple arrays (no deduplication)."""
    arrays = [as_rows(part) for part in parts if part is not None and len(part)]
    if not arrays:
        return np.empty((0, 0), dtype=np.int64)
    arity = arrays[0].shape[1]
    for array in arrays:
        if array.shape[1] != arity:
            raise SchemaError("cannot union tuple arrays with different arity")
    if charge:
        return device.kernels.concatenate_rows(arrays, label=label)
    return np.concatenate(arrays, axis=0)
