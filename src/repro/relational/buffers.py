"""Merge-buffer management policies (Section 5.3, Table 1).

Merging ``delta`` into ``full`` is an out-of-place path merge: it needs a
*destination* buffer as large as both relations combined, every iteration.
The paper identifies the allocation and first-touch of that buffer as a major
cost (the merge phase is up to 45 % of runtime) and proposes *Eager Buffer
Management* (EBM):

* keep the buffer that held the previous ``full`` version as a spare instead
  of freeing it right after the merge;
* when the spare is large enough for the next merge, reuse it — no allocation
  at all;
* when it is not, allocate ``full + k x delta`` bytes (``k`` tunable against
  VRAM) so that several future iterations fit without further allocations.

Long "tail" phases — many iterations each adding few tuples — benefit the
most, which is exactly the shape of Table 1.

Two policies are provided:

* :class:`SimpleBufferManager` — allocate the exact size every iteration and
  free the retired buffer immediately (EBM disabled / GPUJoin behaviour).
* :class:`EagerBufferManager` — the EBM policy with growth factor ``k``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..device.device import Device
from ..device.memory import Buffer


@dataclass
class BufferManagerStats:
    """Counters describing how a buffer manager behaved during a run."""

    acquisitions: int = 0
    allocations: int = 0
    reuses: int = 0
    retirements: int = 0
    bytes_requested: int = 0
    bytes_allocated: int = 0
    #: merges absorbed by reserved headroom: no buffer was acquired at all.
    in_place_appends: int = 0
    bytes_appended_in_place: int = 0

    @property
    def reuse_fraction(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.reuses / self.acquisitions


class MergeBufferManager(ABC):
    """Supplies destination buffers for full/delta merges and recycles old ones."""

    def __init__(self, device: Device, label: str = "merge_buffer") -> None:
        self.device = device
        self.label = label
        self.stats = BufferManagerStats()

    @abstractmethod
    def acquire(self, required_bytes: int, delta_bytes: int) -> Buffer:
        """Return a destination buffer with capacity >= ``required_bytes``."""

    def note_in_place(self, delta_bytes: int) -> None:
        """Record a merge that fit the delta into the full buffer's headroom.

        With eager over-allocation most tail iterations never reach
        :meth:`acquire` at all — the delta is appended in place.  Tracking the
        event here keeps the EBM statistics (Table 1) honest about how much
        allocator traffic the policy eliminated.
        """
        self.stats.in_place_appends += 1
        self.stats.bytes_appended_in_place += max(0, int(delta_bytes))

    @abstractmethod
    def retire(self, buffer: Buffer) -> None:
        """Hand back a buffer (the old ``full`` storage) that is no longer live."""

    @abstractmethod
    def release(self) -> None:
        """Free every buffer still held by the manager (end of the run)."""


class SimpleBufferManager(MergeBufferManager):
    """Exact-size allocation every merge, immediate free of retired buffers."""

    def acquire(self, required_bytes: int, delta_bytes: int) -> Buffer:
        required_bytes = int(required_bytes)
        self.stats.acquisitions += 1
        self.stats.bytes_requested += required_bytes
        buffer = self.device.allocate(required_bytes, label=self.label)
        self.stats.allocations += 1
        self.stats.bytes_allocated += required_bytes
        return buffer

    def retire(self, buffer: Buffer) -> None:
        self.stats.retirements += 1
        self.device.free(buffer)

    def release(self) -> None:  # nothing is ever held
        return None


class EagerBufferManager(MergeBufferManager):
    """Eager Buffer Management: keep retired buffers as spares and over-allocate.

    Parameters
    ----------
    growth_factor:
        The paper's ``k``: a fresh destination buffer is sized
        ``full + k x delta`` (i.e. ``required + (k - 1) x delta``) so that the
        next several deltas fit in the spare without a new allocation.
    """

    def __init__(self, device: Device, growth_factor: float = 8.0, label: str = "merge_buffer") -> None:
        if growth_factor < 1.0:
            raise ValueError("growth_factor must be >= 1.0")
        super().__init__(device, label)
        self.growth_factor = float(growth_factor)
        self._spare: Buffer | None = None

    @property
    def spare_bytes(self) -> int:
        return self._spare.nbytes if self._spare is not None else 0

    def acquire(self, required_bytes: int, delta_bytes: int) -> Buffer:
        required_bytes = int(required_bytes)
        delta_bytes = max(0, int(delta_bytes))
        self.stats.acquisitions += 1
        self.stats.bytes_requested += required_bytes

        if self._spare is not None and self._spare.nbytes >= required_bytes:
            buffer = self._spare
            self._spare = None
            self.stats.reuses += 1
            return buffer

        target = required_bytes + int(max(0.0, self.growth_factor - 1.0) * delta_bytes)
        if not self.device.pool.would_fit(target):
            # Fall back to the exact size rather than provoking an avoidable OOM.
            target = required_bytes
        buffer = self.device.allocate(target, label=self.label)
        self.stats.allocations += 1
        self.stats.bytes_allocated += target
        return buffer

    def retire(self, buffer: Buffer) -> None:
        self.stats.retirements += 1
        if self._spare is None:
            self._spare = buffer
            return
        # Keep the larger of the two buffers as the spare; free the other.
        if buffer.nbytes > self._spare.nbytes:
            self.device.free(self._spare)
            self._spare = buffer
        else:
            self.device.free(buffer)

    def release(self) -> None:
        if self._spare is not None:
            self.device.free(self._spare)
            self._spare = None


def make_buffer_manager(
    device: Device,
    *,
    eager: bool,
    growth_factor: float = 8.0,
    label: str = "merge_buffer",
) -> MergeBufferManager:
    """Factory used by the engines: the EBM on/off switch of Table 1."""
    if eager:
        return EagerBufferManager(device, growth_factor=growth_factor, label=label)
    return SimpleBufferManager(device, label=label)
