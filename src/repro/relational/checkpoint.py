"""Iteration-boundary checkpointing of semi-naïve fixpoint state.

FlowLog's incrementality argument (PAPERS.md) is also a fault-tolerance
argument: the pair *(full, delta)* per relation at an iteration boundary is
the complete state of a semi-naïve fixpoint — everything else (sorted
indexes, hash tables, cached keys) is deterministically rebuildable from it.
A checkpoint therefore snapshots exactly those two column sets per relation
per shard, and a restore re-indexes them through the ordinary
:meth:`Relation.initialize` path.

Two stores are provided:

* :class:`InMemoryCheckpointStore` — host-RAM snapshots (the default; a real
  deployment would pin these in host memory next to the driver), and
* :class:`DiskCheckpointStore` — ``.npz``-serialized HISA column buffers plus
  a JSON manifest, surviving process restarts.

Both keep a bounded history (newest last) so a long fixpoint cannot
accumulate unbounded snapshot memory.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from ..errors import CheckpointError

__all__ = [
    "CheckpointStore",
    "DiskCheckpointStore",
    "EvaluationCheckpoint",
    "InMemoryCheckpointStore",
    "PartitionState",
    "RelationState",
]


@dataclass
class PartitionState:
    """One shard's (full, delta) host snapshot of a relation.

    ``iteration`` is the shard relation's own end-of-iteration counter at
    snapshot time (it also bounds the relation's stats history on restore).
    """

    full: np.ndarray
    delta: np.ndarray
    iteration: int = 0

    def __post_init__(self) -> None:
        self.full = np.ascontiguousarray(np.asarray(self.full, dtype=np.int64))
        self.delta = np.ascontiguousarray(np.asarray(self.delta, dtype=np.int64))

    @property
    def nbytes(self) -> int:
        return int(self.full.nbytes + self.delta.nbytes)


@dataclass
class RelationState:
    """Snapshot of one relation across every shard (one partition each)."""

    name: str
    arity: int
    partitions: list[PartitionState]

    @property
    def nbytes(self) -> int:
        return sum(partition.nbytes for partition in self.partitions)


@dataclass
class EvaluationCheckpoint:
    """A resumable fixpoint state at one iteration boundary.

    ``iteration`` is the number of completed iterations of stratum
    ``stratum_index`` (0 = the state right after stratum initialization).
    ``program_source`` carries the *interned* program text so a checkpoint
    loaded from disk can be resumed without re-supplying the program; the
    engine that resumes must own the symbol table that interned it (or the
    program must be symbol-free).
    """

    program_name: str
    stratum_index: int
    iteration: int
    num_shards: int
    relations: dict[str, RelationState]
    program_source: str = ""
    checkpoint_id: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Host bytes held by the snapshot's column payloads."""
        return sum(state.nbytes for state in self.relations.values())

    def relation_rows(self, name: str) -> np.ndarray:
        """All full rows of ``name`` across shards (debugging/inspection)."""
        state = self.relations[name]
        parts = [p.full for p in state.partitions if p.full.shape[0]]
        if not parts:
            return np.empty((0, state.arity), dtype=np.int64)
        return np.concatenate(parts, axis=0)


class CheckpointStore:
    """Interface shared by the in-memory and on-disk checkpoint backends."""

    def save(self, checkpoint: EvaluationCheckpoint) -> str:
        raise NotImplementedError

    def load(self, checkpoint_id: str) -> EvaluationCheckpoint:
        raise NotImplementedError

    def latest(self) -> EvaluationCheckpoint | None:
        raise NotImplementedError

    def list_ids(self) -> list[str]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class InMemoryCheckpointStore(CheckpointStore):
    """Keeps the ``keep`` newest checkpoints in host memory."""

    def __init__(self, *, keep: int = 2) -> None:
        if keep < 1:
            raise CheckpointError("an in-memory store must keep at least one checkpoint")
        self.keep = int(keep)
        self._checkpoints: list[EvaluationCheckpoint] = []
        self._counter = 0

    def save(self, checkpoint: EvaluationCheckpoint) -> str:
        self._counter += 1
        checkpoint.checkpoint_id = (
            checkpoint.checkpoint_id
            or f"ckpt-{self._counter:06d}-s{checkpoint.stratum_index}-i{checkpoint.iteration}"
        )
        self._checkpoints.append(checkpoint)
        del self._checkpoints[: -self.keep]
        return checkpoint.checkpoint_id

    def load(self, checkpoint_id: str) -> EvaluationCheckpoint:
        for checkpoint in reversed(self._checkpoints):
            if checkpoint.checkpoint_id == checkpoint_id:
                return checkpoint
        raise CheckpointError(f"unknown checkpoint {checkpoint_id!r}")

    def latest(self) -> EvaluationCheckpoint | None:
        return self._checkpoints[-1] if self._checkpoints else None

    def list_ids(self) -> list[str]:
        return [checkpoint.checkpoint_id for checkpoint in self._checkpoints]

    def clear(self) -> None:
        self._checkpoints.clear()


class DiskCheckpointStore(CheckpointStore):
    """Serializes checkpoints to ``<directory>/<id>.npz`` + ``<id>.json``.

    The ``.npz`` holds every partition's full/delta column buffer under keys
    ``<relation>/<shard>/full`` and ``<relation>/<shard>/delta`` (HISA stores
    int64 columns; ``np.savez_compressed`` round-trips them exactly).  The
    JSON manifest carries the structural metadata and the program source.
    """

    def __init__(self, directory: str, *, keep: int = 2) -> None:
        if keep < 1:
            raise CheckpointError("a disk store must keep at least one checkpoint")
        self.directory = str(directory)
        self.keep = int(keep)
        os.makedirs(self.directory, exist_ok=True)
        self._counter = len(self.list_ids())

    # ------------------------------------------------------------------
    def _paths(self, checkpoint_id: str) -> tuple[str, str]:
        base = os.path.join(self.directory, checkpoint_id)
        return base + ".json", base + ".npz"

    def save(self, checkpoint: EvaluationCheckpoint) -> str:
        self._counter += 1
        checkpoint.checkpoint_id = (
            checkpoint.checkpoint_id
            or f"ckpt-{self._counter:06d}-s{checkpoint.stratum_index}-i{checkpoint.iteration}"
        )
        manifest_path, payload_path = self._paths(checkpoint.checkpoint_id)
        arrays: dict[str, np.ndarray] = {}
        manifest_relations = {}
        for name, state in checkpoint.relations.items():
            manifest_relations[name] = {
                "arity": state.arity,
                "shards": len(state.partitions),
                "iterations": [partition.iteration for partition in state.partitions],
            }
            for shard, partition in enumerate(state.partitions):
                arrays[f"{name}/{shard}/full"] = partition.full
                arrays[f"{name}/{shard}/delta"] = partition.delta
        # Crash-atomic save order: payload first, then the manifest via
        # rename.  A checkpoint only becomes visible (``list_ids`` keys off
        # manifests) once both files are durable, so a crash mid-save leaves
        # at worst an orphan ``.npz``/``.tmp`` that listing ignores — the
        # previous checkpoint stays loadable.  This is the discipline the
        # serving engine's recovery path relies on.
        payload_tmp = payload_path + ".tmp"
        with open(payload_tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(payload_tmp, payload_path)
        manifest = {
            "program_name": checkpoint.program_name,
            "stratum_index": checkpoint.stratum_index,
            "iteration": checkpoint.iteration,
            "num_shards": checkpoint.num_shards,
            "relations": manifest_relations,
            "program_source": checkpoint.program_source,
            "metadata": checkpoint.metadata,
        }
        manifest_tmp = manifest_path + ".tmp"
        with open(manifest_tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(manifest_tmp, manifest_path)
        self._prune()
        return checkpoint.checkpoint_id

    def load(self, checkpoint_id: str) -> EvaluationCheckpoint:
        manifest_path, payload_path = self._paths(checkpoint_id)
        if not os.path.exists(manifest_path) or not os.path.exists(payload_path):
            raise CheckpointError(f"unknown checkpoint {checkpoint_id!r} in {self.directory!r}")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        relations: dict[str, RelationState] = {}
        with np.load(payload_path) as payload:
            for name, meta in manifest["relations"].items():
                arity = int(meta["arity"])
                iterations = meta.get("iterations") or [0] * int(meta["shards"])
                partitions = []
                for shard in range(int(meta["shards"])):
                    full = payload[f"{name}/{shard}/full"].reshape(-1, arity)
                    delta = payload[f"{name}/{shard}/delta"].reshape(-1, arity)
                    partitions.append(
                        PartitionState(full=full, delta=delta, iteration=int(iterations[shard]))
                    )
                relations[name] = RelationState(name=name, arity=arity, partitions=partitions)
        return EvaluationCheckpoint(
            program_name=manifest["program_name"],
            stratum_index=int(manifest["stratum_index"]),
            iteration=int(manifest["iteration"]),
            num_shards=int(manifest["num_shards"]),
            relations=relations,
            program_source=manifest.get("program_source", ""),
            checkpoint_id=checkpoint_id,
            metadata=manifest.get("metadata", {}),
        )

    def latest(self) -> EvaluationCheckpoint | None:
        ids = self.list_ids()
        return self.load(ids[-1]) if ids else None

    def list_ids(self) -> list[str]:
        if not os.path.isdir(self.directory):
            return []
        ids = [
            entry[: -len(".json")]
            for entry in os.listdir(self.directory)
            if entry.endswith(".json")
            # An orphan manifest (payload lost or never renamed into place)
            # is not a loadable checkpoint; listing it would make ``latest``
            # fail on a file a crash left behind.
            and os.path.exists(os.path.join(self.directory, entry[: -len(".json")] + ".npz"))
        ]
        return sorted(ids)

    def clear(self) -> None:
        for checkpoint_id in self.list_ids():
            for path in self._paths(checkpoint_id):
                if os.path.exists(path):
                    os.remove(path)

    def _prune(self) -> None:
        ids = self.list_ids()
        for stale in ids[: -self.keep]:
            for path in self._paths(stale):
                if os.path.exists(path):
                    os.remove(path)
