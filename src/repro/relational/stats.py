"""Lightweight relation statistics for the cost-based planner.

The planner needs two numbers per relation to cost a join order: how many
rows the relation (or its per-iteration delta) holds, and how many distinct
values each column holds.  Both are *host-side metadata*, never part of the
charged datapath — like :mod:`repro.relational.checkpoint`, this module works
on host arrays and plain Python numbers and charges no kernels.

Three sources feed a :class:`StatsCatalog`:

* **Fact seeding** — the engine measures the staged host fact columns once
  before upload (`np.unique`, exact) and calls :meth:`StatsCatalog.seed_facts`.
  Columns beyond :data:`EXACT_DISTINCT_LIMIT` rows are estimated with a
  :class:`KMVSketch` instead of sorted exactly.
* **Merge observation** — every :class:`~repro.relational.hisa.HISA` index
  already maintains its distinct-join-key run structure incrementally, so the
  per-merge observation is free: the relation wires an observer into each
  index and :meth:`StatsCatalog.observe_merge` receives the delta row count,
  the delta's distinct keys, and the post-merge totals.  Single-column
  indexes refresh per-column distincts; multi-column indexes refresh joint
  distincts.  The last merge's delta row count is what delta-scan rule
  versions plan against.
* **Fallbacks** — relations never seeded (IDB predicates before their first
  iteration) estimate rows as the largest seeded relation and distincts as
  the row count, i.e. maximally selective joins are never assumed without
  evidence.

``snapshot()`` freezes the catalog into an immutable view so a re-planning
pass inside the fixpoint costs against one consistent iteration, not a
moving target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Columns with at most this many rows are measured exactly with np.unique;
#: larger columns fall back to the KMV sketch.
EXACT_DISTINCT_LIMIT = 2_000_000

#: Default sketch size: (k-1)/h_k estimators are within ~1/sqrt(k) ≈ 6%.
KMV_DEFAULT_K = 256

#: Row estimate for a relation nothing has been observed about, when the
#: catalog itself is empty (otherwise the largest seeded relation is used).
DEFAULT_ROW_ESTIMATE = 1000.0

_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_MIX1 = 0xBF58476D1CE4E5B9
_SPLITMIX_MIX2 = 0x94D049BB133111EB
_U64 = np.uint64


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser: uniform uint64 hashes for the sketch."""
    with np.errstate(over="ignore"):
        x = np.asarray(values).astype(np.int64, copy=False).view(_U64).copy()
        x += _U64(_SPLITMIX_GAMMA)
        x ^= x >> _U64(30)
        x *= _U64(_SPLITMIX_MIX1)
        x ^= x >> _U64(27)
        x *= _U64(_SPLITMIX_MIX2)
        x ^= x >> _U64(31)
    return x


class KMVSketch:
    """k-minimum-values distinct counter over 64-bit keys.

    Keeps the ``k`` smallest splitmix64 hashes seen; with ``h_k`` the k-th
    smallest hash as a fraction of the hash space, the distinct count is
    estimated as ``(k - 1) / h_k``.  Below ``k`` distinct hashes the sketch
    is exact.  Updates are mergeable and idempotent on duplicates.
    """

    def __init__(self, k: int = KMV_DEFAULT_K) -> None:
        if k < 2:
            raise ValueError("KMV sketch needs k >= 2")
        self.k = k
        self._minima = np.empty(0, dtype=_U64)

    def update(self, values) -> "KMVSketch":
        hashed = _splitmix64(np.asarray(values, dtype=np.int64))
        self._minima = np.union1d(self._minima, hashed)[: self.k]
        return self

    def merge(self, other: "KMVSketch") -> "KMVSketch":
        self._minima = np.union1d(self._minima, other._minima)[: self.k]
        return self

    def estimate(self) -> float:
        n = int(self._minima.size)
        if n < self.k:
            return float(n)
        kth = int(self._minima[self.k - 1]) + 1
        return float(self.k - 1) * float(2**64) / float(kth)


def distinct_count(column, *, exact_limit: int = EXACT_DISTINCT_LIMIT) -> tuple[float, bool]:
    """(estimate, is_exact) distinct count of one host column."""
    array = np.asarray(column)
    if array.size <= exact_limit:
        return float(np.unique(array).size), True
    return KMVSketch().update(array).estimate(), False


@dataclass
class RelationStats:
    """Mutable per-relation statistics accumulated by a :class:`StatsCatalog`."""

    name: str
    arity: int
    rows: float = 0.0
    delta_rows: float = 0.0
    #: Per-column distinct estimates (column index -> estimate).
    column_distinct: dict = field(default_factory=dict)
    #: Joint distincts per sorted column tuple, from multi-column indexes.
    joint_distinct: dict = field(default_factory=dict)
    #: Max join-key multiplicity per sorted column tuple (the longest HISA
    #: run, or the hottest value at seed time) — the skew signal that lets
    #: the planner bound a binary join's worst case.
    key_multiplicity: dict = field(default_factory=dict)
    #: True when rows/distincts come from exact measurement, not fallbacks.
    seeded: bool = False
    exact: bool = False


class StatsCatalog:
    """Row counts and distinct-value estimates for every relation of a run."""

    def __init__(self) -> None:
        self._relations: dict[str, RelationStats] = {}
        self.merges_observed = 0

    # -- feeding -------------------------------------------------------
    def ensure(self, name: str, arity: int) -> RelationStats:
        stats = self._relations.get(name)
        if stats is None:
            stats = RelationStats(name=name, arity=arity)
            self._relations[name] = stats
        return stats

    def seed_facts(self, name: str, columns, *, exact_limit: int = EXACT_DISTINCT_LIMIT) -> RelationStats:
        """Measure staged host fact columns (one array per column) exactly."""
        columns = [np.asarray(column) for column in columns]
        stats = self.ensure(name, len(columns))
        rows = float(columns[0].size) if columns else 0.0
        stats.rows = rows
        stats.delta_rows = rows
        stats.seeded = True
        stats.exact = True
        for position, column in enumerate(columns):
            if column.size <= exact_limit:
                _, counts = np.unique(column, return_counts=True)
                stats.column_distinct[position] = float(counts.size)
                stats.key_multiplicity[(position,)] = float(counts.max()) if counts.size else 0.0
            else:
                estimate = KMVSketch().update(column).estimate()
                stats.column_distinct[position] = estimate
                stats.key_multiplicity[(position,)] = rows / max(estimate, 1.0)
                stats.exact = False
        return stats

    def observe_merge(
        self,
        name: str,
        arity: int,
        columns: tuple[int, ...],
        *,
        delta_rows: int,
        delta_distinct: int,
        total_rows: int,
        total_distinct: int,
        max_multiplicity: int | None = None,
    ) -> None:
        """Record one HISA index merge (free: the run structure is maintained anyway).

        ``columns`` is the index's join-column set in natural schema order;
        ``total_distinct`` is its post-merge distinct-key count and
        ``max_multiplicity`` its longest key run.  Every index of a relation
        merges the same delta, so ``delta_rows`` overwrites rather than
        accumulates.
        """
        stats = self.ensure(name, arity)
        self.merges_observed += 1
        stats.rows = float(total_rows)
        stats.delta_rows = float(delta_rows)
        stats.seeded = True
        key = tuple(sorted(columns))
        if len(key) == 1:
            stats.column_distinct[key[0]] = float(total_distinct)
        else:
            stats.joint_distinct[key] = float(total_distinct)
        if max_multiplicity is not None:
            stats.key_multiplicity[key] = float(max_multiplicity)
        # A full-arity index counts distinct rows; deduped storage means the
        # row count *is* the distinct count, which the assignment above or
        # below already reflects — nothing extra to record.
        del delta_distinct  # reserved for delta-aware sketches

    # -- queries (the planner's protocol) ------------------------------
    def _default_rows(self) -> float:
        seeded = [s.rows for s in self._relations.values() if s.seeded]
        return max(seeded) if seeded else DEFAULT_ROW_ESTIMATE

    def rows(self, name: str) -> float:
        stats = self._relations.get(name)
        if stats is None or not stats.seeded:
            return self._default_rows()
        return max(stats.rows, 1.0)

    def delta_rows(self, name: str) -> float:
        stats = self._relations.get(name)
        if stats is None or not stats.seeded:
            return self._default_rows()
        return max(stats.delta_rows, 1.0)

    def distinct(self, name: str, column: int) -> float:
        rows = self.rows(name)
        stats = self._relations.get(name)
        if stats is None:
            return rows
        estimate = stats.column_distinct.get(column)
        if estimate is None:
            return rows
        return max(1.0, min(float(estimate), rows))

    def max_multiplicity(self, name: str, columns) -> float:
        """Worst-case rows a single probe key can match on these columns.

        Prefers the measured longest run of a matching index; a superset
        key can only shorten runs, so the tightest single-column bound also
        bounds any key containing that column.  With no measurement the
        uniformity assumption ``rows / Π distinct`` applies.
        """
        rows = self.rows(name)
        key = tuple(sorted(int(column) for column in columns))
        stats = self._relations.get(name)
        if stats is not None:
            if len(key) == stats.arity:
                return 1.0  # deduplicated storage: the full key is unique
            direct = stats.key_multiplicity.get(key)
            if direct is not None:
                return max(1.0, min(float(direct), rows))
            singles = [
                stats.key_multiplicity.get((column,))
                for column in key
                if (column,) in stats.key_multiplicity
            ]
            if singles:
                return max(1.0, min(min(float(s) for s in singles), rows))
        joint = 1.0
        for column in key:
            joint *= self.distinct(name, column)
        joint = max(1.0, min(joint, rows))
        return max(1.0, rows / joint)

    def snapshot(self) -> "StatsSnapshot":
        return StatsSnapshot(
            rows={name: self.rows(name) for name in self._relations},
            delta_rows={name: self.delta_rows(name) for name in self._relations},
            column_distinct={
                (name, column): self.distinct(name, column)
                for name, stats in self._relations.items()
                for column in stats.column_distinct
            },
            key_multiplicity={
                (name, key): self.max_multiplicity(name, key)
                for name, stats in self._relations.items()
                for key in stats.key_multiplicity
            },
            default_rows=self._default_rows(),
            arity={name: stats.arity for name, stats in self._relations.items()},
        )

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))


class StatsSnapshot:
    """Immutable view of a catalog; same query protocol as the live catalog."""

    def __init__(self, rows, delta_rows, column_distinct, key_multiplicity, default_rows, arity=None):
        self.rows_by_name = dict(rows)
        self.delta_rows_by_name = dict(delta_rows)
        self.column_distinct_by_key = dict(column_distinct)
        self.key_multiplicity_by_key = dict(key_multiplicity)
        self.default_row_estimate = float(default_rows)
        self.arity_by_name = dict(arity or {})

    def rows(self, name: str) -> float:
        return self.rows_by_name.get(name, self.default_row_estimate)

    def delta_rows(self, name: str) -> float:
        return self.delta_rows_by_name.get(name, self.default_row_estimate)

    def distinct(self, name: str, column: int) -> float:
        rows = self.rows(name)
        estimate = self.column_distinct_by_key.get((name, column))
        if estimate is None:
            return rows
        return max(1.0, min(float(estimate), rows))

    def max_multiplicity(self, name: str, columns) -> float:
        rows = self.rows(name)
        key = tuple(sorted(int(column) for column in columns))
        if self.arity_by_name.get(name) == len(key):
            return 1.0  # deduplicated storage: the full key is unique
        direct = self.key_multiplicity_by_key.get((name, key))
        if direct is not None:
            return max(1.0, min(float(direct), rows))
        singles = [
            self.key_multiplicity_by_key.get((name, (column,)))
            for column in key
            if (name, (column,)) in self.key_multiplicity_by_key
        ]
        if singles:
            return max(1.0, min(min(float(s) for s in singles), rows))
        joint = 1.0
        for column in key:
            joint *= self.distinct(name, column)
        joint = max(1.0, min(joint, rows))
        return max(1.0, rows / joint)


class UniformStats:
    """Stats stand-in when no catalog exists: every relation looks alike.

    Keeps the cost planner deterministic (and exercisable in unit tests)
    without measured statistics; all relations get ``rows`` rows and
    distinct-per-column equal to the row count.
    """

    def __init__(self, rows: float = DEFAULT_ROW_ESTIMATE) -> None:
        self._rows = float(rows)

    def rows(self, name: str) -> float:
        return self._rows

    def delta_rows(self, name: str) -> float:
        return self._rows

    def distinct(self, name: str, column: int) -> float:
        return self._rows

    def max_multiplicity(self, name: str, columns) -> float:
        return 1.0
