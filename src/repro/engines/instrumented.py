"""Instrumented host-side semi-naïve evaluator.

The comparison engines (Soufflé-like, GPUJoin-like, cuDF-like) need two
things: the *exact* derived relations (identical across engines — the paper
verifies "all relation sizes match that of Soufflé's") and a per-iteration
*workload trace* (how many tuples were scanned, probed, matched, deduplicated
and merged) that each engine converts into simulated time and memory using its
own cost model.

This module runs the program once on the host with plain NumPy (sorted-array
indexes and binary search), producing both.  It reuses the same program
analysis and rule plans as GPUlog, so the semi-naïve iteration structure — the
quantity the cost models depend on — is identical to the GPU engine's.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Mapping, Union

import numpy as np

from ..datalog.analysis import analyze_program
from ..datalog.ast import Program
from ..datalog.planner import DELTA, ProgramPlan, RuleVersion, plan_program
from ..device.kernels import row_search_bounds
from ..errors import EvaluationError
from .base import BaselineEngine

TUPLE_BYTES = 8


@dataclass
class IterationTrace:
    """Aggregate work counters for one semi-naïve iteration (iteration 0 = init)."""

    iteration: int
    outer_tuples: int = 0
    outer_bytes: int = 0
    probes: int = 0
    match_tuples: int = 0
    match_bytes: int = 0
    new_tuples: int = 0
    new_bytes: int = 0
    delta_tuples: int = 0
    delta_bytes: int = 0
    full_tuples_before: int = 0
    full_bytes_before: int = 0
    full_tuples_after: int = 0
    full_bytes_after: int = 0
    largest_join_output_bytes: int = 0


@dataclass
class WorkloadTrace:
    """The full per-iteration trace of one program evaluation."""

    iterations: list[IterationTrace] = field(default_factory=list)
    relation_counts: dict[str, int] = field(default_factory=dict)
    relation_arities: dict[str, int] = field(default_factory=dict)
    edb_relations: set[str] = field(default_factory=set)
    relations: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def iteration_count(self) -> int:
        """Number of fixpoint iterations (the initialisation pass is excluded)."""
        return sum(1 for trace in self.iterations if trace.iteration > 0)

    @property
    def total_match_tuples(self) -> int:
        return sum(trace.match_tuples for trace in self.iterations)

    @property
    def total_new_tuples(self) -> int:
        return sum(trace.new_tuples for trace in self.iterations)

    @property
    def total_delta_tuples(self) -> int:
        return sum(trace.delta_tuples for trace in self.iterations)

    @property
    def final_full_bytes(self) -> int:
        if not self.iterations:
            return 0
        return self.iterations[-1].full_bytes_after

    @property
    def edb_bytes(self) -> int:
        return sum(
            self.relation_counts.get(name, 0) * self.relation_arities.get(name, 1) * TUPLE_BYTES
            for name in self.edb_relations
        )

    def idb_counts(self) -> dict[str, int]:
        return {
            name: count
            for name, count in self.relation_counts.items()
            if name not in self.edb_relations
        }


class _HostRelation:
    """Host-side relation: deduplicated full rows, delta rows, sorted indexes."""

    def __init__(self, name: str, arity: int) -> None:
        self.name = name
        self.arity = arity
        self.full = np.empty((0, arity), dtype=np.int64)
        self._full_sorted = np.empty((0, arity), dtype=np.int64)
        self.delta = np.empty((0, arity), dtype=np.int64)
        self.new_parts: list[np.ndarray] = []
        self._index_cache: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def initialize(self, rows: np.ndarray) -> None:
        rows = _dedupe(rows, self.arity)
        self.full = rows
        self._full_sorted = _sort_rows(rows)
        self.delta = rows
        self._index_cache.clear()

    def add_new(self, rows: np.ndarray) -> None:
        if rows.shape[0]:
            self.new_parts.append(rows)

    def end_iteration(self) -> int:
        if self.new_parts:
            new_rows = _dedupe(np.concatenate(self.new_parts, axis=0), self.arity)
        else:
            new_rows = np.empty((0, self.arity), dtype=np.int64)
        self.new_parts.clear()
        if new_rows.shape[0] and self.full.shape[0]:
            present = _membership(self._full_sorted, new_rows)
            delta = new_rows[~present]
        else:
            delta = new_rows
        self.delta = delta
        if delta.shape[0]:
            self.full = np.concatenate([self.full, delta], axis=0)
            self._full_sorted = _sort_rows(self.full)
            self._index_cache.clear()
        return int(delta.shape[0])

    def clear_delta(self) -> None:
        self.delta = np.empty((0, self.arity), dtype=np.int64)

    def index(self, join_columns: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
        """Return (sorted join-key rows, permutation) for range queries on full."""
        cached = self._index_cache.get(join_columns)
        if cached is not None:
            return cached
        keys = self.full[:, list(join_columns)] if self.full.shape[0] else np.empty((0, len(join_columns)), dtype=np.int64)
        if keys.shape[0]:
            order = np.lexsort(tuple(keys[:, c] for c in reversed(range(keys.shape[1])))).astype(np.int64)
        else:
            order = np.empty(0, dtype=np.int64)
        sorted_keys = keys[order] if keys.shape[0] else keys
        self._index_cache[join_columns] = (sorted_keys, order)
        return sorted_keys, order


class InstrumentedEvaluator:
    """Evaluates a program on the host and records the workload trace."""

    def __init__(self, program: Union[Program, str], facts: Mapping[str, np.ndarray], *, max_iterations: int = 1_000_000) -> None:
        self.program = BaselineEngine.coerce_program(program)
        self.analysis = analyze_program(self.program)
        self.plan: ProgramPlan = plan_program(self.analysis)
        self.max_iterations = int(max_iterations)

        arities = dict(self.program.relation_arities())
        for name, rows in facts.items():
            rows = np.asarray(rows, dtype=np.int64)
            if rows.ndim != 2:
                raise EvaluationError(f"facts for {name!r} must be a 2-D array")
            arities.setdefault(name, rows.shape[1])
        self.relations: dict[str, _HostRelation] = {
            name: _HostRelation(name, arity) for name, arity in arities.items()
        }
        self.facts = {name: np.asarray(rows, dtype=np.int64) for name, rows in facts.items()}

    # ------------------------------------------------------------------
    def evaluate(self) -> WorkloadTrace:
        trace = WorkloadTrace()
        trace.relation_arities = {name: rel.arity for name, rel in self.relations.items()}
        trace.edb_relations = set(self.analysis.edb_relations)

        # Load EDB facts (and stage IDB facts).
        idb_facts: dict[str, np.ndarray] = {}
        for name, rows in self.facts.items():
            if name in self.analysis.idb_relations:
                idb_facts[name] = rows
            else:
                self.relations[name].initialize(rows)

        init_trace = IterationTrace(iteration=0)
        iteration_counter = 0
        for stratum in self.analysis.strata:
            non_recursive, recursive = self.plan.versions_for_stratum(stratum.index)
            idb_in_stratum = sorted(stratum.relations & set(self.analysis.idb_relations))

            initial_rows: dict[str, list[np.ndarray]] = defaultdict(list)
            for name in idb_in_stratum:
                if name in idb_facts:
                    initial_rows[name].append(idb_facts.pop(name))
            for version in non_recursive:
                rows = self._execute_version(version, init_trace)
                if rows.shape[0]:
                    initial_rows[version.head_relation].append(rows)
            for name in idb_in_stratum:
                relation = self.relations[name]
                parts = initial_rows.get(name, [])
                rows = np.concatenate(parts, axis=0) if parts else np.empty((0, relation.arity), dtype=np.int64)
                relation.initialize(rows)
                init_trace.delta_tuples += relation.delta.shape[0]
                init_trace.delta_bytes += int(relation.delta.nbytes)

            if recursive:
                iteration_counter = self._run_fixpoint(idb_in_stratum, recursive, trace, iteration_counter)
            else:
                for name in idb_in_stratum:
                    self.relations[name].clear_delta()

        self._finalise_trace(trace, init_trace)
        return trace

    # ------------------------------------------------------------------
    def _run_fixpoint(
        self,
        idb_in_stratum: list[str],
        recursive: list[RuleVersion],
        trace: WorkloadTrace,
        iteration_counter: int,
    ) -> int:
        local_iteration = 0
        while True:
            local_iteration += 1
            iteration_counter += 1
            if local_iteration > self.max_iterations:
                raise EvaluationError("fixpoint did not converge within the iteration limit")
            item = IterationTrace(iteration=iteration_counter)
            item.full_tuples_before = sum(self.relations[n].full.shape[0] for n in idb_in_stratum)
            item.full_bytes_before = sum(int(self.relations[n].full.nbytes) for n in idb_in_stratum)

            for version in recursive:
                delta_relation = self.relations[version.initial.relation]
                if delta_relation.delta.shape[0] == 0:
                    continue
                rows = self._execute_version(version, item)
                if rows.shape[0]:
                    item.new_tuples += int(rows.shape[0])
                    item.new_bytes += int(rows.nbytes)
                    self.relations[version.head_relation].add_new(rows)

            total_delta = 0
            for name in idb_in_stratum:
                delta_count = self.relations[name].end_iteration()
                total_delta += delta_count
                item.delta_tuples += delta_count
                item.delta_bytes += delta_count * self.relations[name].arity * TUPLE_BYTES
            item.full_tuples_after = sum(self.relations[n].full.shape[0] for n in idb_in_stratum)
            item.full_bytes_after = sum(int(self.relations[n].full.nbytes) for n in idb_in_stratum)
            trace.iterations.append(item)
            if total_delta == 0:
                break
        return iteration_counter

    # ------------------------------------------------------------------
    def _execute_version(self, version: RuleVersion, item: IterationTrace) -> np.ndarray:
        initial = version.initial
        relation = self.relations[initial.relation]
        rows = relation.delta if initial.version == DELTA else relation.full
        if rows.shape[0] == 0:
            return np.empty((0, len(version.head)), dtype=np.int64)
        item.outer_tuples += int(rows.shape[0])
        item.outer_bytes += int(rows.nbytes)
        if initial.filters:
            mask = np.ones(rows.shape[0], dtype=bool)
            for comparison in initial.filters:
                mask &= comparison.evaluate(rows)
            rows = rows[mask]
        if tuple(initial.projection) != tuple(range(rows.shape[1])):
            rows = rows[:, list(initial.projection)]

        for step in version.joins:
            if rows.shape[0] == 0:
                return np.empty((0, len(version.head)), dtype=np.int64)
            inner = self.relations[step.relation]
            sorted_keys, order = inner.index(step.join_columns)
            needles = rows[:, list(step.outer_key_positions)]
            item.probes += int(needles.shape[0])
            lower, upper = row_search_bounds(sorted_keys, needles)
            counts = (upper - lower).astype(np.int64)
            total = int(counts.sum())
            item.match_tuples += total
            match_bytes = total * len(step.schema) * TUPLE_BYTES
            item.match_bytes += match_bytes
            item.largest_join_output_bytes = max(item.largest_join_output_bytes, match_bytes)
            if total == 0:
                return np.empty((0, len(version.head)), dtype=np.int64)
            outer_idx = np.repeat(np.arange(needles.shape[0], dtype=np.int64), counts)
            offsets = np.repeat(np.cumsum(counts) - counts, counts)
            within = np.arange(total, dtype=np.int64) - offsets
            inner_positions = order[np.repeat(lower, counts) + within]
            inner_rows = inner.full[inner_positions]
            columns = []
            for spec in step.output:
                if spec.source == "outer":
                    columns.append(rows[outer_idx, spec.column])
                else:
                    columns.append(inner_rows[:, spec.column])
            rows = np.column_stack(columns).astype(np.int64)
            if step.filters:
                mask = np.ones(rows.shape[0], dtype=bool)
                for comparison in step.filters:
                    mask &= comparison.evaluate(rows)
                rows = rows[mask]
            if step.post_projection is not None and rows.shape[0]:
                rows = rows[:, list(step.post_projection)]

        if version.final_filters and rows.shape[0]:
            mask = np.ones(rows.shape[0], dtype=bool)
            for comparison in version.final_filters:
                mask &= comparison.evaluate(rows)
            rows = rows[mask]
        if rows.shape[0] == 0:
            return np.empty((0, len(version.head)), dtype=np.int64)
        columns = []
        for head_column in version.head:
            if head_column.kind == "var":
                columns.append(rows[:, head_column.position])
            else:
                columns.append(np.full(rows.shape[0], int(head_column.value), dtype=np.int64))
        return np.column_stack(columns).astype(np.int64)

    # ------------------------------------------------------------------
    def _finalise_trace(self, trace: WorkloadTrace, init_trace: IterationTrace) -> None:
        init_trace.full_tuples_after = init_trace.delta_tuples
        init_trace.full_bytes_after = init_trace.delta_bytes
        trace.iterations.insert(0, init_trace)
        for name, relation in self.relations.items():
            trace.relation_counts[name] = int(relation.full.shape[0])
            trace.relations[name] = relation.full
        trace.relation_arities = {name: relation.arity for name, relation in self.relations.items()}


def evaluate_program(
    program: Union[Program, str],
    facts: Mapping[str, np.ndarray],
    *,
    max_iterations: int = 1_000_000,
) -> WorkloadTrace:
    """Convenience wrapper: evaluate and return the workload trace."""
    return InstrumentedEvaluator(program, facts, max_iterations=max_iterations).evaluate()


# ----------------------------------------------------------------------
# Host helpers
# ----------------------------------------------------------------------

def _sort_rows(rows: np.ndarray) -> np.ndarray:
    if rows.shape[0] == 0:
        return rows
    order = np.lexsort(tuple(rows[:, c] for c in reversed(range(rows.shape[1]))))
    return rows[order]


def _dedupe(rows: np.ndarray, arity: int) -> np.ndarray:
    rows = np.asarray(rows, dtype=np.int64).reshape(-1, arity)
    if rows.shape[0] <= 1:
        return rows
    sorted_rows = _sort_rows(rows)
    keep = np.ones(sorted_rows.shape[0], dtype=bool)
    keep[1:] = np.any(sorted_rows[1:] != sorted_rows[:-1], axis=1)
    return sorted_rows[keep]


def _membership(sorted_haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    lower, upper = row_search_bounds(sorted_haystack, needles)
    return upper > lower
