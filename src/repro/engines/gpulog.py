"""Adapter exposing :class:`~repro.datalog.engine.GPULogEngine` behind the
common :class:`~repro.engines.base.BaselineEngine` interface.

This is the system under test in every comparison table; out-of-memory
conditions raised by the simulated device are converted into the ``OOM``
status the paper's tables use (GPUlog itself never OOMs in the paper's runs,
and should not here either — the status handling exists so that a
mis-configured memory cap fails loudly rather than crashing an experiment).
"""

from __future__ import annotations

from typing import Mapping, Union

import numpy as np

from ..datalog.ast import Program
from ..datalog.engine import GPULogEngine
from ..device.device import Device
from ..device.spec import DeviceSpec, device_preset
from ..errors import DeviceOutOfMemoryError
from .base import STATUS_OK, STATUS_OOM, BaselineEngine, EngineRunResult


class GPULogAdapter(BaselineEngine):
    """GPUlog (this paper) on a simulated data-center GPU."""

    name = "gpulog"

    def __init__(
        self,
        device: Union[DeviceSpec, str] = "h100",
        *,
        memory_capacity_bytes: int | None = None,
        eager_buffers: bool = True,
        buffer_growth_factor: float = 8.0,
        load_factor: float = 0.8,
        materialize_nway: bool = True,
        columnar: bool = True,
        backend: str | None = None,
        num_shards: int | None = None,
        planner: str | None = None,
    ) -> None:
        self.spec = device_preset(device) if isinstance(device, str) else device
        self.memory_capacity_bytes = memory_capacity_bytes
        self.eager_buffers = eager_buffers
        self.buffer_growth_factor = buffer_growth_factor
        self.load_factor = load_factor
        self.materialize_nway = materialize_nway
        self.columnar = columnar
        #: array-backend name/instance for every run (None = REPRO_BACKEND/numpy)
        self.backend = backend
        #: shard devices per run (None = $REPRO_SHARDS and then 1)
        self.num_shards = num_shards
        #: join planner per run (None = $REPRO_PLANNER and then "greedy")
        self.planner = planner
        self.last_result = None

    def serving_engine(
        self,
        program: Union[Program, str],
        facts: Mapping[str, np.ndarray] | None = None,
        **kwargs,
    ):
        """Open a long-lived :class:`~repro.serving.engine.ServingEngine`.

        Unlike :meth:`run`, state stays resident across requests: the caller
        submits insert/retract epochs and reads versioned snapshots, and the
        adapter's device/sharding/planner configuration carries over.  Extra
        keyword arguments are forwarded (e.g. ``background=False`` for a
        synchronous engine, ``cache=`` for a private program cache).
        """
        from ..serving.engine import ServingEngine

        kwargs.setdefault("device", self.spec)
        kwargs.setdefault("memory_capacity_bytes", self.memory_capacity_bytes)
        kwargs.setdefault("eager_buffers", self.eager_buffers)
        kwargs.setdefault("buffer_growth_factor", self.buffer_growth_factor)
        kwargs.setdefault("load_factor", self.load_factor)
        kwargs.setdefault("columnar", self.columnar)
        kwargs.setdefault("backend", self.backend)
        kwargs.setdefault("num_shards", self.num_shards)
        kwargs.setdefault("planner", self.planner)
        return ServingEngine(program, facts, **kwargs)

    def run(
        self,
        program: Union[Program, str],
        facts: Mapping[str, np.ndarray],
        *,
        collect_relations: bool = False,
    ) -> EngineRunResult:
        program = self.coerce_program(program)
        device = Device(self.spec, memory_capacity_bytes=self.memory_capacity_bytes, backend=self.backend)
        engine = GPULogEngine(
            device,
            eager_buffers=self.eager_buffers,
            buffer_growth_factor=self.buffer_growth_factor,
            load_factor=self.load_factor,
            materialize_nway=self.materialize_nway,
            columnar=self.columnar,
            collect_relations=collect_relations,
            num_shards=self.num_shards,
            planner=self.planner,
        )
        for name, rows in facts.items():
            engine.add_fact_array(name, np.asarray(rows, dtype=np.int64))
        try:
            result = engine.run(program)
        except DeviceOutOfMemoryError as error:
            # Any shard may have raised; report the cluster view with the
            # same max-over-shards convention as a successful sharded run
            # (on a single-device run engine.devices is just [device]).
            slowest = max(engine.devices, key=lambda shard: shard.elapsed_seconds)
            return EngineRunResult(
                engine=self.name,
                device=self.spec.name,
                status=STATUS_OOM,
                seconds=slowest.elapsed_seconds,
                fixed_seconds=slowest.profiler.fixed_seconds,
                variable_seconds=slowest.profiler.variable_seconds,
                peak_memory_bytes=max(shard.peak_memory_bytes for shard in engine.devices),
                detail=str(error),
            )
        finally:
            engine.close()

        self.last_result = result
        relations = None
        if collect_relations:
            relations = {name: set(map(tuple, rows)) for name, rows in result.relations.items()}
        return EngineRunResult(
            engine=self.name,
            device=self.spec.name,
            status=STATUS_OK,
            seconds=result.elapsed_seconds,
            # On a sharded run these describe the slowest shard, matching
            # the max-over-shards elapsed time above.
            fixed_seconds=result.fixed_seconds,
            variable_seconds=result.variable_seconds,
            peak_memory_bytes=result.peak_memory_bytes,
            iterations=result.total_iterations,
            relation_counts=dict(result.relation_counts),
            relations=relations,
        )
