"""Soufflé-like CPU baseline engine.

Soufflé compiles Datalog into C++ with concurrent B-tree / brie indexes and
evaluates semi-naïvely on a multicore CPU.  The paper's key observation
(Section 1) is that these engines hit a scalability wall: at 32 threads on
transitive closure, 77.8 % of the time is spent in *serialized* tuple
deduplication/insertion, and the remaining parallel phase is limited by the
CPU's memory bandwidth (~0.19 TB/s on the EPYC Milan, versus 3.35 TB/s on the
H100).

The cost model reflects those two effects directly:

* The join phase is a roofline over the iteration's memory traffic (outer
  scan + matched tuples) and its B-tree probe work, parallelised over
  ``threads`` with an efficiency factor (the paper measures 450-680 % CPU on a
  3200 % budget).
* The insert/dedup phase charges a B-tree insertion (``log`` depth of pointer
  chasing) per derived tuple, with a large serial fraction.

Relation contents come from the shared instrumented evaluator, so every
derived relation matches GPUlog exactly (the paper checks the same).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import Mapping, Union

import numpy as np

from ..datalog.ast import Program
from ..device.spec import AMD_EPYC_7543P, DeviceSpec
from .base import STATUS_OK, BaselineEngine, EngineRunResult
from .instrumented import InstrumentedEvaluator, WorkloadTrace


@dataclass(frozen=True)
class SouffleCostParameters:
    """Tunable constants of the Soufflé cost model.

    Defaults were calibrated so that the simulated REACH / SG / CSPA runs land
    in the paper's reported ranges relative to GPUlog on the H100 (Tables 2-4).
    """

    threads: int = 32
    #: nanoseconds per visited B-tree level during a probe (pointer chase).
    probe_level_ns: float = 1.5
    #: nanoseconds to materialise one matched tuple in the join loop.
    match_ns: float = 0.8
    #: nanoseconds per visited B-tree level during an insert (includes CAS/locking).
    insert_level_ns: float = 1.4
    #: fraction of the insert/dedup work that is effectively serialized.
    insert_serial_fraction: float = 0.55
    #: parallel efficiency of the join phase across the available threads.
    join_parallel_efficiency: float = 0.30
    #: fixed per-iteration overhead (task scheduling, synchronisation), microseconds.
    iteration_overhead_us: float = 40.0


class SouffleCPUEngine(BaselineEngine):
    """A Soufflé-like multicore CPU Datalog engine (comparison baseline)."""

    name = "souffle"

    def __init__(
        self,
        spec: DeviceSpec = AMD_EPYC_7543P,
        parameters: SouffleCostParameters | None = None,
    ) -> None:
        self.spec = spec
        self.parameters = parameters or SouffleCostParameters()

    # ------------------------------------------------------------------
    def run(
        self,
        program: Union[Program, str],
        facts: Mapping[str, np.ndarray],
        *,
        collect_relations: bool = False,
        trace: WorkloadTrace | None = None,
    ) -> EngineRunResult:
        program = self.coerce_program(program)
        if trace is None:
            trace = InstrumentedEvaluator(program, facts).evaluate()
        seconds = self.estimate_seconds(trace)
        fixed = self.parameters.iteration_overhead_us * 1e-6 * max(1, len(trace.iterations))
        peak = self.estimate_peak_memory(trace)
        relations = None
        if collect_relations:
            relations = {name: set(map(tuple, rows.tolist())) for name, rows in trace.relations.items()}
        return EngineRunResult(
            engine=self.name,
            device=self.spec.name,
            status=STATUS_OK,
            seconds=seconds,
            fixed_seconds=min(fixed, seconds),
            variable_seconds=max(0.0, seconds - fixed),
            peak_memory_bytes=peak,
            iterations=trace.iteration_count,
            relation_counts=dict(trace.relation_counts),
            relations=relations,
        )

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def estimate_seconds(self, trace: WorkloadTrace) -> float:
        params = self.parameters
        threads = max(1, params.threads)
        bandwidth = self.spec.memory_bandwidth_gbps * 1e9 * self.spec.sequential_efficiency
        total = 0.0
        # Loading the EDB into indexed relations.
        total += self._load_seconds(trace)
        for item in trace.iterations:
            inner_size = max(2, item.full_tuples_before + 2)
            probe_depth = log2(inner_size)
            join_compute = (
                item.probes * probe_depth * params.probe_level_ns
                + item.match_tuples * params.match_ns
            ) * 1e-9
            join_bytes = item.outer_bytes + item.match_bytes + item.probes * 64.0
            join_time = max(
                join_compute / (threads * params.join_parallel_efficiency),
                join_bytes / bandwidth,
            )

            full_size = max(2, item.full_tuples_after + 2)
            insert_depth = log2(full_size)
            insert_compute = item.new_tuples * insert_depth * params.insert_level_ns * 1e-9
            serial = insert_compute * params.insert_serial_fraction
            parallel = insert_compute - serial
            insert_time = serial + parallel / (threads * params.join_parallel_efficiency)

            total += join_time + insert_time + params.iteration_overhead_us * 1e-6
        return total

    def _load_seconds(self, trace: WorkloadTrace) -> float:
        params = self.parameters
        edb_tuples = sum(trace.relation_counts.get(name, 0) for name in trace.edb_relations)
        depth = log2(max(2, edb_tuples + 2))
        load_compute = edb_tuples * depth * params.insert_level_ns * 1e-9
        serial = load_compute * 0.5
        return serial + (load_compute - serial) / (params.threads * params.join_parallel_efficiency)

    def estimate_peak_memory(self, trace: WorkloadTrace) -> int:
        """B-tree storage overhead of roughly 2.4x the raw tuple payload."""
        overhead = 2.4
        peak = trace.edb_bytes * overhead
        if trace.iterations:
            largest = max(item.full_bytes_after for item in trace.iterations)
            transient = max(item.match_bytes for item in trace.iterations)
            peak += largest * overhead + transient
        return int(peak)

    def breakdown(self, trace: WorkloadTrace) -> dict[str, float]:
        """Join-vs-insert split (used to check the 77.8 % serialized-insert claim)."""
        params = self.parameters
        threads = max(1, params.threads)
        bandwidth = self.spec.memory_bandwidth_gbps * 1e9 * self.spec.sequential_efficiency
        join_total = 0.0
        insert_total = 0.0
        for item in trace.iterations:
            probe_depth = log2(max(2, item.full_tuples_before + 2))
            join_compute = (
                item.probes * probe_depth * params.probe_level_ns + item.match_tuples * params.match_ns
            ) * 1e-9
            join_bytes = item.outer_bytes + item.match_bytes + item.probes * 64.0
            join_total += max(join_compute / (threads * params.join_parallel_efficiency), join_bytes / bandwidth)
            insert_depth = log2(max(2, item.full_tuples_after + 2))
            insert_compute = item.new_tuples * insert_depth * params.insert_level_ns * 1e-9
            serial = insert_compute * params.insert_serial_fraction
            insert_total += serial + (insert_compute - serial) / (threads * params.join_parallel_efficiency)
        total = join_total + insert_total
        if total <= 0:
            return {"join": 0.0, "insert": 0.0}
        return {"join": join_total / total, "insert": insert_total / total}
