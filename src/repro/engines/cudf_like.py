"""cuDF-like baseline engine (dataframe joins on the GPU).

The paper runs the Datalog queries re-expressed as iterated cuDF dataframe
``merge`` / ``concat`` / ``drop_duplicates`` calls (the code of the GPUJoin
repository).  Two structural properties of that formulation drive the results
in Tables 2 and 3:

* **Full materialisation** — every iteration joins against the *entire*
  accumulated relation (dataframes carry no delta index), materialises the
  whole join output, concatenates it with the accumulated result and runs a
  global ``drop_duplicates``.  Join output therefore grows with the cumulative
  match count, and the sort-based dedup rescans the full relation every
  iteration.
* **Memory behaviour** — ``merge`` materialises both inputs' hash table and
  the complete output, and ``drop_duplicates`` needs sort scratch space of the
  concatenated frame, which is why cuDF OOMs on most of the large graphs.

As in the other baselines, the relation contents come from the shared
instrumented evaluator; only time and memory are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import Mapping, Union

import numpy as np

from ..datalog.ast import Program
from ..device.spec import NVIDIA_H100, DeviceSpec
from .base import STATUS_OK, STATUS_OOM, BaselineEngine, EngineRunResult
from .instrumented import InstrumentedEvaluator, WorkloadTrace


@dataclass(frozen=True)
class CudfCostParameters:
    """Tunable constants of the cuDF cost model."""

    #: per-column storage overhead of the dataframe representation (null masks,
    #: 2x staging during concat) relative to the raw payload.
    frame_overhead: float = 2.0
    #: scratch factor of the sort-based drop_duplicates (keys + permutation).
    dedup_scratch: float = 2.0
    #: additional passes over the data per iteration (hash build, gather, concat).
    passes_per_iteration: float = 8.0
    #: per-iteration framework overhead (kernel launches, dataframe dispatch), µs.
    iteration_overhead_us: float = 350.0


class CudfLikeEngine(BaselineEngine):
    """Iterated dataframe merge/dedup evaluation, cuDF style."""

    name = "cudf"

    def __init__(
        self,
        spec: DeviceSpec = NVIDIA_H100,
        *,
        memory_capacity_bytes: int | None = None,
        parameters: CudfCostParameters | None = None,
    ) -> None:
        self.spec = spec
        self.memory_capacity_bytes = (
            memory_capacity_bytes if memory_capacity_bytes is not None else spec.memory_capacity_bytes
        )
        self.parameters = parameters or CudfCostParameters()

    # ------------------------------------------------------------------
    def run(
        self,
        program: Union[Program, str],
        facts: Mapping[str, np.ndarray],
        *,
        collect_relations: bool = False,
        trace: WorkloadTrace | None = None,
    ) -> EngineRunResult:
        program = self.coerce_program(program)
        if trace is None:
            trace = InstrumentedEvaluator(program, facts).evaluate()
        seconds, peak, oom_at = self._simulate(trace)
        fixed = self.parameters.iteration_overhead_us * 1e-6 * max(1, len(trace.iterations))
        status = STATUS_OOM if oom_at is not None else STATUS_OK
        relations = None
        if collect_relations and status == STATUS_OK:
            relations = {name: set(map(tuple, rows.tolist())) for name, rows in trace.relations.items()}
        return EngineRunResult(
            engine=self.name,
            device=self.spec.name,
            status=status,
            seconds=seconds,
            fixed_seconds=min(fixed, seconds),
            variable_seconds=max(0.0, seconds - fixed),
            peak_memory_bytes=peak,
            iterations=trace.iteration_count if oom_at is None else oom_at,
            relation_counts=dict(trace.relation_counts) if status == STATUS_OK else {},
            relations=relations,
            detail="" if oom_at is None else f"out of memory at iteration {oom_at}",
        )

    # ------------------------------------------------------------------
    # Cost and memory model
    # ------------------------------------------------------------------
    def _simulate(self, trace: WorkloadTrace) -> tuple[float, int, int | None]:
        params = self.parameters
        seq_bw = self.spec.memory_bandwidth_gbps * 1e9 * self.spec.sequential_efficiency
        rnd_bw = self.spec.memory_bandwidth_gbps * 1e9 * self.spec.random_efficiency
        capacity = self.memory_capacity_bytes

        edb_frame_bytes = trace.edb_bytes * params.frame_overhead
        seconds = trace.edb_bytes / seq_bw
        peak = edb_frame_bytes
        cumulative_match_bytes = 0.0

        for item in trace.iterations:
            # The dataframe formulation joins the accumulated relation against
            # the EDB each iteration: its join output is (to first order) the
            # cumulative match volume of the semi-naive trace.
            cumulative_match_bytes += item.match_bytes
            join_output_bytes = cumulative_match_bytes
            join_input_bytes = item.full_bytes_after * params.frame_overhead + edb_frame_bytes
            join_time = (join_input_bytes + join_output_bytes) / seq_bw + item.probes * 32.0 / rnd_bw

            # concat + global drop_duplicates over full U output: sort-based.
            concat_bytes = item.full_bytes_after + join_output_bytes
            sort_passes = max(1.0, log2(max(2.0, concat_bytes / 8.0)) / 8.0)
            dedup_time = concat_bytes * params.dedup_scratch * sort_passes / seq_bw

            extra = concat_bytes * params.passes_per_iteration / seq_bw
            seconds += join_time + dedup_time + extra + params.iteration_overhead_us * 1e-6

            required = (
                edb_frame_bytes
                + item.full_bytes_after * params.frame_overhead
                + item.match_bytes * params.frame_overhead
                + (item.full_bytes_after + item.match_bytes) * params.dedup_scratch
            )
            peak = max(peak, required)
            if required > capacity:
                return seconds, int(peak), item.iteration

        return seconds, int(peak), None
