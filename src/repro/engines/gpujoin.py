"""GPUJoin-like baseline engine (Shovon et al., USENIX ATC'23).

GPUJoin stores each relation in an open-addressing hash table that holds the
*whole tuples* (not an index over a dense array, as HISA does).  The paper
identifies two consequences it exploits in the comparison of Section 6.4:

* **Memory footprint** — fast parallel construction needs a *low* load factor
  (the ATC'23 artifact uses ~0.4), so the hash tables are 2.5x larger than the
  payload, and the fused merge needs a non-deduplicated staging buffer as big
  as ``full + new``; this is why GPUJoin OOMs on com-dblp and Gnutella31 in
  Table 2 while GPUlog does not.
* **Fused dedup over the full relation** — GPUJoin merges the raw new tuples
  into full and deduplicates the *merged* relation, re-scanning all of full
  every iteration, which grows increasingly expensive (Section 5.1,
  "Populating delta").

GPUJoin is specialised to binary-join queries (reachability); SG's n-way join
is unsupported, matching its absence from Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

import numpy as np

from ..datalog.ast import Program
from ..device.spec import NVIDIA_H100, DeviceSpec
from .base import STATUS_OK, STATUS_OOM, STATUS_UNSUPPORTED, BaselineEngine, EngineRunResult
from .instrumented import InstrumentedEvaluator, WorkloadTrace


@dataclass(frozen=True)
class GPUJoinCostParameters:
    """Tunable constants of the GPUJoin cost model."""

    #: hash-table load factor used for tuple storage (low for fast build).
    load_factor: float = 0.45
    #: average probe-chain length at that load factor (linear probing).
    average_probe_chain: float = 3.0
    #: bytes of hash-table slot metadata per stored tuple (key + state).
    slot_overhead_bytes: float = 16.0
    #: number of full-relation passes performed by the fused merge+dedup.
    merge_passes: float = 8.0
    #: kernel launch overhead per iteration, microseconds.
    iteration_overhead_us: float = 60.0


class GPUJoinEngine(BaselineEngine):
    """GPUJoin-style iterated hash joins over tuple-storing hash tables."""

    name = "gpujoin"

    def __init__(
        self,
        spec: DeviceSpec = NVIDIA_H100,
        *,
        memory_capacity_bytes: int | None = None,
        parameters: GPUJoinCostParameters | None = None,
    ) -> None:
        self.spec = spec
        self.memory_capacity_bytes = (
            memory_capacity_bytes if memory_capacity_bytes is not None else spec.memory_capacity_bytes
        )
        self.parameters = parameters or GPUJoinCostParameters()

    # ------------------------------------------------------------------
    def run(
        self,
        program: Union[Program, str],
        facts: Mapping[str, np.ndarray],
        *,
        collect_relations: bool = False,
        trace: WorkloadTrace | None = None,
    ) -> EngineRunResult:
        program = self.coerce_program(program)
        if not self.supports(program):
            return EngineRunResult(
                engine=self.name,
                device=self.spec.name,
                status=STATUS_UNSUPPORTED,
                detail="GPUJoin only supports binary-join (two-atom) recursive queries",
            )
        if trace is None:
            trace = InstrumentedEvaluator(program, facts).evaluate()
        seconds, peak, oom_at = self._simulate(trace)
        fixed = self.parameters.iteration_overhead_us * 1e-6 * max(1, len(trace.iterations))
        status = STATUS_OOM if oom_at is not None else STATUS_OK
        relations = None
        if collect_relations and status == STATUS_OK:
            relations = {name: set(map(tuple, rows.tolist())) for name, rows in trace.relations.items()}
        return EngineRunResult(
            engine=self.name,
            device=self.spec.name,
            status=status,
            seconds=seconds,
            fixed_seconds=min(fixed, seconds),
            variable_seconds=max(0.0, seconds - fixed),
            peak_memory_bytes=peak,
            iterations=trace.iteration_count if oom_at is None else oom_at,
            relation_counts=dict(trace.relation_counts) if status == STATUS_OK else {},
            relations=relations,
            detail="" if oom_at is None else f"out of memory at iteration {oom_at}",
        )

    @staticmethod
    def supports(program: Program) -> bool:
        """GPUJoin handles rules with at most two body atoms (binary joins)."""
        return all(len(rule.body) <= 2 for rule in program.proper_rules())

    # ------------------------------------------------------------------
    # Cost and memory model
    # ------------------------------------------------------------------
    def _simulate(self, trace: WorkloadTrace) -> tuple[float, int, int | None]:
        params = self.parameters
        seq_bw = self.spec.memory_bandwidth_gbps * 1e9 * self.spec.sequential_efficiency
        rnd_bw = self.spec.memory_bandwidth_gbps * 1e9 * self.spec.random_efficiency
        capacity = self.memory_capacity_bytes

        table_overhead = 1.0 / params.load_factor
        edb_table_bytes = trace.edb_bytes * table_overhead + (
            sum(trace.relation_counts.get(n, 0) for n in trace.edb_relations) * params.slot_overhead_bytes
        )

        seconds = 0.0
        peak = edb_table_bytes
        # Building the EDB hash tables: one random write per tuple slot.
        seconds += edb_table_bytes / seq_bw + trace.edb_bytes / rnd_bw

        for item in trace.iterations:
            # Join phase: probe chains over tuple-storing hash tables.
            probe_bytes = item.probes * params.average_probe_chain * (
                params.slot_overhead_bytes + self._average_row_bytes(trace)
            )
            join_bytes_seq = item.outer_bytes + item.match_bytes
            join_time = probe_bytes / rnd_bw + join_bytes_seq / seq_bw

            # Fused merge + dedup: rebuild/merge the full table including the raw
            # (non-deduplicated) new tuples, re-scanning and re-sorting the whole
            # relation, rebuilding its hash table (random writes at a low load
            # factor) and reallocating the staging buffer every iteration
            # (GPUJoin has no eager buffer management).
            merged_bytes = (item.full_bytes_after + item.new_bytes) * params.merge_passes
            rebuild_bytes = item.full_bytes_after * table_overhead + item.new_bytes
            realloc_bytes = (item.full_bytes_after + item.new_bytes) * 2.0
            merge_time = (
                merged_bytes / seq_bw
                + rebuild_bytes / rnd_bw
                + realloc_bytes / (0.5 * seq_bw)
            )

            seconds += join_time + merge_time + params.iteration_overhead_us * 1e-6

            # Memory: full table at low load factor + raw new staging + join output.
            full_tuples = item.full_tuples_after
            idb_table_bytes = item.full_bytes_after * table_overhead + full_tuples * params.slot_overhead_bytes
            staging = item.new_bytes + item.largest_join_output_bytes
            required = edb_table_bytes + idb_table_bytes + staging
            peak = max(peak, required)
            if required > capacity:
                return seconds, int(peak), item.iteration

        return seconds, int(peak), None

    @staticmethod
    def _average_row_bytes(trace: WorkloadTrace) -> float:
        arities = list(trace.relation_arities.values()) or [2]
        return 8.0 * sum(arities) / len(arities)
