"""GPUlog and the comparison engines of the paper's evaluation (Tables 2-4)."""

from .base import (
    STATUS_OK,
    STATUS_OOM,
    STATUS_UNSUPPORTED,
    BaselineEngine,
    EngineRunResult,
)
from .cudf_like import CudfCostParameters, CudfLikeEngine
from .gpujoin import GPUJoinCostParameters, GPUJoinEngine
from .gpulog import GPULogAdapter
from .instrumented import (
    InstrumentedEvaluator,
    IterationTrace,
    WorkloadTrace,
    evaluate_program,
)
from .souffle_cpu import SouffleCostParameters, SouffleCPUEngine

__all__ = [
    "BaselineEngine",
    "CudfCostParameters",
    "CudfLikeEngine",
    "EngineRunResult",
    "GPUJoinCostParameters",
    "GPUJoinEngine",
    "GPULogAdapter",
    "InstrumentedEvaluator",
    "IterationTrace",
    "STATUS_OK",
    "STATUS_OOM",
    "STATUS_UNSUPPORTED",
    "SouffleCPUEngine",
    "SouffleCostParameters",
    "WorkloadTrace",
    "evaluate_program",
]
