"""Common interface shared by GPUlog and the comparison engines.

The paper's Tables 2-4 compare four systems (GPUlog, Soufflé, GPUJoin, cuDF)
on the same programs and inputs.  Every engine in this package implements
:class:`BaselineEngine.run` with the same signature and returns an
:class:`EngineRunResult`, so the experiment drivers can iterate over engines
uniformly, including the ``OOM`` outcomes the paper reports.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping, Union

import numpy as np

from ..datalog.ast import Program

STATUS_OK = "ok"
STATUS_OOM = "oom"
STATUS_UNSUPPORTED = "unsupported"


@dataclass
class EngineRunResult:
    """Outcome of running one program on one engine."""

    engine: str
    device: str
    status: str
    seconds: float = 0.0
    fixed_seconds: float = 0.0
    variable_seconds: float = 0.0
    peak_memory_bytes: int = 0
    iterations: int = 0
    relation_counts: dict[str, int] = field(default_factory=dict)
    relations: dict[str, set[tuple[int, ...]]] | None = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def oom(self) -> bool:
        return self.status == STATUS_OOM

    @property
    def peak_memory_gib(self) -> float:
        return self.peak_memory_bytes / 1024**3

    def projected_seconds(self, scale: float) -> float:
        """Project the runtime to a workload ``scale`` times larger.

        The data-proportional part grows with the scale factor while the
        data-independent overheads (kernel launches, allocation latency,
        per-iteration scheduling) stay fixed.  This is how the experiment
        harness compares scaled synthetic datasets against the paper's
        full-size numbers; see EXPERIMENTS.md for the methodology.
        """
        if self.fixed_seconds == 0.0 and self.variable_seconds == 0.0:
            return self.seconds * scale
        return self.fixed_seconds + self.variable_seconds * scale

    def projected_memory_bytes(self, scale: float) -> int:
        """Project peak memory to a workload ``scale`` times larger."""
        return int(self.peak_memory_bytes * scale)

    def display_time(self) -> str:
        """Human-readable cell value for the paper-style tables."""
        if self.status == STATUS_OOM:
            return "OOM"
        if self.status == STATUS_UNSUPPORTED:
            return "n/a"
        return f"{self.seconds:.2f}"


class BaselineEngine(ABC):
    """Abstract interface for every engine in the comparison."""

    name: str = "engine"

    @abstractmethod
    def run(
        self,
        program: Union[Program, str],
        facts: Mapping[str, np.ndarray],
        *,
        collect_relations: bool = False,
    ) -> EngineRunResult:
        """Evaluate ``program`` over the given EDB facts.

        ``facts`` maps relation names to ``(n, arity)`` int64 arrays.  The
        result reports simulated seconds, simulated peak device memory and the
        sizes of every derived relation; ``collect_relations=True`` also
        returns the tuples themselves (used by correctness tests).
        """

    @staticmethod
    def coerce_program(program: Union[Program, str]) -> Program:
        if isinstance(program, Program):
            return program
        return Program.parse(program)
