"""Cyclic-pattern workloads for the join-planner ablation (triangle, 4-clique).

Triangle counting and 4-clique enumeration are the canonical queries where
binary join plans are worst-case suboptimal: on a skewed graph the first
binary join materializes every *wedge* (two-edge path), which a hub vertex
inflates quadratically, while the generic join's per-row min-side
intersection never expands more than the smallest candidate run.  The
:func:`hub_graph` generator produces exactly that regime — one hub connected
both ways to every vertex plus a sparse random remainder — so the
``greedy``/``cost``/``cost+wcoj`` planner ablation separates cleanly.
"""

from __future__ import annotations

import os

import numpy as np

from ..datalog.engine import PLANNER_ENV_VAR, EvaluationResult, GPULogEngine
from .runner import ResultTable, format_seconds

#: Exported by the experiments CLI's ``--explain`` flag: dump each rule
#: version's chosen join order, algorithm, and estimated vs. observed
#: cardinalities after every planner-workload run.
EXPLAIN_ENV_VAR = "REPRO_EXPLAIN"

TRIANGLE_PROGRAM = "triangle(x, y, z) :- edge(x, y), edge(y, z), edge(z, x).\n"

CLIQUE4_PROGRAM = (
    "clique4(x, y, z, w) :- edge(x, y), edge(y, z), edge(z, x), "
    "edge(x, w), edge(y, w), edge(z, w).\n"
)

#: Default scales: large enough that the binary plan's wedge intermediate
#: dwarfs the output (and the generic join wins on simulated time), small
#: enough for a CI smoke run.
TRIANGLE_NODES = 2000
CLIQUE4_NODES = 500


def hub_graph(n: int, extra: int | None = None, seed: int = 7) -> np.ndarray:
    """A skewed edge set: vertex 0 linked both ways to all, plus random edges.

    Max degree is ~``n`` while the average stays ~4, so worst-case join
    estimates (hub multiplicity) and average-case ones diverge by orders of
    magnitude — the planner's WCOJ trigger.
    """
    if extra is None:
        extra = 2 * n
    rng = np.random.default_rng(seed)
    rows = [(0, v) for v in range(1, n)] + [(v, 0) for v in range(1, n)]
    src = rng.integers(1, n, size=extra)
    dst = rng.integers(1, n, size=extra)
    rows += [(int(a), int(b)) for a, b in zip(src, dst) if a != b]
    return np.unique(np.asarray(rows, dtype=np.int64), axis=0)


def wedge_count(edges: np.ndarray) -> int:
    """Rows the binary plan's first join (edge ⋈ edge on y) materializes."""
    _, out_degree = np.unique(edges[:, 0], return_counts=True)
    out_by_node = dict(zip(np.unique(edges[:, 0]).tolist(), out_degree.tolist()))
    return int(sum(out_by_node.get(int(y), 0) for y in edges[:, 1]))


def run_planner_workload(
    program: str,
    head: str,
    edges: np.ndarray,
    planner: str,
    *,
    num_shards: int = 1,
    collect: bool = False,
) -> tuple[EvaluationResult, str]:
    """One engine run of a cyclic workload under ``planner``; returns
    (result, explain dump)."""
    engine = GPULogEngine(
        "h100", planner=planner, num_shards=num_shards, collect_relations=collect
    )
    try:
        engine.add_fact_array("edge", edges)
        result = engine.run(program, name=head)
        return result, engine.explain()
    finally:
        engine.close()


def _version_summary(result: EvaluationResult, head: str) -> dict:
    """The recursive-or-only version entry for ``head`` from the plan report."""
    entries = [entry for entry in result.plan_report if entry["head"] == head]
    return entries[0] if entries else {}


def _run_workload_table(
    title: str, program: str, head: str, edges: np.ndarray
) -> ResultTable:
    explain = os.environ.get(EXPLAIN_ENV_VAR, "").strip() not in ("", "0", "false", "no", "off")
    table = ResultTable(
        title=title,
        headers=["planner", "algorithm", "tuples", "seconds", "speedup", "est_rows", "obs_rows"],
    )
    planners = [os.environ[PLANNER_ENV_VAR]] if os.environ.get(PLANNER_ENV_VAR) else [
        "greedy", "cost", "cost+wcoj"
    ]
    baseline_seconds: float | None = None
    for planner in planners:
        result, dump = run_planner_workload(program, head, edges, planner)
        summary = _version_summary(result, head)
        if baseline_seconds is None:
            baseline_seconds = result.elapsed_seconds
        speedup = baseline_seconds / result.elapsed_seconds if result.elapsed_seconds else 0.0
        estimated = summary.get("estimated_rows")
        table.add_row(
            planner,
            summary.get("algorithm", "?"),
            result.count(head),
            format_seconds(result.elapsed_seconds),
            f"{speedup:.2f}x",
            f"{estimated:.0f}" if estimated is not None else "n/a",
            f"{summary.get('observed_rows', 0.0):.0f}",
        )
        if explain:
            for line in dump.splitlines():
                table.add_note(f"[{planner}] {line}")
    table.add_note(
        f"hub graph: {edges.shape[0]} edges, binary wedge intermediate = {wedge_count(edges)} rows"
    )
    return table


def run_triangle(nodes: int = TRIANGLE_NODES) -> ResultTable:
    """Triangle counting on the hub graph across the three planners."""
    return _run_workload_table(
        f"Triangle count (hub graph, n={nodes})",
        TRIANGLE_PROGRAM,
        "triangle",
        hub_graph(nodes),
    )


def run_clique4(nodes: int = CLIQUE4_NODES) -> ResultTable:
    """4-clique enumeration on the hub graph across the three planners."""
    return _run_workload_table(
        f"4-clique count (hub graph, n={nodes})",
        CLIQUE4_PROGRAM,
        "clique4",
        hub_graph(nodes, 3 * nodes),
    )
