"""Table 1 — eager buffer management on/off: runtime and memory of REACH.

For each road/mesh/social graph of the paper's Table 1, REACH is run twice on
the H100 spec: once with the normal allocate/free-every-iteration policy and
once with Eager Buffer Management.  The table reports total and tail
iterations, simulated (and projected) runtime for both policies, and peak
simulated memory for both policies.

Expected shape (paper): EBM is faster on every dataset, with the largest gains
on graphs with many low-delta tail iterations (usroads), at the cost of
roughly 1.3x memory.
"""

from __future__ import annotations

from .runner import (
    ResultTable,
    format_gib,
    format_seconds,
    output_size,
    run_gpulog,
    scale_factor,
)

TABLE1_DATASETS = ("usroads", "vsp_finan", "fe_ocean", "com-dblp", "Gnutella31")

#: Paper Table 1 reference values: (total iterations, tail iterations,
#: normal seconds, eager seconds, normal GB, eager GB).
PAPER_TABLE1 = {
    "usroads": (606, None, 52.42, 17.53, 20.35, 26.84),
    "vsp_finan": (520, 491, 59.08, 21.91, 20.22, 28.26),
    "fe_ocean": (247, 90, 47.19, 23.36, 37.97, 50.43),
    "com-dblp": (31, 18, 17.83, 14.30, 43.24, 60.18),
    "Gnutella31": (31, 17, 4.80, 3.76, 20.22, 28.26),
}


def run_table1(datasets=TABLE1_DATASETS, profile: str = "bench") -> ResultTable:
    """Regenerate Table 1 on the synthetic datasets."""
    table = ResultTable(
        title="Table 1: REACH with and without eager buffer management (NVIDIA H100)",
        headers=[
            "Dataset", "Iter total", "Iter tail",
            "Normal (s)", "Eager (s)", "Eager speedup",
            "Normal mem (GiB)", "Eager mem (GiB)", "Mem ratio",
        ],
    )
    for name in datasets:
        normal, _ = run_gpulog(name, "reach", profile, eager_buffers=False, use_cache=False)
        eager, _ = run_gpulog(name, "reach", profile, eager_buffers=True, use_cache=False)
        scale = scale_factor(name, "reach", output_size(normal, "reach"))
        normal_seconds = normal.elapsed_seconds
        eager_seconds = eager.elapsed_seconds
        table.add_row(
            name,
            normal.total_iterations,
            normal.tail_iterations("reach"),
            format_seconds(normal_seconds),
            format_seconds(eager_seconds),
            f"{normal_seconds / max(eager_seconds, 1e-12):.2f}x",
            format_gib(normal.peak_memory_bytes),
            format_gib(eager.peak_memory_bytes),
            f"{eager.peak_memory_bytes / max(1, normal.peak_memory_bytes):.2f}x",
        )
        table.add_note(
            f"{name}: scale factor {scale:.0f}; paper reports normal/eager "
            f"{PAPER_TABLE1[name][2]:.2f}s/{PAPER_TABLE1[name][3]:.2f}s"
            if name in PAPER_TABLE1
            else f"{name}: scale factor {scale:.0f}"
        )
    table.add_note(
        "Times are simulated seconds on the scaled synthetic graphs; the claim under test "
        "is that EBM is faster everywhere and costs extra memory (paper: ~1.3x)."
    )
    return table
