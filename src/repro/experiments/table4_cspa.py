"""Table 4 — context-sensitive program analysis (CSPA): GPUlog vs Soufflé.

Reports, per program graph (httpd / linux / postgresql): the input relation
sizes, the output relation sizes (ValueFlow / ValueAlias / MemAlias), the
runtime of GPUlog (H100) and of the Soufflé-like CPU engine, and the speedup.

Expected shape (paper): roughly 35-45x speedups, explained by the memory-bound
nature of the workload and the ~17x memory-bandwidth gap between the H100 and
the EPYC host.
"""

from __future__ import annotations

from .runner import (
    ResultTable,
    format_seconds,
    get_dataset,
    get_trace,
    output_size,
    project_seconds,
    query_program,
    run_gpulog,
    scale_factor,
)
from ..engines import SouffleCPUEngine

TABLE4_DATASETS = ("httpd", "linux", "postgresql")

#: Paper Table 4: (gpulog seconds, souffle seconds, speedup).
PAPER_TABLE4 = {
    "httpd": (1.33, 49.48, 37.2),
    "linux": (0.39, 13.44, 34.5),
    "postgresql": (1.27, 57.82, 44.9),
}


def run_table4(datasets=TABLE4_DATASETS, profile: str = "bench") -> ResultTable:
    """Regenerate Table 4 on the synthetic CSPA inputs."""
    table = ResultTable(
        title="Table 4: CSPA runtime, GPUlog (H100) vs Soufflé (32-core EPYC), projected seconds",
        headers=[
            "Dataset", "Assign", "Dereference",
            "ValueFlow", "ValueAlias", "MemAlias",
            "GPUlog", "Souffle", "Speedup",
        ],
    )
    program = query_program("cspa")
    for name in datasets:
        dataset = get_dataset(name, profile)
        trace = get_trace(name, "cspa", profile)
        scale = scale_factor(name, "cspa", output_size(trace, "cspa"))

        gpulog_result, _ = run_gpulog(name, "cspa", profile)
        gpulog_projected = project_seconds(gpulog_result.fixed_seconds, gpulog_result.variable_seconds, scale)
        souffle = SouffleCPUEngine().run(program, dataset.facts(), trace=trace)
        souffle_projected = souffle.projected_seconds(scale)

        counts = trace.relation_counts
        table.add_row(
            name,
            counts.get("assign", 0),
            counts.get("dereference", 0),
            counts.get("valueflow", 0),
            counts.get("valuealias", 0),
            counts.get("memalias", 0),
            format_seconds(gpulog_projected),
            format_seconds(souffle_projected),
            f"{souffle_projected / max(gpulog_projected, 1e-12):.1f}x",
        )
    table.add_note(
        "Output relation sizes are identical across every engine (verified by the integration tests), "
        "mirroring the paper's check that all relation sizes match Soufflé's."
    )
    return table
