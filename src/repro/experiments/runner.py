"""Shared infrastructure for the experiment drivers (one per paper table/figure).

Provides:

* dataset / workload-trace caching, so that e.g. Table 2, Table 5 and Figure 6
  can share the expensive evaluations of the same (program, dataset) pairs;
* the *scale factor* computation used to project simulated runs of the scaled
  synthetic datasets back to the paper's full-size workloads (the paper output
  size divided by the measured synthetic output size — see EXPERIMENTS.md);
* event re-pricing: replaying the kernel costs recorded by one GPUlog run
  under a different :class:`~repro.device.spec.DeviceSpec` (used by Table 3's
  HIP column and Table 5's hardware sweep — the algorithm and data are
  identical across devices, only the cost model changes);
* a small result-table type shared by every driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..backend import get_backend
from ..datalog.ast import Program
from ..datalog.engine import EvaluationResult, GPULogEngine
from ..device.cost import CostModel
from ..device.device import Device
from ..device.profiler import ProfileEvent
from ..device.spec import DeviceSpec, device_preset
from ..datasets.registry import PROFILE_BENCH, dataset_spec, load_dataset
from ..engines.instrumented import InstrumentedEvaluator, WorkloadTrace
from ..queries import cspa_program, reach_program, sg_program

CSPA_OUTPUT_RELATIONS = ("valueflow", "valuealias", "memalias")


# ----------------------------------------------------------------------
# Result tables
# ----------------------------------------------------------------------

@dataclass
class ResultTable:
    """A formatted experiment result: headers, rows and free-form notes."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append([str(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def format(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(self.headers))
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


# ----------------------------------------------------------------------
# Caches
# ----------------------------------------------------------------------

_DATASET_CACHE: dict[tuple[str, str], object] = {}
_TRACE_CACHE: dict[tuple[str, str, str], WorkloadTrace] = {}
_GPULOG_CACHE: dict[tuple[str, str, str, str], tuple[EvaluationResult, list[ProfileEvent]]] = {}


def clear_caches() -> None:
    """Drop every cached dataset, trace and GPUlog run (used by tests)."""
    _DATASET_CACHE.clear()
    _TRACE_CACHE.clear()
    _GPULOG_CACHE.clear()


def get_dataset(name: str, profile: str = PROFILE_BENCH):
    """Load (and cache) a dataset by registry name."""
    key = (name, profile)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_dataset(name, profile)
    return _DATASET_CACHE[key]


def query_program(query: str) -> Program:
    """The benchmark program for ``query`` in {"reach", "sg", "cspa"}."""
    if query == "reach":
        return reach_program()
    if query == "sg":
        return sg_program()
    if query == "cspa":
        return cspa_program()
    raise ValueError(f"unknown benchmark query {query!r}")


def get_trace(dataset_name: str, query: str, profile: str = PROFILE_BENCH) -> WorkloadTrace:
    """Evaluate (and cache) the workload trace of ``query`` on ``dataset_name``."""
    key = (dataset_name, query, profile)
    if key not in _TRACE_CACHE:
        dataset = get_dataset(dataset_name, profile)
        program = query_program(query)
        _TRACE_CACHE[key] = InstrumentedEvaluator(program, dataset.facts()).evaluate()
    return _TRACE_CACHE[key]


def run_gpulog(
    dataset_name: str,
    query: str,
    profile: str = PROFILE_BENCH,
    *,
    device: str | DeviceSpec = "h100",
    eager_buffers: bool = True,
    materialize_nway: bool = True,
    use_cache: bool = True,
    backend: str | None = None,
) -> tuple[EvaluationResult, list[ProfileEvent]]:
    """Run GPUlog on a registered dataset, returning the result and kernel events.

    Runs with the default configuration are cached per (dataset, query,
    device, backend) so that multiple tables can reuse them.  ``backend``
    selects the array backend by registry name; ``None`` defers to the
    ``REPRO_BACKEND`` environment variable (and then NumPy), so one exported
    variable retargets every experiment driver.
    """
    device_key = device if isinstance(device, str) else device.name
    backend_key = get_backend(backend).name
    cacheable = use_cache and eager_buffers and materialize_nway
    key = (dataset_name, query, device_key, backend_key)
    if cacheable and key in _GPULOG_CACHE:
        return _GPULOG_CACHE[key]

    dataset = get_dataset(dataset_name, profile)
    program = query_program(query)
    engine = GPULogEngine(
        Device(device, backend=backend),
        eager_buffers=eager_buffers,
        materialize_nway=materialize_nway,
        collect_relations=False,
    )
    for relation, rows in dataset.facts().items():
        engine.add_fact_array(relation, rows)
    result = engine.run(program)
    events = engine.device.profiler.events
    engine.close()
    if cacheable:
        _GPULOG_CACHE[key] = (result, events)
    return result, events


# ----------------------------------------------------------------------
# Scale factors and projection
# ----------------------------------------------------------------------

def output_size(trace_or_result, query: str) -> int:
    """Total output tuples of a run (reach/sg size, or the three CSPA relations)."""
    counts = (
        trace_or_result.relation_counts
        if hasattr(trace_or_result, "relation_counts")
        else dict(trace_or_result)
    )
    if query == "cspa":
        return sum(counts.get(name, 0) for name in CSPA_OUTPUT_RELATIONS)
    target = "reach" if query == "reach" else "sg"
    return counts.get(target, 0)


def paper_output_size(dataset_name: str, query: str) -> int:
    """Output size the paper reports for (dataset, query), 0 if unknown."""
    spec = dataset_spec(dataset_name)
    if query == "cspa":
        return sum(spec.paper.output_sizes.get(name, 0) for name in CSPA_OUTPUT_RELATIONS)
    return spec.paper.output_sizes.get(query, 0)


def scale_factor(dataset_name: str, query: str, measured_output: int) -> float:
    """Paper output size / measured synthetic output size (>= 1)."""
    paper = paper_output_size(dataset_name, query)
    if paper <= 0 or measured_output <= 0:
        return 1.0
    return max(1.0, paper / measured_output)


def project_seconds(fixed_seconds: float, variable_seconds: float, scale: float) -> float:
    """Project a decomposed runtime to a ``scale`` times larger workload."""
    return fixed_seconds + variable_seconds * scale


# ----------------------------------------------------------------------
# Event re-pricing (Table 3 HIP column, Table 5 hardware sweep)
# ----------------------------------------------------------------------

def reprice_events(events: Iterable[ProfileEvent], device: str | DeviceSpec) -> tuple[float, float, float]:
    """Re-price recorded kernel events under a different device specification.

    Returns ``(total, fixed, variable)`` simulated seconds.  The replay is
    exact because the kernel work descriptions (bytes, ops, divergence,
    allocations) do not depend on the device; only the cost model does.
    """
    spec = device_preset(device) if isinstance(device, str) else device
    model = CostModel(spec)
    total = 0.0
    fixed = 0.0
    for event in events:
        seconds = model.seconds(event.cost)
        event_fixed = model.launch_seconds(event.cost) + event.cost.allocations * spec.alloc_latency_us * 1e-6
        total += seconds
        fixed += min(seconds, event_fixed)
    return total, fixed, total - fixed


def reprice_phase_seconds(events: Iterable[ProfileEvent], device: str | DeviceSpec) -> dict[str, float]:
    """Per-phase simulated seconds of recorded events under another device."""
    spec = device_preset(device) if isinstance(device, str) else device
    model = CostModel(spec)
    phases: dict[str, float] = {}
    for event in events:
        phases[event.phase] = phases.get(event.phase, 0.0) + model.seconds(event.cost)
    return phases


def format_seconds(value: float) -> str:
    """Consistent numeric formatting for table cells."""
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def format_gib(nbytes: float) -> str:
    return f"{nbytes / 1024**3:.2f}"
