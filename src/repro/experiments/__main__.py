"""Command-line entry point: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table2
    python -m repro.experiments table4 figure6
    python -m repro.experiments all
    repro-experiments table1 --profile test
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from ..backend import BACKEND_ENV_VAR
from ..datalog.engine import OVERLAP_ENV_VAR, PLANNER_ENV_VAR, SEMIJOIN_ENV_VAR, SHARDS_ENV_VAR
from ..datalog.planner import PLANNERS
from . import ALL_EXPERIMENTS
from .planner_bench import EXPLAIN_ENV_VAR
from .serving_workload import PROTECTED_ENV_VAR


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Optimizing Datalog for the GPU'.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names (e.g. table1 ... table6, figure1, figure6, "
        "ablation-materialization, ablation-load-factor), 'all', or 'list'",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="array backend for every engine run (numpy, cupy, guard, "
        f"guard:<name>); defaults to ${BACKEND_ENV_VAR} and then numpy",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for every GPUlog run (partitioned multi-device "
        f"evaluation); defaults to ${SHARDS_ENV_VAR} and then 1",
    )
    parser.add_argument(
        "--planner",
        default=None,
        choices=sorted(PLANNERS),
        help="join planner for every GPUlog run (greedy = seed syntactic "
        "order, cost = cost-based binary ordering, cost+wcoj = cost-based "
        "plus worst-case-optimal generic join for cyclic rules); defaults "
        f"to ${PLANNER_ENV_VAR} and then greedy",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="dump each rule version's chosen join order, algorithm, and "
        "estimated vs. observed cardinalities after planner-aware runs "
        f"(exports {EXPLAIN_ENV_VAR}=1)",
    )
    parser.add_argument(
        "--no-semijoin-filter",
        action="store_true",
        help="ablation: disable semi-join-filtered exchanges (plus EDB "
        "replication and head pre-routing) in sharded runs "
        f"(exports {SEMIJOIN_ENV_VAR}=0)",
    )
    parser.add_argument(
        "--no-exchange-overlap",
        action="store_true",
        help="ablation: disable double-buffered exchange/compute overlap in "
        f"sharded runs (exports {OVERLAP_ENV_VAR}=0)",
    )
    parser.add_argument(
        "--serving-protected",
        action="store_true",
        help="add epoch-transactional rows (disk WAL + per-epoch durable "
        "checkpoints) to the serving experiment next to the unprotected "
        f"baseline (exports {PROTECTED_ENV_VAR}=1)",
    )
    args = parser.parse_args(argv)
    if args.backend:
        # One switch retargets every Device the experiment drivers build.
        os.environ[BACKEND_ENV_VAR] = args.backend
    if args.shards is not None:
        if args.shards < 1:
            parser.error("--shards must be >= 1")
        # Same pattern as --backend: every GPULogEngine the drivers build
        # resolves its default shard count from this variable.
        os.environ[SHARDS_ENV_VAR] = str(args.shards)
    if args.planner:
        # Same pattern again: drivers that build engines without an explicit
        # planner resolve their default from this variable.
        os.environ[PLANNER_ENV_VAR] = args.planner
    if args.explain:
        os.environ[EXPLAIN_ENV_VAR] = "1"
    if args.no_semijoin_filter:
        os.environ[SEMIJOIN_ENV_VAR] = "0"
    if args.no_exchange_overlap:
        os.environ[OVERLAP_ENV_VAR] = "0"
    if args.serving_protected:
        os.environ[PROTECTED_ENV_VAR] = "1"

    requested = list(args.experiments)
    if not requested or requested == ["list"]:
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            print(f"  {name}")
        return 0
    if requested == ["all"]:
        requested = list(ALL_EXPERIMENTS)

    unknown = [name for name in requested if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    for name in requested:
        start = time.time()
        table = ALL_EXPERIMENTS[name]()
        elapsed = time.time() - start
        print(table.format())
        print(f"(regenerated {name} in {elapsed:.1f}s wall time)")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
