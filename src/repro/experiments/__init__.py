"""Experiment drivers: one per table and figure of the paper's evaluation."""

from .ablations import run_load_factor_ablation, run_materialization_ablation
from .figure1_sg_trace import FIGURE1_EDGES, FIGURE1_SG, run_figure1
from .figure6_breakdown import phase_fractions, run_figure6
from .runner import (
    ResultTable,
    clear_caches,
    get_dataset,
    get_trace,
    output_size,
    paper_output_size,
    project_seconds,
    query_program,
    reprice_events,
    reprice_phase_seconds,
    run_gpulog,
    scale_factor,
)
from .planner_bench import hub_graph, run_clique4, run_planner_workload, run_triangle, wedge_count
from .serving_workload import run_serving_workload, trickle_epochs
from .table1_ebm import PAPER_TABLE1, TABLE1_DATASETS, run_table1
from .table2_reach import PAPER_TABLE2, TABLE2_DATASETS, run_table2
from .table3_sg import PAPER_TABLE3, TABLE3_DATASETS, run_table3
from .table4_cspa import PAPER_TABLE4, TABLE4_DATASETS, run_table4
from .table5_hardware import PAPER_TABLE5, TABLE5_DEVICES, TABLE5_ROWS, run_table5
from .table6_microbench import PAPER_TABLE6, run_table6

ALL_EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "figure1": lambda: run_figure1()[0],
    "figure6": run_figure6,
    "ablation-materialization": run_materialization_ablation,
    "ablation-load-factor": run_load_factor_ablation,
    "triangle": run_triangle,
    "clique4": run_clique4,
    "serving": run_serving_workload,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "FIGURE1_EDGES",
    "FIGURE1_SG",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "ResultTable",
    "TABLE1_DATASETS",
    "TABLE2_DATASETS",
    "TABLE3_DATASETS",
    "TABLE4_DATASETS",
    "TABLE5_DEVICES",
    "TABLE5_ROWS",
    "clear_caches",
    "get_dataset",
    "get_trace",
    "hub_graph",
    "output_size",
    "paper_output_size",
    "phase_fractions",
    "project_seconds",
    "query_program",
    "reprice_events",
    "reprice_phase_seconds",
    "run_clique4",
    "run_figure1",
    "run_figure6",
    "run_gpulog",
    "run_load_factor_ablation",
    "run_materialization_ablation",
    "run_planner_workload",
    "run_serving_workload",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_triangle",
    "scale_factor",
    "trickle_epochs",
    "wedge_count",
]
