"""Serving-trickle experiment: incremental epoch latency vs re-fixpoint.

A serving tier keeps the fixpoint resident and maintains it differentially;
the alternative — what a stateless batch deployment pays — is a full
re-fixpoint over the whole EDB on every mutation batch.  This driver runs
both against the same trickle workloads as ``benchmarks/record_baseline.py
--serving-only`` (SG tree leaves and dense-digraph TC, |Δ|/|EDB| <= 1% per
epoch) and reports insert/retract epoch latency percentiles in simulated
seconds next to the re-fixpoint cost, so the O(Δ) vs O(|EDB|) gap is a
table rather than a single gate ratio.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from ..datalog.engine import GPULogEngine
from ..queries import REACH_SOURCE, SG_SOURCE
from ..serving import ServingEngine
from .runner import ResultTable

#: Default scales: large enough that the re-fixpoint dwarfs an epoch, small
#: enough for the experiments CLI smoke run.
SG_DEPTH, SG_FAN = 6, 3
TC_NODES, TC_DRAWS = 400, 3200

#: Set to 1 (``repro-experiments serving --serving-protected``) to add rows
#: for the epoch-transactional configuration: a disk WAL with
#: fsync-on-commit plus per-epoch durable checkpoints in a temp directory.
PROTECTED_ENV_VAR = "REPRO_SERVING_PROTECTED"


def sg_tree_edges(depth: int, fan: int) -> np.ndarray:
    """Balanced tree edges — the SG workload shape (many same-level pairs)."""
    edges: list[tuple[int, int]] = []
    frontier = [0]
    next_id = 1
    for _ in range(depth):
        grown: list[int] = []
        for parent in frontier:
            for _ in range(fan):
                edges.append((parent, next_id))
                grown.append(next_id)
                next_id += 1
        frontier = grown
    return np.array(edges, dtype=np.int64)


def dense_digraph_edges(nodes: int, draws: int, seed: int = 7) -> np.ndarray:
    """A dense random digraph (one giant SCC, |reach| ~ nodes^2).

    Dense is deliberate: on sparse graphs a single trickle batch can extend
    long paths and trigger many delta iterations, making epoch latency
    volatile; in a giant SCC each batch converges in ~2 iterations, so the
    percentiles measure incremental maintenance, not graph diameter.
    """
    rng = np.random.default_rng(seed)
    edges = np.unique(rng.integers(0, nodes, size=(draws, 2), dtype=np.int64), axis=0)
    return edges[edges[:, 0] != edges[:, 1]]


def trickle_epochs(
    source: str,
    edges: np.ndarray,
    count_name: str,
    *,
    batch: int,
    epochs: int,
    retract_epochs: int,
    protected: bool = False,
) -> dict:
    """Run the trickle script against one resident engine; return latencies.

    The final ``batch * epochs`` EDB rows are held out of the bootstrap and
    injected one batch per epoch; ``retract_epochs`` then delete the first
    few batches again via DRed.  The comparator is the batch engine's full
    re-fixpoint over the same final EDB, checked for count equality.
    ``protected`` runs the engine in its epoch-transactional configuration:
    a disk WAL (fsync on commit markers) plus a durable checkpoint per
    epoch, both in a temp directory discarded afterwards.
    """
    held = edges[-batch * epochs :]
    base = edges[: -batch * epochs]
    insert_sims: list[float] = []
    retract_sims: list[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        extra: dict = {}
        if protected:
            from ..relational import DiskCheckpointStore
            from ..serving import DiskWal

            extra = {
                "wal": DiskWal(os.path.join(tmp, "wal.jsonl")),
                "checkpoint_store": DiskCheckpointStore(os.path.join(tmp, "ckpt")),
            }
        with ServingEngine(
            source, {"edge": base}, background=False, fault_plan="none", **extra
        ) as engine:
            for index in range(epochs):
                chunk = held[index * batch : (index + 1) * batch]
                insert_sims.append(
                    engine.submit(inserts={"edge": chunk}).result().simulated_seconds
                )
            final_count = engine.query(count_name).count
            for index in range(retract_epochs):
                chunk = held[index * batch : (index + 1) * batch]
                retract_sims.append(
                    engine.submit(retracts={"edge": chunk}).result().simulated_seconds
                )

    refixpoint = GPULogEngine(
        device="h100", oom_enabled=False, collect_relations=False, fault_plan="none"
    )
    try:
        refixpoint.add_fact_array("edge", edges)
        result = refixpoint.run(source)
        if result.count(count_name) != final_count:
            raise AssertionError(
                f"serving diverged: |{count_name}|={final_count} vs "
                f"re-fixpoint {result.count(count_name)}"
            )
        full_simulated = result.elapsed_seconds
    finally:
        refixpoint.close()
    return {
        "edges": int(edges.shape[0]),
        "batch": batch,
        "count": final_count,
        "full": full_simulated,
        "inserts": insert_sims,
        "retracts": retract_sims,
    }


def _milliseconds(value: float) -> str:
    return f"{value * 1e3:.3f}"


def _add_rows(table: ResultTable, name: str, info: dict) -> None:
    for phase, sims in (("insert", info["inserts"]), ("retract", info["retracts"])):
        if not sims:
            continue
        p50 = float(np.percentile(sims, 50))
        p95 = float(np.percentile(sims, 95))
        worst = max(sims)
        table.add_row(
            name,
            phase,
            len(sims),
            f"{info['batch'] / info['edges'] * 100:.2f}%",
            _milliseconds(p50),
            _milliseconds(p95),
            _milliseconds(worst),
            _milliseconds(info["full"]),
            f"{info['full'] / max(1e-12, p50):.1f}x",
        )


def run_serving_workload(
    sg_depth: int = SG_DEPTH,
    sg_fan: int = SG_FAN,
    tc_nodes: int = TC_NODES,
    tc_draws: int = TC_DRAWS,
) -> ResultTable:
    """Epoch-latency percentiles for both trickle workloads vs re-fixpoint."""
    table = ResultTable(
        title="Serving trickle epochs vs full re-fixpoint (simulated milliseconds)",
        headers=[
            "workload", "phase", "epochs", "Δ/EDB",
            "p50", "p95", "max", "re-fixpoint", "p50 speedup",
        ],
    )
    protected_arms = (False, True) if os.environ.get(PROTECTED_ENV_VAR) == "1" else (False,)
    counts: dict[str, int] = {}
    for name, source, edges, count_name, batch, epochs in (
        (f"sg tree d{sg_depth}f{sg_fan}", SG_SOURCE, sg_tree_edges(sg_depth, sg_fan), "sg", 8, 8),
        (f"tc dense n={tc_nodes}", REACH_SOURCE, dense_digraph_edges(tc_nodes, tc_draws), "reach", 16, 6),
    ):
        for protected in protected_arms:
            info = trickle_epochs(
                source, edges, count_name,
                batch=batch, epochs=epochs, retract_epochs=4, protected=protected,
            )
            label = f"{name} [protected]" if protected else name
            _add_rows(table, label, info)
            counts[count_name] = info["count"]
    table.add_note(
        f"final |sg|={counts['sg']}, |reach|={counts['reach']}; every epoch verified "
        "against a from-scratch fixpoint over the same final EDB"
    )
    table.add_note(
        "retract epochs run DRed (over-delete + re-derive) and may legitimately "
        "cost more than insert epochs; only insert epochs are CI-gated"
    )
    if len(protected_arms) > 1:
        table.add_note(
            "[protected] rows run the epoch-transactional configuration: disk "
            "WAL with fsync-on-commit plus a durable checkpoint every epoch "
            "(CI caps the epoch-latency overhead at 1.15x the unprotected run)"
        )
    return table
