"""Figure 1 — the per-iteration trace of the Same Generation example.

The paper walks through three semi-naïve iterations of SG on a 9-node example
graph, showing the contents of SG_new, SG_delta and SG_full at each step.
This driver evaluates the same graph and reports the per-iteration delta and
full sizes plus the final SG relation, which the tests compare against the
figure's exact tuples.
"""

from __future__ import annotations

import numpy as np

from ..datalog.engine import GPULogEngine
from ..queries import sg_program
from .runner import ResultTable

#: The example graph of Figures 1 and 2 (edges of the 9-node tree-like DAG).
FIGURE1_EDGES = (
    (0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (2, 5),
    (3, 6), (4, 7), (4, 8), (5, 8),
)

#: Final SG relation shown in the figure (iteration 2's full version).
FIGURE1_SG = {
    (1, 2), (2, 1), (3, 4), (4, 3), (4, 5), (5, 4), (7, 8), (8, 7),
    (3, 5), (5, 3), (6, 7), (7, 6), (6, 8), (8, 6),
}

#: Delta sizes after each iteration in the figure: 8 seed tuples, then 6 new,
#: then 0 (fixpoint).
FIGURE1_DELTA_SIZES = (8, 6, 0)


def run_figure1(device: str = "h100") -> tuple[ResultTable, set[tuple[int, int]]]:
    """Evaluate SG on the Figure 1 example; returns the table and the SG set."""
    engine = GPULogEngine(device=device)
    engine.add_fact_array("edge", np.asarray(FIGURE1_EDGES, dtype=np.int64))
    result = engine.run(sg_program())
    sg = {(int(a), int(b)) for a, b in result.relation("sg")}

    table = ResultTable(
        title="Figure 1: per-iteration SG trace on the example graph",
        headers=["Iteration", "New", "Delta", "Full"],
    )
    for item in result.iteration_history.get("sg", []):
        table.add_row(item.iteration, item.new_count, item.delta_count, item.full_count)
    table.add_note(f"final |SG| = {len(sg)} (figure shows {len(FIGURE1_SG)})")
    engine.close()
    return table, sg
