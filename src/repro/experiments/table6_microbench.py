"""Table 6 — sort / merge / allocation micro-benchmarks: A100 GPU vs Zen 3 CPU.

The paper ports GPUlog's two most expensive primitives (stable sort of tuple
rows and sorted merge) to oneTBB and compares them against the GPU versions on
randomly generated 2-ary tuples, together with the buffer allocation and
initialisation time.  Here the same primitives run on the simulated A100 and
EPYC 7543P devices; the sizes are scaled down by SIZE_SCALE and the reported
times are projected back up (the primitives are bandwidth-bound and scale
linearly, which is exactly the paper's point).

Expected shape (paper): the GPU is roughly 10-20x faster on every operation
and size, mirroring the memory-bandwidth ratio of the two devices.
"""

from __future__ import annotations

import numpy as np

from ..device.cost import KernelCost
from ..device.device import Device
from .runner import ResultTable, format_seconds

PAPER_SIZES = (1_000_000, 10_000_000, 50_000_000, 100_000_000, 500_000_000)
SIZE_SCALE = 1000  # synthetic arrays are 1/1000th of the paper's tuple counts

#: Paper Table 6 (seconds): size -> (sort A100, sort Zen3, merge A100, merge Zen3, mem A100, mem Zen3)
PAPER_TABLE6 = {
    1_000_000: (0.12, 1.09, 0.03, 0.06, 0.03, 0.02),
    10_000_000: (0.39, 7.5, 0.08, 0.64, 0.17, 0.05),
    50_000_000: (1.63, 30.09, 0.18, 1.96, 0.11, 0.88),
    100_000_000: (2.9, 64.02, 0.3, 3.56, 0.18, 1.7),
    500_000_000: (15.66, 351.4, 1.21, 15.68, 0.82, 8.59),
}


def _microbench(device: Device, n_tuples: int, seed: int = 7) -> tuple[float, float, float]:
    """Run sort, merge and allocation primitives; return their simulated seconds."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, 1 << 30, size=(n_tuples, 2), dtype=np.int64)
    other = rng.integers(0, 1 << 30, size=(n_tuples, 2), dtype=np.int64)

    before = device.elapsed_seconds
    sorted_rows = device.kernels.sort_rows(rows, label="microbench.sort")
    sort_seconds = device.elapsed_seconds - before

    other_sorted = other[np.lexsort((other[:, 1], other[:, 0]))]
    before = device.elapsed_seconds
    device.kernels.merge_sorted_rows(sorted_rows, other_sorted, label="microbench.merge")
    merge_seconds = device.elapsed_seconds - before

    before = device.elapsed_seconds
    device.charge(
        KernelCost(
            kernel="microbench.alloc",
            alloc_bytes=float(rows.nbytes),
            allocations=1,
            launches=0,
        )
    )
    alloc_seconds = device.elapsed_seconds - before
    return sort_seconds, merge_seconds, alloc_seconds


def run_table6(paper_sizes=PAPER_SIZES, size_scale: int = SIZE_SCALE) -> ResultTable:
    """Regenerate Table 6 by running the primitives on both simulated devices."""
    table = ResultTable(
        title="Table 6: sort / merge / allocation on A100 vs EPYC 7543P (projected seconds)",
        headers=[
            "# Tuples",
            "Sort A100", "Sort Zen3", "Sort ratio",
            "Merge A100", "Merge Zen3", "Merge ratio",
            "Alloc A100", "Alloc Zen3",
        ],
    )
    for paper_size in paper_sizes:
        n = max(1000, int(paper_size / size_scale))
        gpu = Device("a100", oom_enabled=False)
        cpu = Device("epyc-7543p", oom_enabled=False)
        gpu_sort, gpu_merge, gpu_alloc = _microbench(gpu, n)
        cpu_sort, cpu_merge, cpu_alloc = _microbench(cpu, n)
        factor = size_scale
        table.add_row(
            f"{paper_size:,}",
            format_seconds(gpu_sort * factor),
            format_seconds(cpu_sort * factor),
            f"{cpu_sort / max(gpu_sort, 1e-12):.1f}x",
            format_seconds(gpu_merge * factor),
            format_seconds(cpu_merge * factor),
            f"{cpu_merge / max(gpu_merge, 1e-12):.1f}x",
            format_seconds(gpu_alloc * factor),
            format_seconds(cpu_alloc * factor),
        )
    table.add_note(
        "Arrays are generated at 1/1000th of the paper's sizes and times are projected linearly; "
        "the claim under test is the ~10-20x GPU advantage on every primitive and size."
    )
    return table
