"""Figure 6 — phase breakdown of CSPA on the NVIDIA A100.

The paper splits GPUlog's CSPA runtime into five phases — deduplication,
indexing delta, indexing full, merging delta into full, and the join itself —
and observes that join (~39 %) and merge (~42 %) dominate.  This driver
re-prices the kernel events of the cached CSPA runs under the A100
specification and aggregates them per phase.
"""

from __future__ import annotations

from ..device.profiler import (
    FIGURE6_PHASES,
    PHASE_DEDUPLICATION,
    PHASE_INDEX_DELTA,
    PHASE_INDEX_FULL,
    PHASE_JOIN,
    PHASE_MERGE,
)
from .runner import ResultTable, reprice_phase_seconds, run_gpulog

FIGURE6_DATASETS = ("httpd", "linux", "postgresql")

#: Approximate fractions reported in the paper's text (join 39 %, merge 42 %).
PAPER_DOMINANT_PHASES = (PHASE_JOIN, PHASE_MERGE)


def phase_fractions(dataset: str, device: str = "a100", profile: str = "bench") -> dict[str, float]:
    """Phase-time fractions of one CSPA run re-priced for ``device``."""
    _, events = run_gpulog(dataset, "cspa", profile)
    seconds = reprice_phase_seconds(events, device)
    relevant = {phase: seconds.get(phase, 0.0) for phase in FIGURE6_PHASES}
    other = sum(seconds.values()) - sum(relevant.values())
    relevant["other"] = max(0.0, other)
    total = sum(relevant.values())
    if total <= 0:
        return {phase: 0.0 for phase in relevant}
    return {phase: value / total for phase, value in relevant.items()}


def run_figure6(datasets=FIGURE6_DATASETS, device: str = "a100", profile: str = "bench") -> ResultTable:
    """Regenerate the Figure 6 phase breakdown."""
    table = ResultTable(
        title="Figure 6: GPUlog CSPA phase breakdown on the NVIDIA A100 (% of runtime)",
        headers=["Dataset", "Dedup", "Index delta", "Index full", "Merge", "Join", "Other"],
    )
    for name in datasets:
        fractions = phase_fractions(name, device, profile)
        table.add_row(
            name,
            f"{100 * fractions[PHASE_DEDUPLICATION]:.1f}%",
            f"{100 * fractions[PHASE_INDEX_DELTA]:.1f}%",
            f"{100 * fractions[PHASE_INDEX_FULL]:.1f}%",
            f"{100 * fractions[PHASE_MERGE]:.1f}%",
            f"{100 * fractions[PHASE_JOIN]:.1f}%",
            f"{100 * fractions['other']:.1f}%",
        )
    table.add_note("Paper: join ~39% and merge ~42% dominate; the claim under test is that these two are the largest phases.")
    return table
