"""Table 2 — REACH runtime: GPUlog vs Soufflé vs GPUJoin vs cuDF.

Every engine is run on the same synthetic graph; the baselines reuse a shared
workload trace.  Runtimes are projected to the paper's dataset sizes using the
scale factor (paper transitive-closure size / synthetic transitive-closure
size), and memory capacities are scaled by the same factor so that OOM
behaviour is comparable.

Expected shape (paper): GPUlog is fastest everywhere; GPUJoin is >=3x slower
where it completes and OOMs on the largest graphs; cuDF OOMs on all but the
smallest graph; Soufflé is roughly 10-45x slower than GPUlog.
"""

from __future__ import annotations

from ..engines import CudfLikeEngine, GPUJoinEngine, SouffleCPUEngine
from ..device.spec import NVIDIA_H100
from .runner import (
    ResultTable,
    format_seconds,
    get_dataset,
    get_trace,
    output_size,
    project_seconds,
    query_program,
    run_gpulog,
    scale_factor,
)

TABLE2_DATASETS = ("com-dblp", "fe_ocean", "vsp_finan", "Gnutella31", "fe_body", "SF.cedge")

#: Paper Table 2 runtimes in seconds ("OOM" where the engine ran out of memory).
PAPER_TABLE2 = {
    "com-dblp": {"gpulog": 14.30, "souffle": 232.99, "gpujoin": "OOM", "cudf": "OOM"},
    "fe_ocean": {"gpulog": 23.36, "souffle": 292.15, "gpujoin": 100.30, "cudf": "OOM"},
    "vsp_finan": {"gpulog": 21.91, "souffle": 239.33, "gpujoin": 125.94, "cudf": "OOM"},
    "Gnutella31": {"gpulog": 5.58, "souffle": 96.82, "gpujoin": "OOM", "cudf": "OOM"},
    "fe_body": {"gpulog": 3.76, "souffle": 23.40, "gpujoin": 22.35, "cudf": "OOM"},
    "SF.cedge": {"gpulog": 1.63, "souffle": 33.27, "gpujoin": 3.76, "cudf": 64.29},
}


def run_table2(datasets=TABLE2_DATASETS, profile: str = "bench") -> ResultTable:
    """Regenerate Table 2 on the synthetic datasets."""
    table = ResultTable(
        title="Table 2: REACH runtime, GPUlog (H100) vs Soufflé / GPUJoin / cuDF (projected seconds)",
        headers=["Dataset", "Reach size", "GPUlog", "Souffle", "GPUJoin", "cuDF", "Souffle/GPUlog"],
    )
    program = query_program("reach")
    for name in datasets:
        dataset = get_dataset(name, profile)
        trace = get_trace(name, "reach", profile)
        measured = output_size(trace, "reach")
        scale = scale_factor(name, "reach", measured)
        capacity = int(NVIDIA_H100.memory_capacity_bytes / scale)

        gpulog_result, _ = run_gpulog(name, "reach", profile)
        gpulog_projected = project_seconds(
            gpulog_result.fixed_seconds, gpulog_result.variable_seconds, scale
        )

        souffle = SouffleCPUEngine().run(program, dataset.facts(), trace=trace)
        gpujoin = GPUJoinEngine(memory_capacity_bytes=capacity).run(program, dataset.facts(), trace=trace)
        cudf = CudfLikeEngine(memory_capacity_bytes=capacity).run(program, dataset.facts(), trace=trace)

        souffle_projected = souffle.projected_seconds(scale)
        table.add_row(
            name,
            measured,
            format_seconds(gpulog_projected),
            format_seconds(souffle_projected),
            format_seconds(gpujoin.projected_seconds(scale)) if gpujoin.ok else gpujoin.display_time(),
            format_seconds(cudf.projected_seconds(scale)) if cudf.ok else cudf.display_time(),
            f"{souffle_projected / max(gpulog_projected, 1e-12):.1f}x",
        )
    table.add_note(
        "Projected to paper scale via (paper reach size / synthetic reach size); "
        "paper reference values are recorded in PAPER_TABLE2 and EXPERIMENTS.md."
    )
    return table
