"""Table 3 — Same Generation (SG): GPUlog vs GPUlog-HIP vs Soufflé vs cuDF.

GPUJoin is absent from the paper's Table 3 because it does not support the
n-way join of SG; the same is true here.  The "HIP" column is GPUlog's kernel
schedule re-priced under the AMD MI250 device specification (the algorithm is
identical; only the cost model changes), mirroring the paper's GPUlog-HIP
port, which is slower mainly because of the single usable chiplet and the
missing RMM memory pool.

Expected shape (paper): GPUlog fastest, HIP roughly 2.5-4x slower, Soufflé
about an order of magnitude slower, cuDF OOM on the four large graphs and
slower than GPUlog where it completes.
"""

from __future__ import annotations

from ..device.spec import NVIDIA_H100
from ..engines import CudfLikeEngine, SouffleCPUEngine
from .runner import (
    ResultTable,
    format_seconds,
    get_dataset,
    get_trace,
    output_size,
    project_seconds,
    query_program,
    reprice_events,
    run_gpulog,
    scale_factor,
)

TABLE3_DATASETS = ("fe_body", "loc-Brightkite", "fe_sphere", "SF.cedge", "CA-HepTH", "ego-Facebook")

#: Paper Table 3 runtimes in seconds ("OOM" where cuDF ran out of memory).
PAPER_TABLE3 = {
    "fe_body": {"gpulog": 5.05, "hip": 19.57, "souffle": 74.26, "cudf": "OOM"},
    "loc-Brightkite": {"gpulog": 3.42, "hip": 14.00, "souffle": 48.18, "cudf": "OOM"},
    "fe_sphere": {"gpulog": 2.36, "hip": 8.48, "souffle": 48.12, "cudf": "OOM"},
    "SF.cedge": {"gpulog": 5.54, "hip": 20.57, "souffle": 68.88, "cudf": "OOM"},
    "CA-HepTH": {"gpulog": 2.79, "hip": 5.92, "souffle": 20.12, "cudf": 21.24},
    "ego-Facebook": {"gpulog": 1.23, "hip": 2.81, "souffle": 17.01, "cudf": 19.07},
}


def run_table3(datasets=TABLE3_DATASETS, profile: str = "bench") -> ResultTable:
    """Regenerate Table 3 on the synthetic datasets."""
    table = ResultTable(
        title="Table 3: SG runtime, GPUlog (H100) vs GPUlog-HIP (MI250) vs Soufflé vs cuDF (projected seconds)",
        headers=["Dataset", "SG size", "GPUlog", "HIP", "Souffle", "cuDF", "Souffle/GPUlog"],
    )
    program = query_program("sg")
    for name in datasets:
        dataset = get_dataset(name, profile)
        trace = get_trace(name, "sg", profile)
        measured = output_size(trace, "sg")
        scale = scale_factor(name, "sg", measured)
        capacity = int(NVIDIA_H100.memory_capacity_bytes / scale)

        gpulog_result, events = run_gpulog(name, "sg", profile)
        gpulog_projected = project_seconds(gpulog_result.fixed_seconds, gpulog_result.variable_seconds, scale)
        _, hip_fixed, hip_variable = reprice_events(events, "mi250")
        hip_projected = project_seconds(hip_fixed, hip_variable, scale)

        souffle = SouffleCPUEngine().run(program, dataset.facts(), trace=trace)
        cudf = CudfLikeEngine(memory_capacity_bytes=capacity).run(program, dataset.facts(), trace=trace)
        souffle_projected = souffle.projected_seconds(scale)

        table.add_row(
            name,
            measured,
            format_seconds(gpulog_projected),
            format_seconds(hip_projected),
            format_seconds(souffle_projected),
            format_seconds(cudf.projected_seconds(scale)) if cudf.ok else cudf.display_time(),
            f"{souffle_projected / max(gpulog_projected, 1e-12):.1f}x",
        )
    table.add_note("GPUJoin does not support SG (n-way join), matching its absence from the paper's table.")
    return table
