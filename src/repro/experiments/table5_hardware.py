"""Table 5 — GPUlog across GPU vendors and models (H100, A100, MI250, MI50).

The same GPUlog runs (SG on three graphs, CSPA on three program graphs) are
priced under four device specifications by replaying the recorded kernel
costs.  This mirrors the paper's setup: the CUDA and HIP engines share an
identical API and algorithm, and the performance differences come from the
hardware (SM count, bandwidth, chiplet topology) and from the missing RMM
allocator on ROCm.

Expected shape (paper): H100 < A100 < MI250 < MI50 runtimes on every row, with
A100 roughly 2x the H100 and MI50 roughly 2x the MI250.
"""

from __future__ import annotations

from .runner import (
    ResultTable,
    format_seconds,
    output_size,
    project_seconds,
    reprice_events,
    run_gpulog,
    scale_factor,
)

TABLE5_ROWS = (
    ("sg", "fe_body"),
    ("sg", "loc-Brightkite"),
    ("sg", "fe_sphere"),
    ("cspa", "httpd"),
    ("cspa", "linux"),
    ("cspa", "postgresql"),
)

TABLE5_DEVICES = ("h100", "a100", "mi250", "mi50")

#: Paper Table 5 runtimes (seconds) keyed by (query, dataset) then device.
PAPER_TABLE5 = {
    ("sg", "fe_body"): {"h100": 5.05, "a100": 8.61, "mi250": 19.57, "mi50": 41.99},
    ("sg", "loc-Brightkite"): {"h100": 3.42, "a100": 6.79, "mi250": 14.00, "mi50": 30.05},
    ("sg", "fe_sphere"): {"h100": 2.36, "a100": 4.64, "mi250": 8.48, "mi50": 19.426},
    ("cspa", "httpd"): {"h100": 1.33, "a100": 2.73, "mi250": 6.75, "mi50": 15.27},
    ("cspa", "linux"): {"h100": 0.39, "a100": 0.77, "mi250": 1.39, "mi50": 3.32},
    ("cspa", "postgresql"): {"h100": 1.27, "a100": 2.68, "mi250": 6.79, "mi50": 14.55},
}


def run_table5(rows=TABLE5_ROWS, devices=TABLE5_DEVICES, profile: str = "bench") -> ResultTable:
    """Regenerate Table 5 by re-pricing GPUlog kernel schedules per device."""
    table = ResultTable(
        title="Table 5: GPUlog runtime across GPUs (projected seconds)",
        headers=["Query", "Dataset"] + [device.upper() for device in devices],
    )
    for query, dataset in rows:
        result, events = run_gpulog(dataset, query, profile)
        scale = scale_factor(dataset, query, output_size(result, query))
        cells = []
        for device in devices:
            total, fixed, variable = reprice_events(events, device)
            cells.append(format_seconds(project_seconds(fixed, variable, scale)))
        table.add_row(query.upper(), dataset, *cells)
    table.add_note(
        "Each row is one GPUlog execution whose kernel costs are re-priced under each device "
        "specification; the ordering H100 < A100 < MI250 < MI50 is the claim under test."
    )
    return table
