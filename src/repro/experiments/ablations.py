"""Ablations for the two design choices the paper argues for qualitatively.

* **Temporarily-materialized n-way joins (Section 5.2)** — SG's recursive rule
  is evaluated both as two materialized binary joins (GPUlog's strategy) and
  as one fused nested-join kernel whose warp divergence is charged on the
  combined per-thread workload (Figure 5's baseline).  The claim under test is
  that the materialized plan spends less simulated time in the join phase.

* **HISA load factor (Section 6.4)** — HISA keeps its hash table small by
  storing only one entry per distinct join key, which lets it run at a load
  factor of 0.8; GPUJoin-style tables that store whole tuples need a low load
  factor for fast construction.  The ablation sweeps the load factor and
  reports table size and average probe length.
"""

from __future__ import annotations

import numpy as np

from ..device.device import Device
from ..device.profiler import PHASE_JOIN
from ..relational.hashing import hash_rows
from ..relational.hashtable import OpenAddressingHashTable
from .runner import ResultTable, format_seconds, run_gpulog


# ----------------------------------------------------------------------
# Ablation 1: temporary materialization vs fused n-way join
# ----------------------------------------------------------------------

def run_materialization_ablation(dataset: str = "loc-Brightkite", profile: str = "bench") -> ResultTable:
    """Compare materialized vs fused evaluation of SG's three-way join.

    The comparison is made on the *data-proportional* part of the runtime
    (and on the total projected to paper scale): at full data volumes the
    fused kernel's divergence-inflated memory traffic dominates, which is the
    paper's argument for materializing the temporary; at the scaled synthetic
    size the extra kernel launches of the materialized plan would otherwise
    mask the effect.
    """
    materialized, _ = run_gpulog(dataset, "sg", profile, materialize_nway=True, use_cache=False)
    fused, _ = run_gpulog(dataset, "sg", profile, materialize_nway=False, use_cache=False)

    table = ResultTable(
        title=f"Ablation: temporarily-materialized vs fused n-way join (SG on {dataset}, H100)",
        headers=["Plan", "Total (s)", "Data-proportional (s)", "Join phase (s)", "SG size"],
    )
    table.add_row(
        "materialized (GPUlog)",
        format_seconds(materialized.elapsed_seconds),
        format_seconds(materialized.variable_seconds),
        format_seconds(materialized.phase_seconds.get(PHASE_JOIN, 0.0)),
        materialized.count("sg"),
    )
    table.add_row(
        "fused nested join",
        format_seconds(fused.elapsed_seconds),
        format_seconds(fused.variable_seconds),
        format_seconds(fused.phase_seconds.get(PHASE_JOIN, 0.0)),
        fused.count("sg"),
    )
    ratio = fused.variable_seconds / max(materialized.variable_seconds, 1e-12)
    table.add_note(
        f"fused / materialized data-proportional time = {ratio:.2f}x "
        "(the paper argues materialization wins via SIMT occupancy)"
    )
    return table


# ----------------------------------------------------------------------
# Ablation 2: hash-table load factor
# ----------------------------------------------------------------------

def run_load_factor_ablation(
    n_keys: int = 200_000,
    load_factors: tuple[float, ...] = (0.4, 0.6, 0.8, 0.95),
    seed: int = 13,
) -> ResultTable:
    """Sweep the open-addressing load factor: memory vs probe length."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 40, size=(n_keys, 2), dtype=np.int64)
    keys = np.unique(keys, axis=0)
    hashes = hash_rows(keys)
    values = np.arange(hashes.size, dtype=np.int64)

    table = ResultTable(
        title="Ablation: open-addressing load factor (HISA uses 0.8; GPUJoin-style tables need ~0.4)",
        headers=["Load factor", "Table slots", "Table MiB", "Avg probes", "Build rounds"],
    )
    for load_factor in load_factors:
        device = Device("h100", oom_enabled=False)
        ht = OpenAddressingHashTable(device, hashes, values, load_factor=load_factor, label="ablation")
        table.add_row(
            f"{load_factor:.2f}",
            ht.capacity,
            f"{ht.nbytes / 2**20:.1f}",
            f"{ht.stats.average_probes:.2f}",
            ht.stats.build_rounds,
        )
    table.add_note(
        "Because HISA stores one entry per distinct join key (not per tuple), it can afford a 0.8 "
        "load factor with short probe chains; storing whole tuples forces lower load factors and "
        "a proportionally larger memory footprint."
    )
    return table
