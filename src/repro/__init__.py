"""repro — a reproduction of "Optimizing Datalog for the GPU" (ASPLOS 2025).

The package implements GPUlog (a Datalog engine built on the Hash-Indexed
Sorted Array) on top of a simulated SIMT device, plus the baseline systems the
paper compares against (a Soufflé-like CPU engine, a GPUJoin-like engine and a
cuDF-like dataframe engine), the benchmark workloads (REACH, SG, CSPA) and an
experiment harness regenerating every table and figure of the evaluation.

Quickstart
----------
>>> from repro import GPULogEngine, Program
>>> program = Program.parse('''
...     reach(x, y) :- edge(x, y).
...     reach(x, y) :- edge(x, z), reach(z, y).
... ''')
>>> engine = GPULogEngine(device="h100")
>>> engine.add_facts("edge", [(0, 1), (1, 2), (2, 3)])
>>> result = engine.run(program)
>>> sorted(result.relation("reach"))[:3]
[(0, 1), (0, 2), (0, 3)]
"""

from .backend import (
    ArrayBackend,
    GuardBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .datalog import (
    Atom,
    Comparison,
    Constant,
    EvaluationResult,
    GPULogEngine,
    Program,
    Rule,
    Variable,
    parse_program,
)
from .device import Device, DeviceSpec, device_preset, list_device_presets
from .relational import HISA, Relation, ShardedRelation

__version__ = "1.0.0"

__all__ = [
    "ArrayBackend",
    "GuardBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "Atom",
    "Comparison",
    "Constant",
    "Device",
    "DeviceSpec",
    "EvaluationResult",
    "GPULogEngine",
    "HISA",
    "Program",
    "Relation",
    "Rule",
    "ShardedRelation",
    "Variable",
    "__version__",
    "device_preset",
    "list_device_presets",
    "parse_program",
]
