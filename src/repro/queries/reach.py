"""REACH: transitive closure (Section 1 of the paper).

The common baseline query of the evaluation: it stresses iterated binary
joins without any need for temporary materialization.  The recursive rule is
written with the recursive atom in the right-linear position, matching the
join plan discussed in Section 5.1 (iterate the delta of ``reach``, probe the
``edge`` relation's HISA index).
"""

from __future__ import annotations

from ..datalog.ast import Program

REACH_SOURCE = """
// Transitive closure of a directed edge relation.
reach(x, y) :- edge(x, y).
reach(x, y) :- edge(x, z), reach(z, y).
"""

#: EDB relation expected by the program.
INPUT_RELATION = "edge"
#: IDB relation holding the answer.
OUTPUT_RELATION = "reach"


def reach_program() -> Program:
    """The REACH program as a parsed :class:`~repro.datalog.ast.Program`."""
    return Program.parse(REACH_SOURCE, name="reach")
