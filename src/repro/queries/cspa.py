"""CSPA: context-sensitive points-to / value-flow analysis (Section 6.5).

This is the Graspan formulation of the interprocedural dataflow analysis the
paper reproduces on httpd, Linux and PostgreSQL, over two EDB relations:

* ``assign(dst, src)`` — a value flows from ``src`` into ``dst``;
* ``dereference(ptr, val)`` — ``val`` is loaded through pointer ``ptr``.

Three mutually recursive IDB relations are derived:

* ``valueflow(x, y)`` — the value of ``y`` may flow into ``x``;
* ``valuealias(x, y)`` — ``x`` and ``y`` may hold the same value;
* ``memalias(x, y)`` — ``x`` and ``y`` may refer to the same memory object.

Context sensitivity is achieved in the input encoding (Graspan clones
functions per call site), so the Datalog program itself is context
insensitive — exactly as in the paper's experimental setup.
"""

from __future__ import annotations

from ..datalog.ast import Program

CSPA_SOURCE = """
// Value flow through direct assignment and through aliased memory.
valueflow(y, x) :- assign(y, x).
valueflow(x, y) :- assign(x, z), memalias(z, y).
valueflow(x, y) :- valueflow(x, z), valueflow(z, y).
valueflow(x, x) :- assign(x, y).
valueflow(x, x) :- assign(y, x).

// Two expressions alias if a common value flows into both.
valuealias(x, y) :- valueflow(z, x), valueflow(z, y).
valuealias(x, y) :- valueflow(z, x), memalias(z, w), valueflow(w, y).

// Memory aliasing through dereferences of value-aliased pointers.
memalias(x, w) :- dereference(y, x), valuealias(y, z), dereference(z, w).
"""

#: EDB relations expected by the program.
INPUT_RELATIONS = ("assign", "dereference")
#: IDB relations reported in Table 4.
OUTPUT_RELATIONS = ("valueflow", "valuealias", "memalias")


def cspa_program() -> Program:
    """The CSPA program as a parsed :class:`~repro.datalog.ast.Program`."""
    return Program.parse(CSPA_SOURCE, name="cspa")
