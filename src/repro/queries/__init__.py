"""The three benchmark Datalog programs of the paper's evaluation."""

from .cspa import CSPA_SOURCE, cspa_program
from .reach import REACH_SOURCE, reach_program
from .sg import SG_SOURCE, sg_program

__all__ = [
    "CSPA_SOURCE",
    "REACH_SOURCE",
    "SG_SOURCE",
    "cspa_program",
    "reach_program",
    "sg_program",
]
