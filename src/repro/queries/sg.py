"""SG: the Same Generation query (Section 2 of the paper).

Two nodes are in the same generation if they share a parent, or if they have
parents that are themselves in the same generation.  The recursive rule is a
three-way join (``edge x sg x edge``), which is what motivates the paper's
temporarily-materialized n-way join strategy (Section 5.2): GPUlog splits it
into two materialized binary joins so that every kernel launch has a balanced
per-thread workload.
"""

from __future__ import annotations

from ..datalog.ast import Program

SG_SOURCE = """
// Same Generation: nodes sharing a topological level.
sg(x, y) :- edge(p, x), edge(p, y), x != y.
sg(x, y) :- edge(a, x), sg(a, b), edge(b, y), x != y.
"""

#: EDB relation expected by the program.
INPUT_RELATION = "edge"
#: IDB relation holding the answer.
OUTPUT_RELATION = "sg"


def sg_program() -> Program:
    """The SG program as a parsed :class:`~repro.datalog.ast.Program`."""
    return Program.parse(SG_SOURCE, name="sg")
