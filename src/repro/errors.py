"""Exception hierarchy shared by every subsystem of the reproduction.

Keeping all exceptions in one module lets callers catch coarse categories
(``ReproError``) or precise conditions (``DeviceOutOfMemoryError``) without
importing implementation modules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class DeviceError(ReproError):
    """Base class for errors raised by the simulated device."""


class DeviceOutOfMemoryError(DeviceError):
    """Raised when an allocation exceeds the simulated device memory capacity.

    Mirrors a CUDA ``cudaErrorMemoryAllocation``; the comparison engines use
    it to reproduce the paper's OOM entries in Tables 2 and 3.
    """

    def __init__(self, requested_bytes: int, in_use_bytes: int, capacity_bytes: int):
        self.requested_bytes = int(requested_bytes)
        self.in_use_bytes = int(in_use_bytes)
        self.capacity_bytes = int(capacity_bytes)
        super().__init__(
            f"device out of memory: requested {requested_bytes} B with "
            f"{in_use_bytes} B in use of {capacity_bytes} B capacity"
        )


class DeviceBufferError(DeviceError):
    """Raised on invalid buffer operations (double free, use after free)."""


#: Deprecated alias kept for backward compatibility; the trailing-underscore
#: name used to leak into user-facing tracebacks.  New code should catch
#: :class:`DeviceBufferError`.
BufferError_ = DeviceBufferError


class TransientDeviceError(DeviceError):
    """A retryable kernel-launch failure (the simulated analogue of a CUDA
    ``cudaErrorLaunchFailure`` that a driver-level retry would clear).

    Raised only by an installed :class:`~repro.device.faults.FaultPlan`; the
    evaluators retry the failed operator with exponential backoff.
    """

    def __init__(self, message: str, *, kernel: str = ""):
        self.kernel = kernel
        super().__init__(message)


class ExchangeError(DeviceError):
    """A device<->device interconnect transfer failed mid-exchange.

    The sharded evaluator treats this as the crash of the *receiving* shard:
    with checkpointing enabled it rebuilds that shard's device and restores
    every partition from the last iteration-boundary checkpoint.  ``device``
    is the peer whose receive failed (``None`` for a broadcast source fault).
    """

    def __init__(self, message: str, *, device=None):
        self.device = device
        super().__init__(message)


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be saved, loaded, or applied."""


class BackendError(ReproError):
    """Base class for array-backend errors."""


class BackendContractError(BackendError):
    """Raised by the guard backend when a primitive outside the
    :data:`~repro.backend.base.ARRAY_BACKEND_CONTRACT` is requested."""


class BackendUnavailableError(BackendError):
    """Raised when a requested backend (e.g. ``cupy``) is not importable."""


class RelationError(ReproError):
    """Base class for errors in the relational substrate."""


class SchemaError(RelationError):
    """Raised when tuples do not match a relation's declared schema."""


class HisaStateError(RelationError):
    """Raised when a HISA is used before its index layers are built."""


class DatalogError(ReproError):
    """Base class for Datalog front-end errors."""


class ParseError(DatalogError):
    """Raised on malformed Datalog source text."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)


class SafetyError(DatalogError):
    """Raised when a rule is unsafe (head variable not bound in a positive body atom)."""


class StratificationError(DatalogError):
    """Raised when a program cannot be stratified (negation inside a recursive cycle)."""


class PlanningError(DatalogError):
    """Raised when a rule cannot be compiled into a relational-algebra plan."""


class EvaluationError(DatalogError):
    """Raised when fixpoint evaluation fails for a reason other than OOM."""


class FixpointInterrupted(EvaluationError):
    """Fixpoint evaluation stopped after exhausting its fault-recovery budget.

    ``checkpoint`` is the last :class:`~repro.relational.checkpoint.
    EvaluationCheckpoint` taken before the failure (``None`` when
    checkpointing was disabled); pass it to ``GPULogEngine.resume`` to
    continue from the last iteration boundary instead of restarting.
    """

    def __init__(self, message: str, *, checkpoint=None, cause: Exception | None = None):
        self.checkpoint = checkpoint
        self.cause = cause
        super().__init__(message)


class EpochAborted(EvaluationError):
    """A serving epoch exhausted its fault-recovery budget and was rolled back.

    The engine restored every relation (and all snapshot versions) to the
    last committed epoch before raising, so the database is exactly as if
    the epoch had never started; only the aborted epoch's tickets see this
    error.  ``cause`` is the final fault that exhausted the ladder and
    ``attempts`` how many whole-epoch replays were tried.
    """

    def __init__(self, message: str, *, epoch: int = 0, attempts: int = 0,
                 cause: "Exception | None" = None):
        self.epoch = int(epoch)
        self.attempts = int(attempts)
        self.cause = cause
        super().__init__(message)


class ServingError(ReproError):
    """Base class for serving-engine admission/lifecycle errors."""


class AdmissionRejected(ServingError):
    """A mutation was refused by the serving engine's admission controller.

    Raised to the submitter under the ``reject`` policy (queue full) and the
    ``block`` policy (deadline expired), and set on a queued ticket's future
    under ``shed-oldest`` (the batch was dropped to admit newer work).
    ``policy`` names the admission policy that refused the batch.
    """

    def __init__(self, message: str, *, policy: str = "", pending: int = 0):
        self.policy = policy
        self.pending = int(pending)
        super().__init__(message)


class EngineClosed(ServingError, RuntimeError):
    """The serving engine is closed (or failed to close cleanly).

    Subclasses :class:`RuntimeError` for backward compatibility with callers
    that caught ``RuntimeError`` around ``submit`` on a closed engine.
    """


class WalError(ServingError):
    """Raised when a write-ahead-log record cannot be appended or replayed."""


class EngineError(ReproError):
    """Base class for comparison-engine errors."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid generator parameters."""


class ExperimentError(ReproError):
    """Raised when an experiment driver is misconfigured."""
