"""Synthetic benchmark datasets standing in for the paper's graphs and CSPA inputs."""

from .cspa import CSPADataset, generate_cspa_dataset
from .graphs import (
    GraphDataset,
    chained_communities,
    finite_element_mesh,
    p2p_graph,
    random_dag,
    road_network,
    scale_free_graph,
)
from .registry import (
    PROFILE_BENCH,
    PROFILE_TEST,
    PROFILES,
    DatasetSpec,
    PaperReference,
    dataset_names,
    dataset_spec,
    load_dataset,
)

__all__ = [
    "CSPADataset",
    "DatasetSpec",
    "GraphDataset",
    "PROFILES",
    "PROFILE_BENCH",
    "PROFILE_TEST",
    "PaperReference",
    "chained_communities",
    "dataset_names",
    "dataset_spec",
    "finite_element_mesh",
    "generate_cspa_dataset",
    "load_dataset",
    "p2p_graph",
    "random_dag",
    "road_network",
    "scale_free_graph",
]
