"""Registry of the paper's benchmark datasets, mapped to synthetic generators.

Every dataset name used in Tables 1-5 resolves here to a synthetic generator
of the same structural family (see :mod:`repro.datasets.graphs` and
:mod:`repro.datasets.cspa`) in two profiles:

* ``bench`` — the size used by the benchmark harness (output relations in the
  10^5 range, large enough for the cost model's data terms to be meaningful);
* ``test`` — a much smaller size used by the test suite.

Each entry also records the output sizes the paper reports for that dataset
(transitive-closure size, SG size, CSPA relation sizes).  The experiment
drivers divide the paper size by the measured synthetic size to obtain the
*scale factor* used when projecting simulated runtimes back to paper scale
(see EXPERIMENTS.md for the methodology).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

from ..errors import DatasetError
from .cspa import CSPADataset, generate_cspa_dataset
from .graphs import (
    GraphDataset,
    chained_communities,
    finite_element_mesh,
    p2p_graph,
    road_network,
    scale_free_graph,
)

Dataset = Union[GraphDataset, CSPADataset]

PROFILE_BENCH = "bench"
PROFILE_TEST = "test"
PROFILES = (PROFILE_BENCH, PROFILE_TEST)


@dataclass(frozen=True)
class PaperReference:
    """Numbers the paper reports for a dataset (used for scale factors)."""

    #: output-relation sizes reported by the paper, keyed by query name
    #: ("reach", "sg") or by relation name for CSPA ("valueflow", ...).
    output_sizes: dict[str, int] = field(default_factory=dict)
    #: iteration counts reported by the paper (Table 1), keyed by query.
    iterations: dict[str, int] = field(default_factory=dict)
    notes: str = ""


@dataclass(frozen=True)
class DatasetSpec:
    """One named benchmark dataset with per-profile generators."""

    name: str
    kind: str  # "graph" or "cspa"
    category: str
    description: str
    paper: PaperReference
    generators: dict[str, Callable[[], Dataset]]

    def load(self, profile: str = PROFILE_BENCH) -> Dataset:
        if profile not in self.generators:
            raise DatasetError(f"dataset {self.name!r} has no profile {profile!r}")
        return self.generators[profile]()


def _graph_spec(name, category, description, paper, bench, test):
    return DatasetSpec(
        name=name,
        kind="graph",
        category=category,
        description=description,
        paper=paper,
        generators={PROFILE_BENCH: bench, PROFILE_TEST: test},
    )


_REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


# ----------------------------------------------------------------------
# Road networks
# ----------------------------------------------------------------------
_register(_graph_spec(
    "usroads",
    "road",
    "US road network: very large diameter, hundreds of tail iterations (Table 1).",
    PaperReference(output_sizes={"reach": 87_000_000}, iterations={"reach": 606}),
    bench=lambda: road_network(170, 5, shortcut_probability=0.02, seed=11, name="usroads"),
    test=lambda: road_network(30, 3, shortcut_probability=0.0, seed=11, name="usroads"),
))

_register(_graph_spec(
    "SF.cedge",
    "road",
    "San Francisco road segments: road network used for REACH and SG.",
    PaperReference(output_sizes={"reach": 80_000_000, "sg": 382_000_000}),
    bench=lambda: road_network(110, 6, shortcut_probability=0.03, seed=12, name="SF.cedge"),
    test=lambda: road_network(24, 3, shortcut_probability=0.0, seed=12, name="SF.cedge"),
))

# ----------------------------------------------------------------------
# Finite-element meshes
# ----------------------------------------------------------------------
_register(_graph_spec(
    "fe_ocean",
    "mesh",
    "Finite-element ocean model mesh: regular stencil, long diameter.",
    PaperReference(output_sizes={"reach": 1_670_000_000}, iterations={"reach": 247}),
    bench=lambda: finite_element_mesh(120, 8, seed=21, name="fe_ocean"),
    test=lambda: finite_element_mesh(20, 4, seed=21, name="fe_ocean"),
))

_register(_graph_spec(
    "fe_body",
    "mesh",
    "Finite-element body mesh: used for REACH (Table 2) and SG (Table 3).",
    PaperReference(output_sizes={"reach": 156_000_000, "sg": 408_000_000}),
    bench=lambda: finite_element_mesh(60, 9, seed=22, name="fe_body"),
    test=lambda: finite_element_mesh(16, 4, seed=22, name="fe_body"),
))

_register(_graph_spec(
    "fe_sphere",
    "mesh",
    "Finite-element sphere mesh: SG workload (Table 3).",
    PaperReference(output_sizes={"sg": 205_000_000}),
    bench=lambda: finite_element_mesh(48, 8, seed=23, name="fe_sphere"),
    test=lambda: finite_element_mesh(14, 4, seed=23, name="fe_sphere"),
))

# ----------------------------------------------------------------------
# Social / collaboration networks
# ----------------------------------------------------------------------
_register(_graph_spec(
    "com-dblp",
    "social",
    "DBLP collaboration network: hub-heavy, tiny diameter, largest REACH output.",
    PaperReference(output_sizes={"reach": 1_910_000_000}, iterations={"reach": 31}),
    bench=lambda: scale_free_graph(2200, 5, seed=31, name="com-dblp"),
    test=lambda: scale_free_graph(150, 3, seed=31, name="com-dblp"),
))

_register(_graph_spec(
    "loc-Brightkite",
    "social",
    "Brightkite location-based social network: SG workload.",
    PaperReference(output_sizes={"sg": 92_300_000}),
    bench=lambda: scale_free_graph(550, 3, seed=32, name="loc-Brightkite"),
    test=lambda: scale_free_graph(120, 3, seed=32, name="loc-Brightkite"),
))

_register(_graph_spec(
    "CA-HepTH",
    "social",
    "High-energy-physics co-authorship network: SG workload.",
    PaperReference(output_sizes={"sg": 74_000_000}),
    bench=lambda: scale_free_graph(450, 3, seed=33, name="CA-HepTH"),
    test=lambda: scale_free_graph(100, 3, seed=33, name="CA-HepTH"),
))

_register(_graph_spec(
    "ego-Facebook",
    "social",
    "Facebook ego network: smallest SG workload.",
    PaperReference(output_sizes={"sg": 15_000_000}),
    bench=lambda: scale_free_graph(300, 3, seed=34, name="ego-Facebook"),
    test=lambda: scale_free_graph(80, 3, seed=34, name="ego-Facebook"),
))

# ----------------------------------------------------------------------
# P2P and optimisation graphs
# ----------------------------------------------------------------------
_register(_graph_spec(
    "Gnutella31",
    "p2p",
    "Gnutella peer-to-peer overlay snapshot: bounded out-degree, ~30 iterations.",
    PaperReference(output_sizes={"reach": 884_000_000}, iterations={"reach": 31}),
    bench=lambda: p2p_graph(1700, 3, 130, seed=41, name="Gnutella31"),
    test=lambda: p2p_graph(200, 2, 30, seed=41, name="Gnutella31"),
))

_register(_graph_spec(
    "vsp_finan",
    "finance",
    "Financial-optimisation matrix graph: long chained structure, many iterations.",
    PaperReference(output_sizes={"reach": 910_000_000}, iterations={"reach": 520}),
    bench=lambda: chained_communities(42, 4, 4, seed=51, name="vsp_finan"),
    test=lambda: chained_communities(8, 3, 3, seed=51, name="vsp_finan"),
))

# ----------------------------------------------------------------------
# CSPA program graphs (Table 4)
# ----------------------------------------------------------------------
_register(DatasetSpec(
    name="httpd",
    kind="cspa",
    category="program-analysis",
    description="Apache httpd value-flow graph (Graspan input), scaled synthetic equivalent.",
    paper=PaperReference(
        output_sizes={
            "assign": 362_000,
            "dereference": 1_140_000,
            "valueflow": 1_360_000,
            "valuealias": 234_000_000,
            "memalias": 88_900_000,
        }
    ),
    generators={
        PROFILE_BENCH: lambda: generate_cspa_dataset(
            12, 26, chain_length=4, fan_in=2, inter_function_assigns=1,
            call_chain_length=6, pointer_fraction=0.2, dereferences_per_pointer=2,
            seed=61, name="httpd",
        ),
        PROFILE_TEST: lambda: generate_cspa_dataset(
            5, 16, chain_length=3, fan_in=1, inter_function_assigns=1,
            call_chain_length=5, pointer_fraction=0.25, dereferences_per_pointer=2,
            seed=61, name="httpd",
        ),
    },
))

_register(DatasetSpec(
    name="linux",
    kind="cspa",
    category="program-analysis",
    description="Statically-linked Linux subset value-flow graph, scaled synthetic equivalent.",
    paper=PaperReference(
        output_sizes={
            "assign": 1_980_000,
            "dereference": 7_500_000,
            "valueflow": 5_500_000,
            "valuealias": 22_300_000,
            "memalias": 88_400_000,
        }
    ),
    generators={
        PROFILE_BENCH: lambda: generate_cspa_dataset(
            30, 22, chain_length=3, fan_in=1, inter_function_assigns=1,
            call_chain_length=3, pointer_fraction=0.2, dereferences_per_pointer=2,
            seed=62, name="linux",
        ),
        PROFILE_TEST: lambda: generate_cspa_dataset(
            8, 14, chain_length=3, fan_in=1, inter_function_assigns=1,
            call_chain_length=3, pointer_fraction=0.25, dereferences_per_pointer=2,
            seed=62, name="linux",
        ),
    },
))

_register(DatasetSpec(
    name="postgresql",
    kind="cspa",
    category="program-analysis",
    description="PostgreSQL value-flow graph, scaled synthetic equivalent.",
    paper=PaperReference(
        output_sizes={
            "assign": 1_200_000,
            "dereference": 3_460_000,
            "valueflow": 3_710_000,
            "valuealias": 223_000_000,
            "memalias": 88_400_000,
        }
    ),
    generators={
        PROFILE_BENCH: lambda: generate_cspa_dataset(
            12, 26, chain_length=4, fan_in=2, inter_function_assigns=1,
            call_chain_length=7, pointer_fraction=0.2, dereferences_per_pointer=2,
            seed=63, name="postgresql",
        ),
        PROFILE_TEST: lambda: generate_cspa_dataset(
            6, 16, chain_length=3, fan_in=1, inter_function_assigns=1,
            call_chain_length=6, pointer_fraction=0.25, dereferences_per_pointer=2,
            seed=63, name="postgresql",
        ),
    },
))


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------

def dataset_names(kind: str | None = None) -> list[str]:
    """Names of all registered datasets, optionally filtered by kind."""
    return sorted(name for name, spec in _REGISTRY.items() if kind is None or spec.kind == kind)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under ``name``."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise DatasetError(f"unknown dataset {name!r}; known datasets: {known}")
    return _REGISTRY[name]


def load_dataset(name: str, profile: str = PROFILE_BENCH) -> Dataset:
    """Generate the synthetic dataset registered under ``name``."""
    return dataset_spec(name).load(profile)
