"""Synthetic graph generators standing in for the paper's benchmark graphs.

The paper evaluates REACH and SG on graphs from SNAP, SuiteSparse and the
road-network collection (Section 6.2).  Those graphs are too large to evaluate
inside this simulator (transitive closures up to 1.9 billion tuples), so each
is replaced by a synthetic graph of the *same structural family*, at a
documented scale factor.  What matters for the paper's qualitative results is
the graph shape:

* **road networks** (usroads, SF.cedge) — near-planar, low degree, very large
  diameter: hundreds of semi-naïve iterations with a long low-delta tail
  (this is what makes eager buffer management shine in Table 1);
* **finite-element meshes** (fe_ocean, fe_body, fe_sphere) — regular local
  connectivity, moderate diameter;
* **social / collaboration networks** (com-dblp, CA-HepTH, ego-Facebook,
  loc-Brightkite) — heavy-tailed degrees, tiny diameter: few iterations, huge
  join fan-out, heavy warp divergence;
* **P2P overlays** (Gnutella31) — roughly regular out-degree, small diameter;
* **optimisation matrices** (vsp_finan) — long chain-like structure with
  sparse cross links, hundreds of iterations.

All generators emit directed acyclic edge sets (edges point from lower to
higher node id) so that transitive closures stay finite and controllable; the
real graphs are also evaluated as directed graphs in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError


@dataclass(frozen=True)
class GraphDataset:
    """A generated benchmark graph."""

    name: str
    category: str
    edges: np.ndarray
    n_nodes: int
    seed: int
    description: str = ""

    @property
    def edge_count(self) -> int:
        return int(self.edges.shape[0])

    def facts(self, relation: str = "edge") -> dict[str, np.ndarray]:
        """The EDB dictionary expected by every engine."""
        return {relation: self.edges}


def _finalize(name: str, category: str, edges: list[tuple[int, int]], n_nodes: int, seed: int, description: str) -> GraphDataset:
    if not edges:
        raise DatasetError(f"dataset {name!r} generated no edges")
    array = np.unique(np.asarray(edges, dtype=np.int64), axis=0)
    # Remove self loops: the paper's graphs are simple directed graphs.
    array = array[array[:, 0] != array[:, 1]]
    return GraphDataset(
        name=name,
        category=category,
        edges=array,
        n_nodes=n_nodes,
        seed=seed,
        description=description,
    )


# ----------------------------------------------------------------------
# Road networks: long, thin, huge diameter
# ----------------------------------------------------------------------

def road_network(
    length: int,
    width: int,
    *,
    shortcut_probability: float = 0.02,
    seed: int = 0,
    name: str = "road",
) -> GraphDataset:
    """A directed grid ``length x width`` with sparse shortcut edges.

    Edges point "east" and "north" (towards higher node ids), so the longest
    path — and therefore the REACH iteration count — is roughly
    ``length + width``.
    """
    if length < 2 or width < 1:
        raise DatasetError("road_network needs length >= 2 and width >= 1")
    rng = np.random.default_rng(seed)
    def node(i: int, j: int) -> int:
        return i * width + j

    edges: list[tuple[int, int]] = []
    for i in range(length):
        for j in range(width):
            if i + 1 < length:
                edges.append((node(i, j), node(i + 1, j)))
            if j + 1 < width:
                edges.append((node(i, j), node(i, j + 1)))
            if shortcut_probability and i + 2 < length and rng.random() < shortcut_probability:
                edges.append((node(i, j), node(i + 2, j)))
    return _finalize(name, "road", edges, length * width, seed, f"directed {length}x{width} road grid")


# ----------------------------------------------------------------------
# Finite-element meshes: regular local stencils
# ----------------------------------------------------------------------

def finite_element_mesh(
    length: int,
    width: int,
    *,
    diagonal_probability: float = 0.6,
    seed: int = 0,
    name: str = "mesh",
) -> GraphDataset:
    """A triangulated grid: grid edges plus forward diagonals (FE stencil)."""
    if length < 2 or width < 2:
        raise DatasetError("finite_element_mesh needs length >= 2 and width >= 2")
    rng = np.random.default_rng(seed)

    def node(i: int, j: int) -> int:
        return i * width + j

    edges: list[tuple[int, int]] = []
    for i in range(length):
        for j in range(width):
            if i + 1 < length:
                edges.append((node(i, j), node(i + 1, j)))
            if j + 1 < width:
                edges.append((node(i, j), node(i, j + 1)))
            if i + 1 < length and j + 1 < width and rng.random() < diagonal_probability:
                edges.append((node(i, j), node(i + 1, j + 1)))
            if i + 1 < length and j >= 1 and rng.random() < diagonal_probability / 2:
                edges.append((node(i, j), node(i + 1, j - 1)))
    return _finalize(name, "mesh", edges, length * width, seed, f"triangulated {length}x{width} FE mesh")


# ----------------------------------------------------------------------
# Social / collaboration networks: preferential attachment
# ----------------------------------------------------------------------

def scale_free_graph(
    n_nodes: int,
    attachment: int,
    *,
    seed: int = 0,
    name: str = "social",
) -> GraphDataset:
    """Barabási–Albert style preferential attachment, edges old <- new reversed.

    Every new node attaches to ``attachment`` existing nodes chosen with
    probability proportional to their degree; edges point from the *older*
    node to the newer one so the graph is a DAG with heavy-degree hubs near
    the roots (hub fan-out is what stresses warp divergence).
    """
    if n_nodes < attachment + 1 or attachment < 1:
        raise DatasetError("scale_free_graph needs n_nodes > attachment >= 1")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    repeated: list[int] = list(range(attachment))
    for new_node in range(attachment, n_nodes):
        chosen = rng.choice(repeated, size=attachment, replace=True)
        for old_node in np.unique(chosen):
            edges.append((int(old_node), new_node))
            repeated.append(int(old_node))
        repeated.extend([new_node] * attachment)
    return _finalize(name, "social", edges, n_nodes, seed, f"scale-free graph n={n_nodes}, m={attachment}")


# ----------------------------------------------------------------------
# Peer-to-peer overlays: bounded out-degree, local window
# ----------------------------------------------------------------------

def p2p_graph(
    n_nodes: int,
    out_degree: int,
    window: int,
    *,
    seed: int = 0,
    name: str = "p2p",
) -> GraphDataset:
    """Random out-degree graph with forward edges inside a bounded window."""
    if n_nodes < 2 or out_degree < 1 or window < 1:
        raise DatasetError("p2p_graph needs n_nodes >= 2, out_degree >= 1, window >= 1")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    for node in range(n_nodes - 1):
        limit = min(n_nodes - node - 1, window)
        count = min(out_degree, limit)
        offsets = rng.choice(np.arange(1, limit + 1), size=count, replace=False)
        for offset in offsets:
            edges.append((node, node + int(offset)))
    return _finalize(name, "p2p", edges, n_nodes, seed, f"P2P overlay n={n_nodes}, d={out_degree}, w={window}")


# ----------------------------------------------------------------------
# Optimisation-matrix graphs: chained communities
# ----------------------------------------------------------------------

def chained_communities(
    n_communities: int,
    layers_per_community: int,
    layer_width: int,
    *,
    inter_layer_probability: float = 0.6,
    bridges: int = 2,
    seed: int = 0,
    name: str = "finance",
) -> GraphDataset:
    """Layered communities connected in a long chain (vsp_finan-like structure).

    Each community is a small layered DAG (``layers_per_community`` layers of
    ``layer_width`` nodes, edges only between consecutive layers); consecutive
    communities are linked by a few bridge edges from the last layer of one to
    the first layer of the next.  The longest path — and hence the REACH
    iteration count — is therefore about ``n_communities x layers_per_community``,
    giving the very long, thin dependency structure of optimisation matrices.
    """
    if n_communities < 2 or layers_per_community < 2 or layer_width < 1:
        raise DatasetError("chained_communities needs >= 2 communities, >= 2 layers, width >= 1")
    rng = np.random.default_rng(seed)
    community_size = layers_per_community * layer_width
    edges: list[tuple[int, int]] = []

    def node(community: int, layer: int, position: int) -> int:
        return community * community_size + layer * layer_width + position

    for community in range(n_communities):
        for layer in range(layers_per_community - 1):
            for src in range(layer_width):
                linked = False
                for dst in range(layer_width):
                    if rng.random() < inter_layer_probability:
                        edges.append((node(community, layer, src), node(community, layer + 1, dst)))
                        linked = True
                if not linked:
                    edges.append((node(community, layer, src), node(community, layer + 1, src % layer_width)))
        if community + 1 < n_communities:
            for _ in range(bridges):
                src = int(rng.integers(0, layer_width))
                dst = int(rng.integers(0, layer_width))
                edges.append(
                    (
                        node(community, layers_per_community - 1, src),
                        node(community + 1, 0, dst),
                    )
                )
    return _finalize(
        name,
        "finance",
        edges,
        n_communities * community_size,
        seed,
        f"chain of {n_communities} layered communities ({layers_per_community}x{layer_width})",
    )


def random_dag(
    n_nodes: int,
    edge_probability: float,
    *,
    seed: int = 0,
    name: str = "random",
) -> GraphDataset:
    """Erdős–Rényi style DAG (edges only from lower to higher ids)."""
    if n_nodes < 2 or not 0 < edge_probability <= 1:
        raise DatasetError("random_dag needs n_nodes >= 2 and probability in (0, 1]")
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((n_nodes, n_nodes)) < edge_probability, k=1)
    sources, destinations = np.nonzero(upper)
    edges = list(zip(sources.tolist(), destinations.tolist()))
    return _finalize(name, "random", edges, n_nodes, seed, f"random DAG n={n_nodes}, p={edge_probability}")
