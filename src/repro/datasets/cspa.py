"""Synthetic context-sensitive points-to analysis (CSPA) inputs.

Table 4 of the paper runs CSPA on the Graspan-provided program graphs of
httpd, a statically linked subset of Linux, and PostgreSQL, with two EDB
relations:

* ``assign(dst, src)`` — a value flows from ``src`` into ``dst`` (assignments,
  parameter passing, returns); and
* ``dereference(ptr, val)`` — ``val`` is obtained by dereferencing ``ptr``.

Those inputs are proprietary to the Graspan artifact and far too large for
this simulator (ValueAlias alone reaches 2.3x10^8 tuples), so we generate
program-shaped synthetic EDBs instead: variables are grouped into "functions";
assignments form short intra-function def-use chains with occasional
fan-out/fan-in; inter-function assignments model parameter passing; and a
subset of variables act as pointers with dereference edges into value
variables.  The generator's knobs control exactly the properties that drive
the analysis cost: chain length (ValueFlow transitive closure depth), fan-in
(ValueAlias blow-up through common sources) and pointer density (MemAlias
feedback through the Dereference rule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError


@dataclass(frozen=True)
class CSPADataset:
    """A synthetic CSPA EDB: assignment and dereference relations."""

    name: str
    assign: np.ndarray
    dereference: np.ndarray
    n_variables: int
    seed: int
    description: str = ""

    @property
    def assign_count(self) -> int:
        return int(self.assign.shape[0])

    @property
    def dereference_count(self) -> int:
        return int(self.dereference.shape[0])

    def facts(self) -> dict[str, np.ndarray]:
        """The EDB dictionary expected by every engine."""
        return {"assign": self.assign, "dereference": self.dereference}


def generate_cspa_dataset(
    n_functions: int,
    variables_per_function: int,
    *,
    chain_length: int = 6,
    fan_in: int = 2,
    inter_function_assigns: int = 2,
    call_chain_length: int = 6,
    pointer_fraction: float = 0.3,
    dereferences_per_pointer: int = 3,
    seed: int = 0,
    name: str = "cspa",
) -> CSPADataset:
    """Generate a program-shaped CSPA EDB.

    Parameters
    ----------
    n_functions, variables_per_function:
        Program size; total variables = product of the two.
    chain_length:
        Length of intra-function assignment chains (depth of value flow).
    fan_in:
        How many extra sources feed selected chain heads (drives ValueAlias).
    inter_function_assigns:
        Assignments from each function into the next one of its call chain
        (parameter passing).
    call_chain_length:
        Functions are grouped into call chains of this length; value flow does
        not cross chain boundaries.  This bounds the interprocedural flow depth
        (and with it the quadratic ValueAlias blow-up), which is how the
        generated inputs stay at a tractable scale.
    pointer_fraction:
        Fraction of each function's variables that act as pointers.
    dereferences_per_pointer:
        Dereference edges per pointer variable.
    """
    if n_functions < 1 or variables_per_function < max(4, chain_length):
        raise DatasetError("generate_cspa_dataset needs at least chain_length variables per function")
    rng = np.random.default_rng(seed)
    assigns: list[tuple[int, int]] = []
    dereferences: list[tuple[int, int]] = []

    n_variables = n_functions * variables_per_function

    def var(function: int, local: int) -> int:
        return function * variables_per_function + local

    for function in range(n_functions):
        # Intra-function def-use chains: v_{i+1} := v_i.
        n_chains = max(1, variables_per_function // (chain_length + 1))
        local = 0
        for _ in range(n_chains):
            head = local
            for position in range(chain_length):
                if local + 1 >= variables_per_function:
                    break
                assigns.append((var(function, local + 1), var(function, local)))
                local += 1
            local += 1
            # Fan-in: extra definitions flowing into the chain head.
            for _ in range(fan_in):
                source = int(rng.integers(0, variables_per_function))
                if source != head:
                    assigns.append((var(function, head), var(function, source)))

        # Parameter passing into the next function of the same call chain.
        same_chain = (function + 1) // max(1, call_chain_length) == function // max(1, call_chain_length)
        if function + 1 < n_functions and same_chain:
            for _ in range(inter_function_assigns):
                src = int(rng.integers(0, variables_per_function))
                dst = int(rng.integers(0, variables_per_function))
                assigns.append((var(function + 1, dst), var(function, src)))

        # Pointer dereferences.
        n_pointers = max(1, int(variables_per_function * pointer_fraction))
        pointers = rng.choice(variables_per_function, size=n_pointers, replace=False)
        for pointer in pointers:
            for _ in range(dereferences_per_pointer):
                value = int(rng.integers(0, variables_per_function))
                if value != int(pointer):
                    dereferences.append((var(function, int(pointer)), var(function, value)))

    assign_array = np.unique(np.asarray(assigns, dtype=np.int64), axis=0)
    dereference_array = np.unique(np.asarray(dereferences, dtype=np.int64), axis=0)
    assign_array = assign_array[assign_array[:, 0] != assign_array[:, 1]]
    return CSPADataset(
        name=name,
        assign=assign_array,
        dereference=dereference_array,
        n_variables=n_variables,
        seed=seed,
        description=(
            f"synthetic CSPA input: {n_functions} functions x {variables_per_function} variables, "
            f"chain length {chain_length}"
        ),
    )
