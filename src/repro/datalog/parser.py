"""A small recursive-descent parser for Datalog source text.

Grammar (Soufflé-flavoured)::

    program     := (clause)*
    clause      := atom ( ":-" body )? "."
    body        := body_item ("," body_item)*
    body_item   := atom | comparison
    atom        := IDENT "(" term ("," term)* ")"
    comparison  := term op term          with op in  = != < <= > >=
    term        := IDENT                 (variable)
                 | INTEGER               (constant)
                 | STRING                (constant, double quoted)
                 | "_"                   (anonymous variable)

Comments run from ``//``, ``%`` or ``#`` to end of line.  Relation names may
contain dots (``def_used.for_address``), matching the DDisasm example in
Section 3 of the paper.  Anonymous variables (``_``) are each given a unique
fresh name so they never join against anything.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..errors import ParseError
from .ast import Atom, Comparison, Constant, Program, Rule, Variable

_COMPARISON_TOKENS = {
    "=": "==",
    "==": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


class _Tokenizer:
    """Converts source text into a token stream with location information."""

    _PUNCT = {
        ":-": "IMPLIES",
        "<-": "IMPLIES",
        "(": "LPAREN",
        ")": "RPAREN",
        ",": "COMMA",
        ".": "DOT",
        "!=": "OP",
        "<=": "OP",
        ">=": "OP",
        "==": "OP",
        "=": "OP",
        "<": "OP",
        ">": "OP",
    }

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> list[Token]:
        result = []
        while True:
            token = self._next_token()
            if token is None:
                break
            result.append(token)
        return result

    # ------------------------------------------------------------------
    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance(1)
                continue
            if ch in "%#" or self.source.startswith("//", self.pos):
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance(1)
                continue
            break

    def _next_token(self) -> Token | None:
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.source):
            return None
        line, column = self.line, self.column
        ch = self.source[self.pos]

        # Two-character punctuation first.
        for length in (2, 1):
            candidate = self.source[self.pos : self.pos + length]
            if candidate in self._PUNCT and len(candidate) == length:
                # A '.' inside an identifier (e.g. def_used.for_address) is
                # handled by the identifier branch below, so only treat '.' as
                # punctuation when it does not continue an identifier.
                if candidate == "." and self._previous_is_ident_char() and self._next_is_ident_char():
                    break
                self._advance(length)
                return Token(self._PUNCT[candidate], candidate, line, column)

        if ch == '"':
            return self._string_token(line, column)
        if ch.isdigit() or (ch == "-" and self._peek_is_digit()):
            return self._number_token(line, column)
        if ch.isalpha() or ch == "_":
            return self._identifier_token(line, column)
        raise ParseError(f"unexpected character {ch!r}", line, column)

    def _previous_is_ident_char(self) -> bool:
        if self.pos == 0:
            return False
        prev = self.source[self.pos - 1]
        return prev.isalnum() or prev == "_"

    def _next_is_ident_char(self) -> bool:
        if self.pos + 1 >= len(self.source):
            return False
        nxt = self.source[self.pos + 1]
        return nxt.isalpha() or nxt == "_"

    def _peek_is_digit(self) -> bool:
        return self.pos + 1 < len(self.source) and self.source[self.pos + 1].isdigit()

    def _string_token(self, line: int, column: int) -> Token:
        end = self.pos + 1
        while end < len(self.source) and self.source[end] != '"':
            if self.source[end] == "\n":
                raise ParseError("unterminated string literal", line, column)
            end += 1
        if end >= len(self.source):
            raise ParseError("unterminated string literal", line, column)
        text = self.source[self.pos + 1 : end]
        self._advance(end - self.pos + 1)
        return Token("STRING", text, line, column)

    def _number_token(self, line: int, column: int) -> Token:
        end = self.pos
        if self.source[end] == "-":
            end += 1
        while end < len(self.source) and self.source[end].isdigit():
            end += 1
        text = self.source[self.pos : end]
        self._advance(end - self.pos)
        return Token("INTEGER", text, line, column)

    def _identifier_token(self, line: int, column: int) -> Token:
        end = self.pos
        while end < len(self.source) and (self.source[end].isalnum() or self.source[end] in "_."):
            end += 1
        # Do not swallow a trailing '.' (end-of-clause dot).
        text = self.source[self.pos : end]
        while text.endswith("."):
            text = text[:-1]
            end -= 1
        self._advance(end - self.pos)
        return Token("IDENT", text, line, column)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self._anon_counter = itertools.count()

    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token | None:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of input, expected {kind}")
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.kind} ({token.text!r})", token.line, token.column)
        self.pos += 1
        return token

    def _accept(self, kind: str) -> Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self.pos += 1
            return token
        return None

    # ------------------------------------------------------------------
    def parse_program(self, name: str) -> Program:
        rules = []
        while self._peek() is not None:
            rules.append(self._parse_clause())
        return Program(tuple(rules), name=name)

    def _parse_clause(self) -> Rule:
        head = self._parse_atom()
        body: list[Atom] = []
        comparisons: list[Comparison] = []
        if self._accept("IMPLIES"):
            while True:
                item = self._parse_body_item()
                if isinstance(item, Atom):
                    body.append(item)
                else:
                    comparisons.append(item)
                if not self._accept("COMMA"):
                    break
        self._expect("DOT")
        return Rule(head=head, body=tuple(body), comparisons=tuple(comparisons))

    def _parse_body_item(self) -> Atom | Comparison:
        token = self._peek()
        next_token = self._peek(1)
        if token is not None and token.kind == "IDENT" and next_token is not None and next_token.kind == "LPAREN":
            return self._parse_atom()
        return self._parse_comparison()

    def _parse_atom(self) -> Atom:
        name_token = self._expect("IDENT")
        self._expect("LPAREN")
        terms = [self._parse_term()]
        while self._accept("COMMA"):
            terms.append(self._parse_term())
        self._expect("RPAREN")
        return Atom(relation=name_token.text, terms=tuple(terms))

    def _parse_comparison(self) -> Comparison:
        left = self._parse_term()
        op_token = self._expect("OP")
        right = self._parse_term()
        op = _COMPARISON_TOKENS.get(op_token.text)
        if op is None:
            raise ParseError(f"unknown comparison operator {op_token.text!r}", op_token.line, op_token.column)
        return Comparison(op=op, left=left, right=right)

    def _parse_term(self):
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input while parsing a term")
        if token.kind == "INTEGER":
            self.pos += 1
            return Constant(int(token.text))
        if token.kind == "STRING":
            self.pos += 1
            return Constant(token.text)
        if token.kind == "IDENT":
            self.pos += 1
            if token.text == "_":
                return Variable(f"_anon_{next(self._anon_counter)}")
            return Variable(token.text)
        raise ParseError(f"expected a term, found {token.kind} ({token.text!r})", token.line, token.column)


def parse_program(source: str, name: str = "program") -> Program:
    """Parse Datalog source text into a :class:`~repro.datalog.ast.Program`."""
    tokens = _Tokenizer(source).tokens()
    return _Parser(tokens).parse_program(name)


def parse_rule(source: str) -> Rule:
    """Parse a single rule (must end with a dot)."""
    tokens = _Tokenizer(source).tokens()
    parser = _Parser(tokens)
    rule = parser._parse_clause()
    if parser._peek() is not None:
        extra = parser._peek()
        raise ParseError("trailing input after rule", extra.line, extra.column)
    return rule
