"""GPUlog: the public Datalog engine facade.

:class:`GPULogEngine` glues together the front-end (parser, analysis,
planner), the relational substrate (HISA-backed relations) and the simulated
device.  Typical usage::

    engine = GPULogEngine(device="h100")
    engine.add_facts("edge", [(0, 1), (1, 2)])
    result = engine.run('''
        reach(x, y) :- edge(x, y).
        reach(x, y) :- edge(x, z), reach(z, y).
    ''')
    result.relation("reach")

String constants in facts or rules are interned into integers transparently
(GPU relations hold int64 tuples); results are decoded back on the way out.
"""

from __future__ import annotations

import os
from collections import defaultdict
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

import numpy as np

from ..backend import ArrayBackend, get_backend
from ..device.device import Device
from ..device.faults import FaultPlan, resolve_fault_plan
from ..device.profiler import (
    FIGURE6_PHASES,
    PHASE_LOAD,
    PHASE_SHARD_EXCHANGE,
    phase_fractions_from_seconds,
)
from ..device.spec import DeviceSpec
from ..errors import CheckpointError, DatalogError, DeviceBufferError, SchemaError
from ..relational.checkpoint import CheckpointStore, EvaluationCheckpoint
from ..relational.hashtable import DEFAULT_LOAD_FACTOR
from ..relational.relation import IterationStats, Relation
from ..relational.sharded import ShardedRelation
from ..relational.stats import StatsCatalog
from .analysis import analyze_program
from .ast import Atom, Comparison, Constant, Program, Rule
from .planner import (
    GREEDY,
    PLANNERS,
    Planner,
    ProgramPlan,
    plan_program,
    version_required_indexes,
)
from .seminaive import EvaluationStats, SemiNaiveEvaluator
from .sharded import DEFAULT_REPLICATE_MAX_BYTES, ShardedSemiNaiveEvaluator, shard_columns_for_plan

FactValue = Union[int, str]
FactTuple = Sequence[FactValue]

#: Environment variable supplying the default shard count (the experiments
#: CLI's ``--shards`` flag exports it, mirroring ``REPRO_BACKEND``).
SHARDS_ENV_VAR = "REPRO_SHARDS"

#: Ablation levers for the sharded exchange layer (the experiments CLI's
#: ``--no-semijoin-filter`` / ``--no-exchange-overlap`` flags export these).
SEMIJOIN_ENV_VAR = "REPRO_SEMIJOIN_FILTER"
OVERLAP_ENV_VAR = "REPRO_EXCHANGE_OVERLAP"

#: Planner ablation axis (the experiments CLI's ``--planner`` flag exports it):
#: "greedy" (legacy body-literal order), "cost", or "cost+wcoj".
PLANNER_ENV_VAR = "REPRO_PLANNER"

_TRUE_FLAGS = frozenset({"1", "true", "yes", "on"})
_FALSE_FLAGS = frozenset({"0", "false", "no", "off"})


def _default_num_shards() -> int:
    value = os.environ.get(SHARDS_ENV_VAR, "").strip()
    if not value:
        return 1
    try:
        return int(value)
    except ValueError as error:
        raise SchemaError(f"{SHARDS_ENV_VAR} must be an integer, got {value!r}") from error


def _default_planner() -> str:
    value = os.environ.get(PLANNER_ENV_VAR, "").strip().lower()
    return value or GREEDY


def _env_flag(name: str, default: bool) -> bool:
    value = os.environ.get(name, "").strip().lower()
    if not value:
        return default
    if value in _TRUE_FLAGS:
        return True
    if value in _FALSE_FLAGS:
        return False
    raise SchemaError(f"{name} must be a boolean flag, got {value!r}")


class SymbolTable:
    """Bidirectional interning of string symbols into int64 identifiers.

    Interned identifiers start at ``2**40`` so they do not collide with the
    integer constants used by the benchmark datasets.
    """

    BASE = 1 << 40

    def __init__(self) -> None:
        self._by_symbol: dict[str, int] = {}
        self._by_id: dict[int, str] = {}

    def encode(self, value: FactValue) -> int:
        if isinstance(value, bool):
            raise DatalogError("boolean constants are not supported")
        if isinstance(value, (int, np.integer)):
            return int(value)
        if not isinstance(value, str):
            raise DatalogError(f"cannot encode constant {value!r}")
        if value not in self._by_symbol:
            identifier = self.BASE + len(self._by_symbol)
            self._by_symbol[value] = identifier
            self._by_id[identifier] = value
        return self._by_symbol[value]

    def decode(self, identifier: int) -> FactValue:
        return self._by_id.get(int(identifier), int(identifier))

    def __len__(self) -> int:
        return len(self._by_symbol)

    def entries(self) -> list[tuple[str, int]]:
        """Every ``(symbol, identifier)`` pair in interning order.

        Insertion order is the allocation order (identifiers are dense from
        ``BASE``), so the full listing — or a tail of it via
        :meth:`entries_from` — round-trips through :meth:`restore_entries`
        into an identically-allocating table.  The serving engine persists
        these in write-ahead-log batches and checkpoint metadata.
        """
        return list(self._by_symbol.items())

    def entries_from(self, start: int) -> list[tuple[str, int]]:
        """The entries interned at position ``start`` onward (a delta)."""
        return list(self._by_symbol.items())[start:]

    def restore_entries(self, entries) -> None:
        """Re-intern persisted ``(symbol, identifier)`` pairs verbatim.

        Idempotent for matching pairs; a symbol already interned under a
        *different* identifier means the entries came from a foreign table
        and decoding would be ambiguous, so that is rejected.
        """
        for symbol, identifier in entries:
            symbol = str(symbol)
            identifier = int(identifier)
            existing = self._by_symbol.get(symbol)
            if existing is not None:
                if existing != identifier:
                    raise DatalogError(
                        f"symbol {symbol!r} already interned as {existing}, "
                        f"cannot restore it as {identifier}"
                    )
                continue
            self._by_symbol[symbol] = identifier
            self._by_id[identifier] = symbol


def intern_program(program: Program, symbols: SymbolTable) -> Program:
    """Replace string constants in ``program`` with interned identifiers.

    Shared by the batch engine and the serving engine so a program and its
    facts always agree on constant encoding within one engine instance.
    """

    def intern_term(term):
        if isinstance(term, Constant) and isinstance(term.value, str):
            return Constant(symbols.encode(term.value))
        return term

    rules = []
    for rule in program.rules:
        head = Atom(rule.head.relation, tuple(intern_term(t) for t in rule.head.terms))
        body = tuple(Atom(a.relation, tuple(intern_term(t) for t in a.terms)) for a in rule.body)
        comparisons = tuple(
            Comparison(c.op, intern_term(c.left), intern_term(c.right)) for c in rule.comparisons
        )
        rules.append(Rule(head=head, body=body, comparisons=comparisons))
    return Program(tuple(rules), name=program.name)


@dataclass
class EvaluationResult:
    """Everything an experiment needs to know about one engine run."""

    program_name: str
    device_name: str
    relations: dict[str, list[tuple[FactValue, ...]]]
    relation_counts: dict[str, int]
    elapsed_seconds: float
    fixed_seconds: float
    variable_seconds: float
    peak_memory_bytes: int
    total_iterations: int
    stratum_iterations: dict[int, int]
    phase_seconds: dict[str, float]
    phase_fractions: dict[str, float]
    iteration_history: dict[str, list[IterationStats]]
    stats: EvaluationStats
    #: number of shard devices the run used (1 = single-device path)
    shard_count: int = 1
    #: per-shard simulated seconds (empty on the single-device path)
    shard_elapsed_seconds: tuple[float, ...] = field(default_factory=tuple)
    #: per-shard peak device memory in bytes
    shard_peak_memory_bytes: tuple[int, ...] = field(default_factory=tuple)
    #: bytes moved across the device<->device interconnect (shard exchange)
    exchange_bytes: float = 0.0
    #: tuples moved across shards during exchanges
    exchange_tuples: int = 0
    #: transient kernel faults absorbed by version-level retries
    transient_retries: int = 0
    #: iteration-boundary checkpoints taken during the run
    checkpoints_taken: int = 0
    #: global rollbacks to a checkpoint (fault recovery)
    checkpoint_restores: int = 0
    #: shard devices rebuilt after a mid-exchange crash
    shard_rebuilds: int = 0
    #: rule versions re-executed in halved chunks after an OOM
    oom_chunked_joins: int = 0
    #: dedup passes that degraded into halved chunks after an OOM
    oom_degraded_dedups: int = 0
    #: interconnect bytes observed on the receiving side of exchanges
    #: (should mirror ``exchange_bytes``; a gap means dropped payloads)
    exchange_recv_bytes: float = 0.0
    #: interconnect bytes sent by each shard device
    exchange_send_bytes_per_shard: tuple[float, ...] = field(default_factory=tuple)
    #: interconnect bytes received by each shard device
    exchange_recv_bytes_per_shard: tuple[float, ...] = field(default_factory=tuple)
    #: max over shards of (sent + received) divided by the mean — 1.0 is a
    #: perfectly balanced exchange, higher means one shard is the hot spot
    exchange_skew: float = 0.0
    #: exchange seconds hidden under compute by overlap scheduling
    exchange_overlap_hidden_seconds: float = 0.0
    #: hidden exchange time / total exchange time (0 with overlap disabled)
    exchange_overlap_efficiency: float = 0.0
    #: outer rows semi-join filters dropped before they were shipped
    semijoin_rows_dropped: int = 0
    #: join steps answered against a replicated EDB inner (no exchange)
    replicated_joins: int = 0
    #: join steps whose probe was shard-local after a key repartition
    aligned_joins: int = 0
    #: join steps that actually replicated outer rows to other shards
    broadcast_joins: int = 0
    #: planner mode the run used ("greedy", "cost", or "cost+wcoj")
    planner: str = "greedy"
    #: one entry per rule version: chosen join order, algorithm, estimated
    #: vs. observed cardinalities (feeds ``GPULogEngine.explain()``)
    plan_report: tuple = field(default_factory=tuple)
    #: recursive versions whose pipeline changed under adaptive replanning
    replans: int = 0

    def relation(self, name: str) -> list[tuple[FactValue, ...]]:
        """Tuples of ``name`` (decoded), or an empty list if unknown."""
        return self.relations.get(name, [])

    def relation_set(self, name: str) -> set[tuple[FactValue, ...]]:
        return set(self.relations.get(name, []))

    def count(self, name: str) -> int:
        return self.relation_counts.get(name, 0)

    def tail_iterations(self, relation: str, threshold: float = 0.01) -> int:
        """Iterations whose delta was below ``threshold`` of the final relation size.

        This is the "Tail" column of Table 1 (threshold 1 %).
        """
        history = self.iteration_history.get(relation, [])
        if not history:
            return 0
        final_size = max(1, history[-1].full_count)
        return sum(1 for item in history if 0 < item.delta_count < threshold * final_size)

    @property
    def peak_memory_gib(self) -> float:
        return self.peak_memory_bytes / 1024**3


class GPULogEngine:
    """GPU Datalog engine backed by HISA relations on a simulated device."""

    def __init__(
        self,
        device: Union[Device, DeviceSpec, str] = "h100",
        *,
        memory_capacity_bytes: int | None = None,
        oom_enabled: bool = True,
        eager_buffers: bool = True,
        buffer_growth_factor: float = 8.0,
        incremental_merge: bool = True,
        load_factor: float = DEFAULT_LOAD_FACTOR,
        materialize_nway: bool = True,
        columnar: bool = True,
        max_iterations: int = 1_000_000,
        collect_relations: bool = True,
        backend: "ArrayBackend | str | None" = None,
        num_shards: int | None = None,
        checkpoint_every: int = 0,
        checkpoint_store: CheckpointStore | None = None,
        max_retries: int = 3,
        retry_backoff_seconds: float = 1e-3,
        fault_plan: "FaultPlan | str | None" = None,
        semijoin_filter: bool | None = None,
        overlap: bool | None = None,
        replicate_max_bytes: int = DEFAULT_REPLICATE_MAX_BYTES,
        planner: str | None = None,
        replan_every: int = 8,
    ) -> None:
        resolved_shards = num_shards if num_shards is not None else _default_num_shards()
        if resolved_shards < 1:
            raise SchemaError(f"num_shards must be >= 1, got {resolved_shards}")
        if resolved_shards > 1 and not materialize_nway:
            # The sharded evaluator joins step-by-step with an exchange
            # barrier between steps; a fused n-way kernel cannot cross that
            # barrier, so honouring the ablation flag is impossible —
            # failing beats silently reporting materialized-pipeline numbers.
            raise SchemaError("materialize_nway=False (fused n-way join) is not supported with num_shards > 1")
        #: shard devices used by the sharded evaluator; 1 = the unchanged
        #: single-device path (byte-identical to a run without sharding)
        self.num_shards = int(resolved_shards)
        if isinstance(device, Device):
            # A pre-built device already owns its backend; a conflicting
            # explicit request would silently split the datapath.
            if backend is not None and get_backend(backend).name != device.backend.name:
                raise SchemaError(
                    f"device already uses backend {device.backend.name!r}; "
                    f"cannot override with {backend!r}"
                )
            if fault_plan is not None and device.fault_plan is None:
                device.fault_plan = resolve_fault_plan(fault_plan)
            self.device = device
            # Sharding clones the pre-built device's configuration for the
            # sibling shards (same spec, capacity, OOM policy, backend and
            # fault plan — shared *instance*, so occurrence counters are
            # cluster-global and fault schedules stay deterministic).
            self.devices = [device] + [
                Device(
                    device.spec,
                    memory_capacity_bytes=device.pool.capacity_bytes,
                    oom_enabled=device.pool.oom_enabled,
                    backend=device.backend,
                    # "none" stops a plan-free clone from re-resolving
                    # REPRO_FAULT_PLAN into a fresh, unshared plan instance.
                    fault_plan=device.fault_plan if device.fault_plan is not None else "none",
                )
                for _ in range(self.num_shards - 1)
            ]
        else:
            # Resolve the plan once (explicit argument or REPRO_FAULT_PLAN)
            # and share the instance across every shard device.  When it
            # resolves to nothing — including an explicit "none" opt-out —
            # pass "none" down so the devices do not re-resolve the
            # environment into fresh, unshared plan instances.
            shared_plan = resolve_fault_plan(fault_plan)
            self.devices = [
                Device(
                    device,
                    memory_capacity_bytes=memory_capacity_bytes,
                    oom_enabled=oom_enabled,
                    backend=backend,
                    fault_plan=shared_plan if shared_plan is not None else "none",
                )
                for _ in range(self.num_shards)
            ]
            self.device = self.devices[0]
        self.collect_relations = bool(collect_relations)
        self.eager_buffers = bool(eager_buffers)
        self.buffer_growth_factor = float(buffer_growth_factor)
        self.incremental_merge = bool(incremental_merge)
        self.load_factor = float(load_factor)
        self.materialize_nway = bool(materialize_nway)
        #: SoA late-materialization pipeline (default); ``False`` restores the
        #: legacy row-array pipeline as the ablation baseline.
        self.columnar = bool(columnar)
        self.max_iterations = int(max_iterations)
        #: checkpoint every N fixpoint iterations (0 disables checkpointing)
        self.checkpoint_every = int(checkpoint_every)
        #: where snapshots go; ``None`` keeps only ``last_checkpoint`` in RAM
        self.checkpoint_store = checkpoint_store
        self.max_retries = int(max_retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        #: semi-join filtering + EDB replication + head pre-routing in the
        #: sharded exchange layer (``None`` reads REPRO_SEMIJOIN_FILTER)
        self.semijoin_filter = (
            _env_flag(SEMIJOIN_ENV_VAR, True) if semijoin_filter is None else bool(semijoin_filter)
        )
        #: double-buffered exchange/compute overlap (``None`` reads
        #: REPRO_EXCHANGE_OVERLAP)
        self.overlap = _env_flag(OVERLAP_ENV_VAR, True) if overlap is None else bool(overlap)
        #: replicate a static EDB inner to every shard when its payload fits
        #: under this many bytes (0 disables replication)
        self.replicate_max_bytes = int(replicate_max_bytes)
        #: join planner: "greedy" (legacy literal order, the byte-stable
        #: ablation baseline), "cost", or "cost+wcoj" (``None`` reads
        #: REPRO_PLANNER)
        resolved_planner = _default_planner() if planner is None else str(planner)
        if resolved_planner not in PLANNERS:
            raise SchemaError(
                f"unknown planner {resolved_planner!r}; expected one of {', '.join(PLANNERS)}"
            )
        self.planner = resolved_planner
        #: re-plan recursive versions every N fixpoint iterations when
        #: observed cardinalities drift ≥ 2x from estimates (0 disables;
        #: only active for the statistics-driven planners)
        self.replan_every = int(replan_every)
        #: newest iteration-boundary checkpoint from the most recent run
        self.last_checkpoint: EvaluationCheckpoint | None = None
        #: result of the most recent run/resume (feeds :meth:`explain`)
        self.last_result: EvaluationResult | None = None
        self.symbols = SymbolTable()
        self._facts: dict[str, list[tuple[int, ...]]] = {}
        self._fact_arities: dict[str, int] = {}
        self.relations: dict[str, Relation | ShardedRelation] = {}

    # ------------------------------------------------------------------
    # Fact loading
    # ------------------------------------------------------------------
    def add_facts(self, relation: str, tuples: Iterable[FactTuple]) -> int:
        """Register ground facts for ``relation``; returns how many were added."""
        added = 0
        bucket = self._facts.setdefault(relation, [])
        for row in tuples:
            encoded = tuple(self.symbols.encode(value) for value in row)
            if not encoded:
                raise SchemaError(f"facts for {relation!r} must have at least one column")
            known = self._fact_arities.get(relation)
            if known is None:
                self._fact_arities[relation] = len(encoded)
            elif known != len(encoded):
                raise SchemaError(
                    f"facts for {relation!r} have inconsistent arities {known} and {len(encoded)}"
                )
            bucket.append(encoded)
            added += 1
        return added

    def add_fact_array(self, relation: str, rows: np.ndarray) -> int:
        """Register an integer fact array (fast path used by the benchmarks)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2:
            raise SchemaError(f"fact array for {relation!r} must be 2-D")
        known = self._fact_arities.get(relation)
        if known is None:
            self._fact_arities[relation] = rows.shape[1]
        elif known != rows.shape[1]:
            raise SchemaError(f"facts for {relation!r} have inconsistent arities")
        bucket = self._facts.setdefault(relation, [])
        bucket.append(rows)  # type: ignore[arg-type]  # mixed storage handled in _fact_rows
        return int(rows.shape[0])

    def clear_facts(self) -> None:
        self._facts.clear()
        self._fact_arities.clear()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def run(self, program: Union[Program, str], *, name: str | None = None) -> EvaluationResult:
        """Evaluate ``program`` against the loaded facts."""
        if isinstance(program, str):
            program = Program.parse(program, name=name or "program")
        program = self._intern_program(program)

        analysis = analyze_program(program)
        arities = self._resolve_arities(program)

        # Statistics-driven planners measure the staged host facts before
        # planning (exact per-column distincts and max value frequencies —
        # host-side introspection, nothing is charged).  The greedy planner
        # plans stat-free, keeping its kernel sequence byte-identical to the
        # legacy path.
        catalog: StatsCatalog | None = None
        staged_rows: dict[str, np.ndarray] = {}
        if self.planner != GREEDY:
            catalog = StatsCatalog()
            for relation_name, arity in arities.items():
                rows = self._fact_rows(relation_name, arity, program)
                staged_rows[relation_name] = rows
                if rows.shape[0]:
                    catalog.seed_facts(
                        relation_name, [rows[:, column] for column in range(arity)]
                    )
                else:
                    catalog.ensure(relation_name, arity)
        plan = plan_program(analysis, planner=self.planner, stats=catalog)

        if self.num_shards > 1:
            # The sharded evaluator runs the compiled plan statically (WCOJ
            # versions execute as their decomposed expand/check steps through
            # the exchange machinery); adaptive replanning is single-device.
            return self._run_sharded(program, analysis, plan, arities)

        # Build relation storage and register the indexes the plan needs.
        self.relations = {}
        for relation_name, arity in arities.items():
            self.relations[relation_name] = Relation(
                self.device,
                relation_name,
                arity,
                load_factor=self.load_factor,
                eager_buffers=self.eager_buffers,
                buffer_growth_factor=self.buffer_growth_factor,
                incremental_merge=self.incremental_merge,
                stats=catalog,
            )
        for relation_name, columns in plan.required_indexes():
            self.relations[relation_name].require_index(columns)

        # Load EDB facts; keep IDB facts staged for their stratum.
        idb_facts: dict[str, np.ndarray] = {}
        with self.device.profiler.phase(PHASE_LOAD):
            for relation_name, relation in self.relations.items():
                if relation_name in staged_rows:
                    rows = staged_rows[relation_name]
                else:
                    rows = self._fact_rows(relation_name, relation.arity, program)
                if relation_name in analysis.idb_relations:
                    if rows.shape[0]:
                        idb_facts[relation_name] = rows
                else:
                    relation.initialize(rows)

        evaluator = SemiNaiveEvaluator(
            self.device,
            plan,
            self.relations,
            materialize_nway=self.materialize_nway,
            columnar=self.columnar,
            max_iterations=self.max_iterations,
            checkpoint_every=self.checkpoint_every,
            checkpoint_store=self.checkpoint_store,
            max_retries=self.max_retries,
            retry_backoff_seconds=self.retry_backoff_seconds,
            program_name=program.name,
            program_source=str(program),
            replan_every=self.replan_every if catalog is not None else 0,
            replanner=self._make_replanner(analysis, catalog) if catalog is not None else None,
        )
        try:
            stats = evaluator.evaluate(idb_facts)
        finally:
            self.last_checkpoint = evaluator.last_checkpoint
        return self._build_result(program, stats, evaluator, plan=plan)

    def resume(
        self,
        checkpoint: EvaluationCheckpoint,
        program: Union[Program, str, None] = None,
        *,
        name: str | None = None,
    ) -> EvaluationResult:
        """Continue an interrupted run from an iteration-boundary checkpoint.

        ``program`` defaults to the source text the checkpoint recorded at
        save time.  No facts are loaded: every relation (EDB included) is
        restored from the snapshot when evaluation reaches the checkpointed
        stratum; earlier strata are skipped outright.  The checkpoint must
        come from a run with the same shard count as this engine.
        """
        if checkpoint.num_shards != self.num_shards:
            raise CheckpointError(
                f"checkpoint was taken with {checkpoint.num_shards} shard(s); "
                f"this engine has {self.num_shards}"
            )
        if program is None:
            if not checkpoint.program_source:
                raise CheckpointError("checkpoint carries no program source; pass the program")
            program = checkpoint.program_source
        if isinstance(program, str):
            program = Program.parse(program, name=name or checkpoint.program_name or "program")
        program = self._intern_program(program)
        analysis = analyze_program(program)
        # Resume has no staged facts to measure (relations restore from the
        # snapshot), so statistics-driven planners fall back to uniform
        # estimates here; the replayed plan is still deterministic.
        plan = plan_program(analysis, planner=self.planner)
        arities = self._resolve_arities(program)
        for relation_name, state in checkpoint.relations.items():
            known = arities.get(relation_name)
            if known is not None and known != state.arity:
                raise CheckpointError(
                    f"checkpoint relation {relation_name!r} has arity {state.arity}, "
                    f"the program expects {known}"
                )

        if self.num_shards > 1:
            shard_columns = shard_columns_for_plan(plan, arities)
            self.relations = {}
            for relation_name, arity in arities.items():
                self.relations[relation_name] = ShardedRelation(
                    self.devices,
                    relation_name,
                    arity,
                    shard_column=shard_columns.get(relation_name, 0),
                    load_factor=self.load_factor,
                    eager_buffers=self.eager_buffers,
                    buffer_growth_factor=self.buffer_growth_factor,
                    incremental_merge=self.incremental_merge,
                )
            for relation_name, columns in plan.required_indexes():
                self.relations[relation_name].require_index(columns)
            evaluator = ShardedSemiNaiveEvaluator(
                self.devices,
                plan,
                self.relations,
                max_iterations=self.max_iterations,
                checkpoint_every=self.checkpoint_every,
                checkpoint_store=self.checkpoint_store,
                max_retries=self.max_retries,
                retry_backoff_seconds=self.retry_backoff_seconds,
                program_name=program.name,
                program_source=str(program),
                semijoin_filter=self.semijoin_filter,
                overlap=self.overlap,
                replicate_max_bytes=self.replicate_max_bytes,
            )
            try:
                stats = evaluator.evaluate({}, resume_from=checkpoint)
            finally:
                self._sync_devices(evaluator)
            return self._build_sharded_result(program, stats, evaluator, plan=plan)

        self.relations = {}
        for relation_name, arity in arities.items():
            self.relations[relation_name] = Relation(
                self.device,
                relation_name,
                arity,
                load_factor=self.load_factor,
                eager_buffers=self.eager_buffers,
                buffer_growth_factor=self.buffer_growth_factor,
                incremental_merge=self.incremental_merge,
            )
        for relation_name, columns in plan.required_indexes():
            self.relations[relation_name].require_index(columns)
        evaluator = SemiNaiveEvaluator(
            self.device,
            plan,
            self.relations,
            materialize_nway=self.materialize_nway,
            columnar=self.columnar,
            max_iterations=self.max_iterations,
            checkpoint_every=self.checkpoint_every,
            checkpoint_store=self.checkpoint_store,
            max_retries=self.max_retries,
            retry_backoff_seconds=self.retry_backoff_seconds,
            program_name=program.name,
            program_source=str(program),
        )
        try:
            stats = evaluator.evaluate({}, resume_from=checkpoint)
        finally:
            self.last_checkpoint = evaluator.last_checkpoint
        return self._build_result(program, stats, evaluator, plan=plan)

    def close(self) -> None:
        """Release all simulated device memory held by the engine's relations.

        Covers *every* shard device of a sharded engine, and double-close is
        a no-op (the relation map is detached before freeing, so a second
        call — or closing an engine that never ran — has nothing to do).

        Teardown is best-effort: a run killed mid-allocation (OOM, injected
        fault) can leave a holder with a stale buffer handle — e.g. a resize
        that freed the old buffer and then failed to allocate the new one.
        Releasing such a handle would raise ``DeviceBufferError`` and mask
        the error that killed the run (the adapter closes from a ``finally``
        while converting OOM to a status), so close skips it and frees the
        rest; the pool is being discarded with the engine anyway.
        """
        relations, self.relations = self.relations, {}
        for relation in relations.values():
            try:
                relation.free()
            except DeviceBufferError:
                continue

    # ------------------------------------------------------------------
    # Sharded evaluation (num_shards > 1)
    # ------------------------------------------------------------------
    def _run_sharded(self, program: Program, analysis, plan: ProgramPlan, arities) -> EvaluationResult:
        """Partitioned evaluation across the engine's shard devices.

        Relations are hash-partitioned by their canonical shard column; the
        sharded evaluator exchanges foreign-keyed tuples through the charged
        interconnect edge each iteration.  The exchange layer is pipelined
        and volume-minimizing: semi-join filters drop rows that cannot match
        on the receiving shard, shipments carry only the columns downstream
        plan steps read (cross-shard lazy batches), small static EDB inners
        are replicated instead of broadcast against, and a double-buffered
        schedule hides exchange time under the previous iteration's compute
        (see :mod:`repro.datalog.sharded`; ablations: ``semijoin_filter``,
        ``overlap``).  The ``columnar`` flag does not alter sharded execution
        — the sharded datapath is always columnar end to end.
        """
        shard_columns = shard_columns_for_plan(plan, arities)
        self.relations = {}
        for relation_name, arity in arities.items():
            self.relations[relation_name] = ShardedRelation(
                self.devices,
                relation_name,
                arity,
                shard_column=shard_columns.get(relation_name, 0),
                load_factor=self.load_factor,
                eager_buffers=self.eager_buffers,
                buffer_growth_factor=self.buffer_growth_factor,
                incremental_merge=self.incremental_merge,
            )
        for relation_name, columns in plan.required_indexes():
            self.relations[relation_name].require_index(columns)

        idb_facts: dict[str, np.ndarray] = {}
        with ExitStack() as stack:
            for device in self.devices:
                stack.enter_context(device.profiler.phase(PHASE_LOAD))
            for relation_name, relation in self.relations.items():
                rows = self._fact_rows(relation_name, relation.arity, program)
                if relation_name in analysis.idb_relations:
                    if rows.shape[0]:
                        idb_facts[relation_name] = rows
                else:
                    relation.initialize(rows)

        evaluator = ShardedSemiNaiveEvaluator(
            self.devices,
            plan,
            self.relations,
            max_iterations=self.max_iterations,
            checkpoint_every=self.checkpoint_every,
            checkpoint_store=self.checkpoint_store,
            max_retries=self.max_retries,
            retry_backoff_seconds=self.retry_backoff_seconds,
            program_name=program.name,
            program_source=str(program),
            semijoin_filter=self.semijoin_filter,
            overlap=self.overlap,
            replicate_max_bytes=self.replicate_max_bytes,
        )
        try:
            stats = evaluator.evaluate(idb_facts)
        finally:
            # Crash recovery may have swapped in replacement shard devices.
            self._sync_devices(evaluator)
        return self._build_sharded_result(program, stats, evaluator, plan=plan)

    def _sync_devices(self, evaluator: ShardedSemiNaiveEvaluator) -> None:
        self.last_checkpoint = evaluator.last_checkpoint
        self.devices = list(evaluator.devices)
        self.device = self.devices[0]

    def _build_sharded_result(
        self,
        program: Program,
        stats: EvaluationStats,
        evaluator: ShardedSemiNaiveEvaluator,
        plan: ProgramPlan | None = None,
    ) -> EvaluationResult:
        relations: dict[str, list[tuple[FactValue, ...]]] = {}
        counts: dict[str, int] = {}
        history: dict[str, list[IterationStats]] = {}
        decode = self.symbols.decode
        for relation_name, relation in self.relations.items():
            counts[relation_name] = relation.full_count
            if self.collect_relations:
                rows = relation.full_rows_host()
                relations[relation_name] = [tuple(decode(value) for value in row) for row in rows.tolist()]
            else:
                relations[relation_name] = []
            history[relation_name] = list(relation.history)

        # Shards run concurrently: elapsed time is the slowest shard; phase
        # seconds aggregate *device-seconds* across the whole cluster.
        phase_seconds: dict[str, float] = defaultdict(float)
        for device in self.devices:
            for phase, seconds in device.profiler.phase_seconds().items():
                phase_seconds[phase] += seconds
        fractions = phase_fractions_from_seconds(dict(phase_seconds), FIGURE6_PHASES)

        shard_elapsed = tuple(device.elapsed_seconds for device in self.devices)
        slowest = max(range(self.num_shards), key=lambda index: shard_elapsed[index])

        # Exchange volume, both directions.  Senders charge transfer_bytes,
        # receivers charge recv_bytes for the same payloads, so the totals
        # agree; the per-shard splits expose routing skew.
        send_per_shard = tuple(device.profiler.interconnect_bytes for device in self.devices)
        recv_per_shard = tuple(device.profiler.interconnect_recv_bytes for device in self.devices)
        traffic = [sent + received for sent, received in zip(send_per_shard, recv_per_shard)]
        total_traffic = sum(traffic)
        skew = (max(traffic) * self.num_shards / total_traffic) if total_traffic > 0 else 0.0
        # Overlap efficiency: the share of exchange time the double-buffered
        # schedule hid under the previous iteration's compute.
        hidden_seconds = sum(device.profiler.overlap_hidden_seconds for device in self.devices)
        exchange_seconds = float(phase_seconds.get(PHASE_SHARD_EXCHANGE, 0.0))
        overlap_efficiency = hidden_seconds / exchange_seconds if exchange_seconds > 0 else 0.0
        result = EvaluationResult(
            program_name=program.name,
            device_name=f"{self.device.spec.name} x{self.num_shards}",
            relations=relations,
            relation_counts=counts,
            elapsed_seconds=max(shard_elapsed),
            fixed_seconds=self.devices[slowest].profiler.fixed_seconds,
            variable_seconds=self.devices[slowest].profiler.variable_seconds,
            peak_memory_bytes=max(device.peak_memory_bytes for device in self.devices),
            total_iterations=stats.total_iterations,
            stratum_iterations={result.index: result.iterations for result in stats.strata},
            phase_seconds=dict(phase_seconds),
            phase_fractions=fractions,
            iteration_history=history,
            stats=stats,
            shard_count=self.num_shards,
            shard_elapsed_seconds=shard_elapsed,
            shard_peak_memory_bytes=tuple(device.peak_memory_bytes for device in self.devices),
            exchange_bytes=evaluator.exchange_bytes,
            exchange_tuples=evaluator.exchange_tuples,
            transient_retries=evaluator.transient_retries,
            checkpoints_taken=evaluator.checkpoints_taken,
            checkpoint_restores=evaluator.checkpoint_restores,
            shard_rebuilds=evaluator.shard_rebuilds,
            oom_degraded_dedups=sum(
                shard.oom_degradations
                for relation in self.relations.values()
                for shard in relation.shards
            ),
            exchange_recv_bytes=float(sum(recv_per_shard)),
            exchange_send_bytes_per_shard=send_per_shard,
            exchange_recv_bytes_per_shard=recv_per_shard,
            exchange_skew=skew,
            exchange_overlap_hidden_seconds=hidden_seconds,
            exchange_overlap_efficiency=overlap_efficiency,
            semijoin_rows_dropped=evaluator.semijoin_rows_dropped,
            replicated_joins=evaluator.replicated_joins,
            aligned_joins=evaluator.aligned_joins,
            broadcast_joins=evaluator.broadcast_joins,
            planner=self.planner,
            # Sharded runs execute the compiled plan statically; the report
            # carries the planning-time estimates without observations.
            plan_report=self._plan_report(plan, None),
            replans=0,
        )
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _intern_program(self, program: Program) -> Program:
        """Replace string constants in the program with interned identifiers."""
        return intern_program(program, self.symbols)

    def _resolve_arities(self, program: Program) -> dict[str, int]:
        arities = dict(program.relation_arities())
        for relation_name, arity in self._fact_arities.items():
            known = arities.get(relation_name)
            if known is None:
                arities[relation_name] = arity
            elif known != arity:
                raise SchemaError(
                    f"relation {relation_name!r} has arity {known} in the program but facts of arity {arity}"
                )
        return arities

    def _fact_rows(self, relation_name: str, arity: int, program: Program) -> np.ndarray:
        parts: list[np.ndarray] = []
        for entry in self._facts.get(relation_name, []):
            if isinstance(entry, np.ndarray):
                parts.append(entry)
            else:
                parts.append(np.asarray([entry], dtype=np.int64))
        program_facts = [
            [term.value for term in rule.head.terms]  # type: ignore[union-attr]
            for rule in program.facts()
            if rule.head.relation == relation_name
        ]
        if program_facts:
            parts.append(np.asarray(program_facts, dtype=np.int64))
        if not parts:
            return np.empty((0, arity), dtype=np.int64)
        rows = np.concatenate([np.asarray(p, dtype=np.int64).reshape(-1, arity) for p in parts], axis=0)
        return rows

    def _make_replanner(self, analysis, catalog: StatsCatalog):
        """Adaptive replanning hook: re-plan one version against live stats.

        Each call plans against a fresh snapshot of the merge-maintained
        catalog (so delta-scan versions see current delta cardinalities) and
        backfills whatever indexes the fresh pipeline probes.
        """
        planner_name = self.planner

        def replan(version):
            planner = Planner(analysis, planner=planner_name, stats=catalog.snapshot())
            replacement = planner.plan_version(version.rule, version.delta_atom_index)
            for relation_name, columns in version_required_indexes(replacement):
                relation = self.relations.get(relation_name)
                if relation is not None:
                    relation.build_index(columns)
            return replacement

        return replan

    def _plan_report(
        self, plan: ProgramPlan | None, evaluator: SemiNaiveEvaluator | None
    ) -> tuple:
        if plan is None:
            return ()
        observations = getattr(evaluator, "version_observations", {}) if evaluator else {}
        report = []
        for rule, rule_plan in plan.rule_plans.items():
            for version in rule_plan.versions:
                entry = observations.get((id(rule), version.delta_atom_index))
                current = entry["version"] if entry else version
                report.append(
                    {
                        "rule": str(rule),
                        "head": current.head_relation,
                        "delta_atom": current.delta_atom_index,
                        "planner": current.planner,
                        "algorithm": current.algorithm,
                        "atom_order": list(current.atom_order),
                        "estimated_rows": current.estimated_rows,
                        "estimated_cost": current.estimated_cost,
                        "observed_rows": float(entry["rows"]) if entry else 0.0,
                        "executions": int(entry["executions"]) if entry else 0,
                    }
                )
        return tuple(report)

    def explain(self) -> str:
        """Human-readable plan dump for the most recent run.

        One line per rule version: algorithm, body-atom join order, and
        estimated vs. observed output cardinalities (observed is summed over
        every execution of the version — 0 executions means the version
        never ran, e.g. its stratum converged immediately).
        """
        result = self.last_result
        if result is None:
            return "no run to explain (call run() first)"
        lines = [f"planner={result.planner} replans={result.replans}"]
        for entry in result.plan_report:
            estimated = entry["estimated_rows"]
            estimated_text = f"{estimated:.1f}" if estimated is not None else "n/a"
            lines.append(
                f"  {entry['rule']}"
                f"\n    version[delta_atom={entry['delta_atom']}]"
                f" algorithm={entry['algorithm']}"
                f" order={entry['atom_order']}"
                f" est_rows={estimated_text}"
                f" observed_rows={entry['observed_rows']:.0f}"
                f" executions={entry['executions']}"
            )
        return "\n".join(lines)

    def _build_result(
        self,
        program: Program,
        stats: EvaluationStats,
        evaluator: SemiNaiveEvaluator | None = None,
        plan: ProgramPlan | None = None,
    ) -> EvaluationResult:
        relations: dict[str, list[tuple[FactValue, ...]]] = {}
        counts: dict[str, int] = {}
        history: dict[str, list[IterationStats]] = {}
        decode = self.symbols.decode
        for relation_name, relation in self.relations.items():
            counts[relation_name] = relation.full_count
            if self.collect_relations:
                # Result extraction is the charged D2H edge of the transfer
                # boundary: tuples leave the device exactly once, here.
                rows = relation.full_rows_host()
                relations[relation_name] = [tuple(decode(value) for value in row) for row in rows.tolist()]
            else:
                relations[relation_name] = []
            history[relation_name] = list(relation.history)

        profiler = self.device.profiler
        result = EvaluationResult(
            program_name=program.name,
            device_name=self.device.spec.name,
            relations=relations,
            relation_counts=counts,
            elapsed_seconds=self.device.elapsed_seconds,
            fixed_seconds=profiler.fixed_seconds,
            variable_seconds=profiler.variable_seconds,
            peak_memory_bytes=self.device.peak_memory_bytes,
            total_iterations=stats.total_iterations,
            stratum_iterations={result.index: result.iterations for result in stats.strata},
            phase_seconds=profiler.phase_seconds(),
            phase_fractions=profiler.phase_fractions(FIGURE6_PHASES),
            iteration_history=history,
            stats=stats,
            transient_retries=evaluator.transient_retries if evaluator else 0,
            checkpoints_taken=evaluator.checkpoints_taken if evaluator else 0,
            checkpoint_restores=evaluator.checkpoint_restores if evaluator else 0,
            oom_chunked_joins=evaluator.oom_chunked_joins if evaluator else 0,
            oom_degraded_dedups=sum(
                relation.oom_degradations for relation in self.relations.values()
            ),
            planner=self.planner,
            plan_report=self._plan_report(plan, evaluator),
            replans=evaluator.replans if evaluator else 0,
        )
        self.last_result = result
        return result
