"""Sharded semi-naïve fixpoint evaluation across multiple simulated devices.

The single-device evaluator (:mod:`repro.datalog.seminaive`) is bound by one
device's memory and bandwidth.  This module runs the same compiled plan over
``N`` shard devices with a pipelined, volume-minimizing exchange schedule:

* every relation is hash-partitioned by its *canonical shard column* (the
  first join column its indexes are probed through most often — see
  :func:`shard_columns_for_plan`), so a probe keyed on that column finds all
  of its matches on the shard the key hashes to;
* flowing tuples move between operators as lazy
  :class:`~repro.relational.columnbatch.ColumnBatch` objects *across shard
  boundaries too*: a shipment carries only the columns a downstream plan
  step still reads (the planner's backward liveness analysis,
  :func:`~repro.datalog.planner.version_live_columns`), with selection
  chains resolved sender-side, so dead columns never cross the interconnect;
* before a repartition or broadcast, a **semi-join filter** — an exact
  per-shard key set built from the inner relation's join column and
  refreshed incrementally from deltas on merge
  (:class:`~repro.relational.semijoin.ExchangeFilterBank`) — drops outer
  rows that cannot match on the receiving shard; small static EDB inners
  are instead **replicated** once to every shard (charged through the same
  broadcast edge), turning their probes shard-local, and when every
  remaining step is local the flowing batch is **pre-routed** by the head's
  shard key so the final head route disappears entirely;
* each shard's iteration runs inside a double-buffered **overlap window**:
  the exchange for iteration i+1 is modeled as in flight while iteration
  i's join computes, so the per-window cost is ``max(compute, transfer)``
  instead of their sum (negative-seconds credits under the
  ``exchange_overlap`` profiler phase);
* the global fixpoint is reached when **all** shards' deltas are empty.

Both levers ablate independently: ``semijoin_filter=False`` restores
unfiltered, unreplicated, tail-routed exchanges, ``overlap=False`` restores
the bulk-synchronous cost model.  All cross-shard movement still goes
through the charged ``device_to_device`` / ``broadcast_to`` kernels
(``KernelCost.transfer_bytes`` at the NVLink-class interconnect bandwidth,
recorded under the ``shard_exchange`` phase), so filters and replicas only
pay off when the rows they avoid shipping outweigh the keys they cost.
Fault recovery composes unchanged: a crash mid-overlap rolls every shard
back to the last iteration-boundary checkpoint, drops the in-flight window,
and invalidates filters and replicas (they are rebuilt, charged, on demand).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from contextlib import ExitStack
from dataclasses import dataclass

import numpy as np

from ..device.cost import KernelCost
from ..device.device import Device
from ..device.profiler import PHASE_JOIN, PHASE_RECOVERY, PHASE_SHARD_EXCHANGE
from ..errors import (
    EvaluationError,
    ExchangeError,
    FixpointInterrupted,
    TransientDeviceError,
)
from ..relational.checkpoint import CheckpointStore, EvaluationCheckpoint
from ..relational.columnbatch import ColumnBatch
from ..relational.operators import hash_join, project, select
from ..relational.relation import Relation
from ..relational.semijoin import ExchangeFilterBank
from ..relational.sharded import ShardedRelation, partition_rows_host, shard_owners
from .planner import DELTA, ProgramPlan, RuleVersion, head_shard_variable, version_live_columns
from .seminaive import EvaluationStats, StratumResult

__all__ = ["ShardedSemiNaiveEvaluator", "shard_columns_for_plan"]

#: Default ceiling for replicating a static EDB inner to every shard (bytes).
DEFAULT_REPLICATE_MAX_BYTES = 4 << 20


def shard_columns_for_plan(plan: ProgramPlan, arities: dict[str, int]) -> dict[str, int]:
    """Canonical shard column per relation: the most-probed first join column.

    Counts every join *step* across every rule version (not the deduplicated
    index signatures), so a column probed by ten rules outweighs one probed
    through two distinct indexes; partitioning by the most common first join
    column makes the most probes shard-local (ties break toward the smaller
    column; relations the plan never probes default to column 0).
    """
    probe_counts: dict[str, Counter] = defaultdict(Counter)
    for rule_plan in plan.rule_plans.values():
        for version in rule_plan.versions:
            for step in version.joins:
                probe_counts[step.relation][step.join_columns[0]] += 1
    columns: dict[str, int] = {}
    for relation_name, arity in arities.items():
        counter = probe_counts.get(relation_name)
        if counter:
            columns[relation_name] = max(counter.items(), key=lambda item: (item[1], -item[0]))[0]
        else:
            columns[relation_name] = 0
    return columns


@dataclass(frozen=True)
class _VersionPlan:
    """Per-rule-version exchange schedule, computed once and cached.

    ``modes[i]`` is how step ``i``'s probe reaches its inner: ``"local"``
    (the inner is replicated on every shard), ``"aligned"`` (repartition the
    outer by the probe key) or ``"broadcast"``.  ``live_before[i]`` is the
    set of flowing-schema positions still read at or after step ``i`` — the
    only columns an exchange in front of the step may ship.  When
    ``route_before`` is set, the flowing batch is pre-routed by the head's
    shard-key variable (at ``route_position`` of that step's input schema)
    and the final head route is skipped: every later step is local, so rows
    never leave their head-owner shard again.
    """

    modes: tuple[str, ...]
    schemas: tuple[tuple[str, ...], ...]
    live_before: tuple[frozenset, ...]
    live_final: frozenset
    route_before: int | None
    route_position: int | None


class ShardedSemiNaiveEvaluator:
    """Executes a compiled program plan over hash-partitioned relations."""

    def __init__(
        self,
        devices: list[Device],
        plan: ProgramPlan,
        relations: dict[str, ShardedRelation],
        *,
        max_iterations: int = 1_000_000,
        checkpoint_every: int = 0,
        checkpoint_store: CheckpointStore | None = None,
        max_retries: int = 3,
        retry_backoff_seconds: float = 1e-3,
        program_name: str = "",
        program_source: str = "",
        semijoin_filter: bool = True,
        overlap: bool = True,
        replicate_max_bytes: int = DEFAULT_REPLICATE_MAX_BYTES,
    ) -> None:
        self.devices = list(devices)
        self.num_shards = len(self.devices)
        self.plan = plan
        self.relations = relations
        self.max_iterations = int(max_iterations)
        #: snapshot (full, delta) of every shard each N iterations (0 = off)
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_store = checkpoint_store
        self.max_retries = int(max_retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        self.program_name = program_name
        self.program_source = program_source
        #: semi-join filtering + EDB replication + head pre-routing lever
        self.semijoin_filter = bool(semijoin_filter)
        #: double-buffered exchange/compute overlap lever
        self.overlap = bool(overlap)
        self.replicate_max_bytes = int(replicate_max_bytes)
        self.last_checkpoint: EvaluationCheckpoint | None = None
        #: tuples moved across shards (the exchange volume in rows)
        self.exchange_tuples = 0
        #: join steps whose probe was shard-local after a key repartition
        self.aligned_joins = 0
        #: join steps that actually replicated outer rows (a filtered
        #: broadcast that ships nothing does not count)
        self.broadcast_joins = 0
        #: join steps answered from a replicated EDB inner (no exchange)
        self.replicated_joins = 0
        #: outer rows dropped by semi-join filters before shipping
        self.semijoin_rows_dropped = 0
        # Recovery counters (surfaced by the engine result).
        self.transient_retries = 0
        self.checkpoints_taken = 0
        self.checkpoint_restores = 0
        self.shard_rebuilds = 0
        # Exchange-schedule state (rebuilt on demand, dropped on rollback).
        self._filters = ExchangeFilterBank(self.devices)
        self._replicas: dict[str, list[Relation]] = {}
        self._replica_decision: dict[str, bool] = {}
        self._version_plans: dict[int, _VersionPlan] = {}

    @property
    def exchange_bytes(self) -> float:
        """Total interconnect bytes moved (sender-side, no double counting)."""
        return sum(device.profiler.interconnect_bytes for device in self.devices)

    # ------------------------------------------------------------------
    def evaluate(self, idb_facts=None, *, resume_from: EvaluationCheckpoint | None = None) -> EvaluationStats:
        """Run every stratum to its global fixpoint (all shards' deltas empty)."""
        idb_facts = dict(idb_facts or {})
        stats = EvaluationStats()
        analysis = self.plan.analysis

        try:
            return self._evaluate(idb_facts, stats, analysis, resume_from)
        finally:
            # Replicas hold real pool buffers and filters hold key arrays;
            # both are run-scoped caches, not results — release them so
            # ``close()`` finds every shard device empty.
            self._invalidate_exchange_state()

    def _evaluate(self, idb_facts, stats, analysis, resume_from) -> EvaluationStats:
        for stratum in analysis.strata:
            non_recursive, recursive = self.plan.versions_for_stratum(stratum.index)
            idb_in_stratum = sorted(stratum.relations & set(analysis.idb_relations))
            start_iteration = 0

            if resume_from is not None and stratum.index < resume_from.stratum_index:
                # Completed before the checkpoint; its state is inside it.
                stats.strata.append(
                    StratumResult(
                        index=stratum.index,
                        relations=tuple(idb_in_stratum),
                        recursive=stratum.recursive,
                        iterations=0,
                    )
                )
                continue
            if (
                resume_from is not None
                and stratum.index == resume_from.stratum_index
                and not resume_from.metadata.get("pre_init")
            ):
                self.restore_checkpoint(resume_from)
                start_iteration = resume_from.iteration
                resume_from = None
            else:
                stratum_facts = {
                    name: idb_facts.pop(name) for name in idb_in_stratum if name in idb_facts
                }
                if resume_from is not None:
                    # A pre-init snapshot: restore the pre-stratum state and
                    # replay initialization (its staged ground facts travel
                    # in the checkpoint metadata).
                    self.restore_checkpoint(resume_from)
                    for name, rows in resume_from.metadata.get("idb_facts", {}).items():
                        relation = self.relations[name]
                        stratum_facts[name] = np.asarray(rows, dtype=np.int64).reshape(
                            -1, relation.arity
                        )
                    resume_from = None
                elif self.checkpoint_every and self.last_checkpoint is None:
                    # First stratum: snapshot the pre-init state (EDB facts,
                    # empty IDB) so a shard crash while initial parts are
                    # routed has a boundary to roll back to.
                    self.save_checkpoint(
                        stratum.index, 0, pre_init=True, stratum_facts=stratum_facts
                    )
                self._initialize_stratum(
                    stratum.index, idb_in_stratum, non_recursive, stratum_facts
                )

            iterations = 0
            in_place_merges = 0
            rebuild_merges = 0
            if recursive:
                iterations, in_place_merges, rebuild_merges = self._run_fixpoint(
                    stratum.index, idb_in_stratum, recursive, start_iteration=start_iteration
                )
            else:
                for name in idb_in_stratum:
                    self.relations[name].clear_delta()

            stats.strata.append(
                StratumResult(
                    index=stratum.index,
                    relations=tuple(idb_in_stratum),
                    recursive=stratum.recursive,
                    iterations=iterations,
                    in_place_merges=in_place_merges,
                    rebuild_merges=rebuild_merges,
                )
            )
        return stats

    def _initialize_stratum(
        self,
        stratum_index: int,
        idb_in_stratum: list[str],
        non_recursive: list[RuleVersion],
        stratum_facts: dict,
    ) -> None:
        """Initialise the stratum: facts + non-recursive rule results, every
        part already routed to its owner shard.

        Exchange faults (a shard dying while initial parts are routed) are
        recovered here: initialization is a pure function of the stratum's
        ground facts plus the state earlier strata left behind, so the
        crashed device is rebuilt, every shard rolls back to the last
        checkpoint (the first stratum's pre-init snapshot or the previous
        stratum's final one), and the block replays from scratch —
        ``initialize_shard`` replaces state wholesale, so a partial first
        attempt leaves no residue.
        """
        attempts = 0
        while True:
            try:
                initial_parts: dict[str, list[list]] = {
                    name: [[] for _ in range(self.num_shards)] for name in idb_in_stratum
                }
                for name, rows in stratum_facts.items():
                    self._stage_ground_facts(name, rows, initial_parts[name])
                for version in non_recursive:
                    parts = self._retry_transient(
                        lambda version=version: self._execute_version(version),
                        label=f"{version.head_relation}<-{version.initial.relation}",
                    )
                    bucket = initial_parts[version.head_relation]
                    for shard, batch in enumerate(parts):
                        if len(batch):
                            bucket[shard].append(batch)
                for name in idb_in_stratum:
                    relation = self.relations[name]
                    for shard in range(self.num_shards):
                        backend = self.devices[shard].backend
                        parts = [
                            part.as_rows(label=f"{name}.init_materialize")
                            if isinstance(part, ColumnBatch)
                            else part
                            for part in initial_parts[name][shard]
                        ]
                        if not parts:
                            rows = backend.empty((0, relation.arity), dtype=backend.int64)
                        elif len(parts) == 1:
                            rows = parts[0]
                        else:
                            rows = backend.concatenate(parts, axis=0)
                        relation.initialize_shard(shard, rows, device_resident=True)
                return
            except ExchangeError as error:
                attempts += 1
                # Recovery needs a boundary that still holds the rebuilt
                # shard's pre-stratum partitions (EDB facts, earlier strata):
                # the first stratum's pre-init snapshot or the previous
                # stratum's final one.  Without checkpointing there is none.
                if attempts > self.max_retries or self.last_checkpoint is None:
                    raise FixpointInterrupted(
                        f"stratum {stratum_index} initialization: {error}",
                        checkpoint=self.last_checkpoint,
                        cause=error,
                    ) from error
                self._rebuild_crashed_shard(error)
                self.restore_checkpoint(self.last_checkpoint)
                self._charge_backoff(attempts, label="shard_rebuild")

    def _stage_ground_facts(self, name: str, rows, buckets: list[list]) -> None:
        """Partition host ground facts by owner and upload each part (charged H2D)."""
        relation = self.relations[name]
        parts = partition_rows_host(rows, relation.shard_column, self.num_shards)
        for shard, part in enumerate(parts):
            if part.shape[0]:
                device = self.devices[shard]
                buckets[shard].append(
                    device.kernels.from_host(part, dtype=device.backend.int64, label=f"{name}.h2d_facts")
                )

    # ------------------------------------------------------------------
    def delta_fixpoint(
        self,
        versions: list[RuleVersion],
        seeds: dict[str, "np.ndarray"],
        *,
        relation_names: list[str] | None = None,
    ) -> tuple[int, int, int]:
        """Run one delta-seeded fixpoint across the shard cluster (an epoch).

        The sharded twin of
        :meth:`~repro.datalog.seminaive.SemiNaiveEvaluator.delta_fixpoint`:
        host seed rows are routed to their owner shards (charged per-shard
        H2D), distilled into per-shard deltas, and the cluster fixpoint runs
        the supplied all-atom delta versions through the ordinary exchange
        machinery until every shard's delta is empty.

        Exchange caches are invalidated on entry *and* exit: replicated EDB
        inners and semi-join filters were built against pre-epoch fulls, and
        a mutation (especially a retraction applied between epochs) makes
        them stale — replicas would serve deleted tuples, which is a
        correctness bug, not just a pruning inefficiency.  They are rebuilt,
        charged, on first use inside the epoch.
        """
        names = sorted(relation_names if relation_names is not None else self.relations)
        self._invalidate_exchange_state()
        try:
            total_delta = 0
            for name in sorted(seeds):
                rows = seeds[name]
                relation = self.relations[name]
                if len(rows):
                    relation.add_new(rows)
                result = relation.end_iteration()
                total_delta += result.delta_count
                if result.delta_count and self._filters.has_relation(name):
                    self._filters.refresh(name, relation.shards)
            if total_delta == 0:
                return 0, 0, 0
            # Stratum -1: joint across strata, sound for positive programs.
            return self._run_fixpoint(-1, names, list(versions))
        finally:
            self._invalidate_exchange_state()

    # ------------------------------------------------------------------
    def _run_fixpoint(
        self,
        stratum_index: int,
        idb_in_stratum: list[str],
        recursive: list[RuleVersion],
        *,
        start_iteration: int = 0,
    ) -> tuple[int, int, int]:
        iteration = start_iteration
        in_place_merges = 0
        rebuild_merges = 0
        restores = 0
        if self.checkpoint_every and iteration == 0:
            # Baseline snapshot right after stratum init, so even an
            # iteration-1 crash has a boundary to roll back to.
            self.save_checkpoint(stratum_index, iteration)
        if self.overlap:
            for device in self.devices:
                device.profiler.begin_overlap_schedule()
        while True:
            iteration += 1
            if iteration > self.max_iterations:
                raise EvaluationError(
                    f"stratum {stratum_index} exceeded {self.max_iterations} iterations without reaching a fixpoint"
                )
            try:
                with ExitStack() as stack:
                    for device in self.devices:
                        stack.enter_context(device.profiler.iteration(iteration))
                    if self.overlap:
                        # One overlap window per shard per iteration: this
                        # window's exchange hides under the previous window's
                        # compute (double buffering); the credit is granted
                        # when the window closes at the iteration boundary.
                        for device in self.devices:
                            stack.enter_context(device.profiler.overlap_window())
                    for version in recursive:
                        # Skip on the *global* delta: a shard with an empty
                        # local delta still receives foreign-keyed rows via
                        # exchange.
                        if self.relations[version.initial.relation].delta_count == 0:
                            continue
                        parts = self._retry_transient(
                            lambda version=version: self._execute_version(version),
                            label=f"{version.head_relation}<-{version.initial.relation}",
                        )
                        head = self.relations[version.head_relation]
                        for shard, batch in enumerate(parts):
                            if len(batch):
                                with self.devices[shard].profiler.phase(PHASE_JOIN):
                                    head.add_new_shard(shard, batch, device_resident=True)
                    total_delta = 0
                    for name in idb_in_stratum:
                        result = self.relations[name].end_iteration()
                        total_delta += result.delta_count
                        in_place_merges += result.in_place_merges
                        rebuild_merges += result.rebuild_merges
                        # Fold the just-merged delta keys into any semi-join
                        # filters tracking this relation: the delta rows are
                        # exactly the keys that entered full this iteration.
                        if result.delta_count and self._filters.has_relation(name):
                            self._filters.refresh(name, self.relations[name].shards)
            except ExchangeError as error:
                # A shard died mid-exchange (possibly mid-overlap: the
                # in-flight window is simply dropped — its credits were only
                # granted at window close).  Its partitions are gone, and
                # the surviving shards may have advanced past the snapshot
                # boundary, so recovery is global: rebuild the dead device,
                # then roll *every* shard back to the last checkpoint.
                restores += 1
                if self.last_checkpoint is None or restores > self.max_retries:
                    raise FixpointInterrupted(
                        f"stratum {stratum_index} iteration {iteration}: {error}",
                        checkpoint=self.last_checkpoint,
                        cause=error,
                    ) from error
                self._rebuild_crashed_shard(error)
                self.restore_checkpoint(self.last_checkpoint)
                self._charge_backoff(restores, label="shard_rebuild")
                self._restart_overlap()
                iteration = self.last_checkpoint.iteration
                continue
            except TransientDeviceError as error:
                # Per-version retries are exhausted, or the fault hit a
                # non-idempotent step (merge): global rollback and replay.
                restores += 1
                if self.last_checkpoint is None or restores > self.max_retries:
                    raise FixpointInterrupted(
                        f"stratum {stratum_index} iteration {iteration}: {error}",
                        checkpoint=self.last_checkpoint,
                        cause=error,
                    ) from error
                self.restore_checkpoint(self.last_checkpoint)
                self._charge_backoff(restores, label="fixpoint_restore")
                self._restart_overlap()
                iteration = self.last_checkpoint.iteration
                continue
            if self.checkpoint_every and (
                iteration % self.checkpoint_every == 0 or total_delta == 0
            ):
                # The fixpoint itself is always snapshotted: the next
                # stratum's initialization rolls back to it if a shard
                # crashes while initial parts are routed.
                self.save_checkpoint(stratum_index, iteration)
            if total_delta == 0:
                break
        return iteration, in_place_merges, rebuild_merges

    def _restart_overlap(self) -> None:
        """Refill the pipeline after a rollback: the first replayed window
        has no in-flight predecessor to hide behind."""
        if self.overlap:
            for device in self.devices:
                device.profiler.begin_overlap_schedule()

    # ------------------------------------------------------------------
    # Fault recovery
    # ------------------------------------------------------------------
    def save_checkpoint(
        self,
        stratum_index: int,
        iteration: int,
        *,
        pre_init: bool = False,
        stratum_facts: dict | None = None,
    ) -> EvaluationCheckpoint:
        """Snapshot every relation across every shard at an iteration boundary.

        A ``pre_init`` snapshot captures the state *before* the stratum's
        initialization ran; resuming from one replays initialization, so any
        staged IDB ground facts ride along in the metadata.
        """
        metadata: dict = {}
        if pre_init:
            metadata["pre_init"] = True
            metadata["idb_facts"] = {
                name: np.asarray(rows, dtype=np.int64).tolist()
                for name, rows in (stratum_facts or {}).items()
            }
        checkpoint = EvaluationCheckpoint(
            program_name=self.program_name,
            stratum_index=stratum_index,
            iteration=iteration,
            num_shards=self.num_shards,
            relations={
                name: relation.checkpoint_state() for name, relation in self.relations.items()
            },
            program_source=self.program_source,
            metadata=metadata,
        )
        if self.checkpoint_store is not None:
            self.checkpoint_store.save(checkpoint)
        self.last_checkpoint = checkpoint
        self.checkpoints_taken += 1
        return checkpoint

    def restore_checkpoint(self, checkpoint: EvaluationCheckpoint) -> None:
        """Roll every shard of every relation back to the checkpoint boundary."""
        for name, state in checkpoint.relations.items():
            relation = self.relations.get(name)
            if relation is not None:
                relation.restore(state)
        self.last_checkpoint = checkpoint
        self.checkpoint_restores += 1
        # Filters were built from the pre-rollback fulls and replicas may
        # live on a device that no longer exists: drop both, they are
        # rebuilt (and re-charged) on demand from the restored state.
        self._invalidate_exchange_state()

    def _invalidate_exchange_state(self) -> None:
        """Drop semi-join filters and EDB replicas (rollback/rebuild path)."""
        for replicas in self._replicas.values():
            for replica in replicas:
                try:
                    replica.free()
                except Exception:
                    # A replica on the crashed device died with its pool.
                    pass
        self._replicas.clear()
        self._filters.invalidate()

    def _rebuild_crashed_shard(self, error: ExchangeError) -> None:
        """Replace the device that died mid-exchange with a fresh clone.

        The replacement keeps the crashed device's profiler (the cluster
        time it burned is real) and the shared fault plan (occurrence
        counters are cluster-global), but starts with an empty memory pool —
        the old buffers died with the device.  Every relation swaps in an
        empty shard on the clone; :meth:`restore_checkpoint` then reloads
        its partitions.
        """
        crashed = error.device if error.device in self.devices else self.devices[0]
        index = self.devices.index(crashed)
        replacement = Device(
            crashed.spec,
            memory_capacity_bytes=crashed.pool.capacity_bytes,
            oom_enabled=crashed.pool.oom_enabled,
            backend=crashed.backend,
            profiler=crashed.profiler,
            fault_plan=crashed.fault_plan,
        )
        self.devices[index] = replacement
        for relation in self.relations.values():
            relation.rebuild_shard(index, replacement)
        self.shard_rebuilds += 1
        self._invalidate_exchange_state()

    def _retry_transient(self, attempt, *, label: str):
        """Retry an idempotent step on transient kernel faults with backoff."""
        retries = 0
        while True:
            try:
                return attempt()
            except TransientDeviceError:
                retries += 1
                self.transient_retries += 1
                if retries > self.max_retries:
                    raise
                self._charge_backoff(retries, label=label)

    def _charge_backoff(self, attempt: int, *, label: str) -> None:
        """Record simulated exponential backoff on shard 0 (the coordinator)."""
        seconds = self.retry_backoff_seconds * (2 ** (attempt - 1))
        self.devices[0].profiler.record(
            KernelCost(kernel=f"retry_backoff[{label}]", launches=0),
            seconds,
            phase=PHASE_RECOVERY,
            fixed_seconds=seconds,
        )

    # ------------------------------------------------------------------
    # Exchange scheduling (per rule version, cached)
    # ------------------------------------------------------------------
    def _replicable(self, name: str) -> bool:
        """True if ``name`` is a small static EDB inner worth replicating."""
        if not self.semijoin_filter or self.num_shards == 1:
            return False
        cached = self._replica_decision.get(name)
        if cached is not None:
            return cached
        relation = self.relations[name]
        payload_bytes = relation.full_count * relation.arity * 8
        decision = (
            name not in self.plan.analysis.idb_relations
            and 0 < payload_bytes <= self.replicate_max_bytes
        )
        self._replica_decision[name] = decision
        return decision

    def _version_plan(self, version: RuleVersion) -> _VersionPlan:
        plan = self._version_plans.get(id(version))
        if plan is not None:
            return plan
        live_before, live_final = version_live_columns(version)
        schemas = tuple(
            [tuple(version.initial.schema)] + [tuple(step.schema) for step in version.joins]
        )
        modes = []
        for step in version.joins:
            if self._replicable(step.relation):
                modes.append("local")
            elif self.relations[step.relation].aligned_with(step.join_columns):
                modes.append("aligned")
            else:
                modes.append("broadcast")
        route_before: int | None = None
        route_position: int | None = None
        if self.semijoin_filter and version.joins and self.num_shards > 1:
            head_var = head_shard_variable(
                version, self.relations[version.head_relation].shard_column
            )
            if head_var is not None:
                for index in range(len(version.joins)):
                    if head_var in schemas[index] and all(
                        mode == "local" for mode in modes[index:]
                    ):
                        route_before = index
                        route_position = schemas[index].index(head_var)
                        break
        plan = _VersionPlan(
            modes=tuple(modes),
            schemas=schemas,
            live_before=live_before,
            live_final=live_final,
            route_before=route_before,
            route_position=route_position,
        )
        self._version_plans[id(version)] = plan
        return plan

    def _replica_for(self, name: str, probe_columns: tuple[int, ...]) -> list[Relation]:
        """Full copies of EDB relation ``name``, one per shard device.

        Built once: every shard broadcasts its partition to all peers over
        the charged interconnect, each device concatenates what it received
        and pays the normal dedup/index build of ``Relation.initialize``.
        Only the index a probe actually uses is built (``probe_columns``,
        extended on demand when another rule probes a different column set
        — the source relation's identity index, for example, exists for
        merge/dedup, which a read-only replica never does).  Dropped (and
        rebuilt on demand) when a fault rolls the cluster back.
        """
        replicas = self._replicas.get(name)
        if replicas is not None:
            for replica in replicas:
                replica.build_index(probe_columns)
            return replicas
        relation = self.relations[name]
        parts_per_target: list[list] = [[] for _ in range(self.num_shards)]
        for source in range(self.num_shards):
            device = self.devices[source]
            rows = relation.shards[source].full_rows()
            if not len(rows):
                continue
            parts_per_target[source].append(rows)
            targets = [shard for shard in range(self.num_shards) if shard != source]
            copies = device.kernels.broadcast_to(
                rows, [self.devices[target] for target in targets], label=f"{name}.replicate"
            )
            for target, copy in zip(targets, copies):
                parts_per_target[target].append(copy)
        replicas = []
        try:
            for shard in range(self.num_shards):
                device = self.devices[shard]
                replica = Relation(
                    device,
                    f"{name}.replica",
                    relation.arity,
                    identity_index=False,
                    **relation._relation_config,
                )
                replica.require_index(probe_columns)
                parts = parts_per_target[shard]
                if not parts:
                    rows = device.backend.empty((0, relation.arity), dtype=device.backend.int64)
                elif len(parts) == 1:
                    rows = parts[0]
                else:
                    with device.profiler.phase(PHASE_SHARD_EXCHANGE):
                        rows = device.kernels.concatenate_rows(parts, label=f"{name}.replicate.gather")
                replica.initialize(rows, device_resident=True)
                replicas.append(replica)
        except BaseException:
            for replica in replicas:
                replica.free()
            raise
        self._replicas[name] = replicas
        return replicas

    # ------------------------------------------------------------------
    # Rule-version execution (per shard, with exchange barriers)
    # ------------------------------------------------------------------
    def _execute_version(self, version: RuleVersion) -> list[ColumnBatch]:
        """Execute one rule version; returns per-shard head batches, already
        routed to the head relation's owner shards."""
        plan = self._version_plan(version)
        batches = self._initial_rows(version)
        routed = False
        for index, step in enumerate(version.joins):
            if self._total(batches) == 0:
                return self._empties(len(version.head))
            if not routed and plan.route_before == index:
                batches = self._exchange(
                    batches,
                    key_position=plan.route_position,
                    width=len(plan.schemas[index]),
                    live=set(plan.live_before[index]) | {plan.route_position},
                    label=f"{version.head_relation}.route_early",
                )
                routed = True
            inner = self.relations[step.relation]
            mode = plan.modes[index]
            if mode == "local":
                self.replicated_joins += 1
                inners = self._replica_for(step.relation, tuple(step.join_columns))
            elif mode == "aligned":
                self.aligned_joins += 1
                batches = self._exchange(
                    batches,
                    key_position=step.outer_key_positions[0],
                    width=len(plan.schemas[index]),
                    live=set(plan.live_before[index]),
                    label=f"{version.head_relation}<-{step.relation}.route",
                    filter_key=(step.relation, step.join_columns[0]),
                )
                inners = inner.shards
            else:
                batches, shipped = self._broadcast(
                    batches,
                    key_position=step.outer_key_positions[0],
                    width=len(plan.schemas[index]),
                    live=set(plan.live_before[index]),
                    label=f"{version.head_relation}<-{step.relation}.bcast",
                    filter_key=(step.relation, step.join_columns[0]),
                )
                if shipped:
                    self.broadcast_joins += 1
                inners = inner.shards
            next_batches = []
            for shard, batch in enumerate(batches):
                device = self.devices[shard]
                if len(batch) == 0:
                    next_batches.append(ColumnBatch.empty(device, len(step.schema)))
                    continue
                with device.profiler.phase(PHASE_JOIN):
                    out = hash_join(
                        device,
                        batch,
                        step.outer_key_positions,
                        inners[shard].index_for(step.join_columns),
                        step.output,
                        comparisons=step.filters,
                        label=f"{version.head_relation}<-{step.relation}",
                    )
                    if step.post_projection is not None and len(out):
                        out = project(
                            device, out, step.post_projection, label=f"{version.head_relation}.trim"
                        )
                if len(out) == 0:
                    out = ColumnBatch.empty(device, len(step.schema))
                next_batches.append(ColumnBatch.wrap(device, out))
            batches = next_batches

        head_parts = []
        for shard, batch in enumerate(batches):
            device = self.devices[shard]
            with device.profiler.phase(PHASE_JOIN):
                if len(batch) and version.final_filters:
                    batch = select(
                        device, batch, version.final_filters, label=f"{version.head_relation}.filter"
                    )
                head_parts.append(self._project_head(version, batch, device))
        if routed:
            # The flow was pre-routed by the head's shard key and every later
            # step was shard-local, so each head batch already sits on its
            # owner (the pre-route hash *is* the ownership hash): no tail
            # exchange at all.
            return head_parts
        head_relation = self.relations[version.head_relation]
        return self._exchange(
            head_parts,
            key_position=head_relation.shard_column,
            width=len(version.head),
            live=set(range(len(version.head))),
            label=f"{version.head_relation}.route_new",
        )

    def _initial_rows(self, version: RuleVersion) -> list[ColumnBatch]:
        initial = version.initial
        relation = self.relations[initial.relation]
        out = []
        for shard in range(self.num_shards):
            device = self.devices[shard]
            local = relation.shards[shard]
            batch = local.delta_batch if initial.version == DELTA else local.full_batch()
            if len(batch) == 0:
                out.append(ColumnBatch.empty(device, len(initial.schema)))
                continue
            with device.profiler.phase(PHASE_JOIN):
                arity = batch.arity
                if initial.filters:
                    batch = select(
                        device, batch, initial.filters, label=f"{initial.relation}.scan_filter"
                    )
                identity = tuple(initial.projection) == tuple(range(arity))
                if not identity and len(batch):
                    batch = project(
                        device, batch, initial.projection, label=f"{initial.relation}.scan_project"
                    )
            if len(batch) == 0:
                batch = ColumnBatch.empty(device, len(initial.schema))
            out.append(ColumnBatch.wrap(device, batch))
        return out

    def _project_head(self, version: RuleVersion, batch: ColumnBatch, device: Device) -> ColumnBatch:
        if len(batch) == 0:
            return ColumnBatch.empty(device, len(version.head))
        entries = [
            ("column", head_column.position)
            if head_column.kind == "var"
            else ("constant", head_column.value)
            for head_column in version.head
        ]
        return batch.assemble(entries, label=f"{version.head_relation}.project_head")

    # ------------------------------------------------------------------
    # Exchange barriers
    # ------------------------------------------------------------------
    def _filter_bank(self, filter_key: tuple[str, int] | None) -> ExchangeFilterBank | None:
        """The filter bank with ``filter_key``'s key sets built, or ``None``."""
        if not self.semijoin_filter or filter_key is None:
            return None
        name, column = filter_key
        self._filters.ensure(name, column, self.relations[name].shards)
        return self._filters

    def _exchange(
        self,
        parts: list,
        *,
        key_position: int,
        width: int,
        live,
        label: str,
        filter_key: tuple[str, int] | None = None,
    ) -> list[ColumnBatch]:
        """Repartition flowing batches so each row sits on ``hash(row[key])``.

        Rows already on their key's shard never move, rows whose key misses
        the target shard's semi-join filter are dropped before shipping, and
        a shipped slice carries only its ``live`` columns (selection chains
        resolved sender-side) — each surviving slice crosses the interconnect
        exactly once, charged to the sender.  All of a source's outbound
        slices resolve and pack through one fused kernel sequence
        (:meth:`_ship_partitioned`); only the per-link DMA stays per target.
        """
        if self.num_shards == 1:
            return [ColumnBatch.wrap(self.devices[0], parts[0])]
        bank = self._filter_bank(filter_key)
        live_positions = sorted({int(position) for position in live} | {int(key_position)})
        slices: list[list[ColumnBatch]] = [[] for _ in range(self.num_shards)]
        for source, part in enumerate(parts):
            device = self.devices[source]
            batch = ColumnBatch.wrap(device, part)
            if len(batch) == 0:
                continue
            backend = device.backend
            with device.profiler.phase(PHASE_SHARD_EXCHANGE):
                keys = batch.column(key_position, label=f"{label}.key")
                owners = shard_owners(device, keys, self.num_shards, label=f"{label}.partition")
                outbound: list[tuple[int, object]] = []
                for target in range(self.num_shards):
                    indices = backend.nonzero_indices(owners == target)
                    if bank is not None and indices.shape[0]:
                        present = bank.probe(
                            device,
                            filter_key[0],
                            filter_key[1],
                            target,
                            backend.take(keys, indices),
                            label=f"{label}.semijoin",
                        )
                        if present is not None:
                            kept = indices[present]
                            self.semijoin_rows_dropped += int(indices.shape[0] - kept.shape[0])
                            indices = kept
                    if indices.shape[0] == 0:
                        continue
                    if target == source:
                        slices[target].append(batch.take(indices, label=f"{label}.local"))
                    else:
                        outbound.append((target, indices))
                        self.exchange_tuples += int(indices.shape[0])
                for target, shipped in self._ship_partitioned(
                    device, batch, outbound, live_positions, width, label
                ):
                    slices[target].append(shipped)
        return [
            self._gather_batches(target, slices[target], width, live_positions, label)
            for target in range(self.num_shards)
        ]

    def _broadcast(
        self,
        parts: list,
        *,
        key_position: int,
        width: int,
        live,
        label: str,
        filter_key: tuple[str, int] | None = None,
    ) -> tuple[list[ColumnBatch], int]:
        """Replicate flowing batches to every shard (misaligned probe).

        Correct for any partitioning because each *inner* tuple still lives
        on exactly one shard, so every match is produced exactly once.  With
        a semi-join filter the replication is per-target: a row ships only
        to the shards whose inner partition contains its probe key (possibly
        several, possibly none), and a target receiving nothing gets no
        transfer launch at all.  Returns ``(batches, rows_replicated)`` so
        the caller can keep ``broadcast_joins`` meaning "rows actually
        replicated".
        """
        if self.num_shards == 1:
            return [ColumnBatch.wrap(self.devices[0], parts[0])], 0
        bank = self._filter_bank(filter_key)
        live_positions = sorted({int(position) for position in live} | {int(key_position)})
        slices: list[list[ColumnBatch]] = [[] for _ in range(self.num_shards)]
        shipped_rows = 0
        for source, part in enumerate(parts):
            device = self.devices[source]
            batch = ColumnBatch.wrap(device, part)
            if len(batch) == 0:
                continue
            backend = device.backend
            if bank is None:
                # Unfiltered: one staged payload of the live columns, one
                # charged transfer per peer link.
                slices[source].append(batch)
                targets = [shard for shard in range(self.num_shards) if shard != source]
                with device.profiler.phase(PHASE_SHARD_EXCHANGE):
                    columns = batch.ship_columns(live_positions, label=label)
                    stacked = backend.column_stack(columns)
                    device.kernels.transform(
                        len(batch),
                        bytes_per_item=8.0 * len(live_positions),
                        ops_per_item=float(len(live_positions)),
                        label=f"{label}.pack",
                    )
                    copies = device.kernels.broadcast_to(
                        stacked, [self.devices[target] for target in targets], label=f"{label}.d2d"
                    )
                for target, copy in zip(targets, copies):
                    slices[target].append(
                        ColumnBatch.from_shipped(self.devices[target], copy, live_positions, width)
                    )
                shipped_rows += int(len(batch)) * len(targets)
                self.exchange_tuples += int(len(batch)) * len(targets)
                continue
            with device.profiler.phase(PHASE_SHARD_EXCHANGE):
                keys = batch.column(key_position, label=f"{label}.key")
                outbound: list[tuple[int, object]] = []
                for target in range(self.num_shards):
                    present = bank.probe(
                        device,
                        filter_key[0],
                        filter_key[1],
                        target,
                        keys,
                        label=f"{label}.semijoin",
                    )
                    if present is None:
                        indices = backend.nonzero_indices(backend.ones(len(batch), dtype=backend.bool_))
                    else:
                        indices = backend.nonzero_indices(present)
                        self.semijoin_rows_dropped += int(len(batch) - indices.shape[0])
                    if indices.shape[0] == 0:
                        continue
                    if target == source:
                        slices[target].append(batch.take(indices, label=f"{label}.local"))
                    else:
                        outbound.append((target, indices))
                        shipped_rows += int(indices.shape[0])
                        self.exchange_tuples += int(indices.shape[0])
                for target, shipped in self._ship_partitioned(
                    device, batch, outbound, live_positions, width, label
                ):
                    slices[target].append(shipped)
        return (
            [
                self._gather_batches(target, slices[target], width, live_positions, label)
                for target in range(self.num_shards)
            ],
            shipped_rows,
        )

    def _ship_partitioned(
        self,
        device: Device,
        batch: ColumnBatch,
        outbound: list,
        live_positions: list[int],
        width: int,
        label: str,
    ) -> list[tuple[int, ColumnBatch]]:
        """Move one source's outbound slices to their target shards, fused.

        ``outbound`` is ``[(target, row_indices), ...]`` for the foreign
        targets that keep at least one row.  Rather than resolving, packing
        and launching per target, the sender concatenates every outbound
        row-index set, resolves the batch's selection chains *once* at the
        combined length (live columns only), and packs all slices into one
        target-segmented buffer with a single charged kernel — per-iteration
        exchange launch latency stays flat in the shard count.  Only the
        per-link DMA (and nothing on the receiver, which takes a passive
        DMA write) remains per target; each target's segment is a zero-copy
        slice of the packed buffer.
        """
        if not outbound:
            return []
        backend = device.backend
        order = backend.concatenate([indices for _target, indices in outbound])
        sub_batch = batch.take(order, label=f"{label}.slice")
        columns = sub_batch.ship_columns(live_positions, label=label)
        stacked = backend.column_stack(columns)
        device.kernels.transform(
            len(sub_batch),
            bytes_per_item=8.0 * len(live_positions),
            ops_per_item=float(len(live_positions)),
            label=f"{label}.pack",
        )
        segments = []
        start = 0
        for target, indices in outbound:
            stop = start + int(indices.shape[0])
            segments.append((stacked[start:stop], self.devices[target]))
            start = stop
        copies = device.kernels.scatter_to(segments, label=f"{label}.d2d")
        return [
            (target, ColumnBatch.from_shipped(self.devices[target], copy, live_positions, width))
            for (target, _indices), copy in zip(outbound, copies)
        ]

    def _gather_batches(
        self, shard: int, parts: list[ColumnBatch], width: int, live_positions: list[int], label: str
    ) -> ColumnBatch:
        """Concatenate the slices a shard kept/received, live columns only."""
        device = self.devices[shard]
        if not parts:
            return ColumnBatch.empty(device, width)
        if len(parts) == 1:
            return parts[0]
        with device.profiler.phase(PHASE_SHARD_EXCHANGE):
            # One fused segmented-concat launch: every live column of every
            # received slice lands in its output offset in a single pass.
            with device.fused(f"{label}.gather_fused"):
                materialized = [
                    [part.column(position, label=f"{label}.gather") for position in live_positions]
                    for part in parts
                ]
                columns = device.kernels.concatenate_columns(materialized, label=f"{label}.gather")
        total = sum(len(part) for part in parts)
        live_map = {position: index for index, position in enumerate(live_positions)}
        placeholder = None
        full_columns = []
        for position in range(width):
            index = live_map.get(position)
            if index is not None:
                full_columns.append(columns[index])
            else:
                if placeholder is None:
                    placeholder = device.backend.zeros(total, dtype=device.backend.int64)
                full_columns.append(placeholder)
        return ColumnBatch.from_columns(device, full_columns, length=total)

    # ------------------------------------------------------------------
    def _total(self, batches: list) -> int:
        return sum(len(batch) for batch in batches)

    def _empties(self, width: int) -> list[ColumnBatch]:
        return [ColumnBatch.empty(device, width) for device in self.devices]
