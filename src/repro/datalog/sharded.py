"""Sharded semi-naïve fixpoint evaluation across multiple simulated devices.

The single-device evaluator (:mod:`repro.datalog.seminaive`) is bound by one
device's memory and bandwidth.  This module runs the same compiled plan
bulk-synchronously over ``N`` shard devices:

* every relation is hash-partitioned by its *canonical shard column* (the
  first join column its indexes are probed through most often — see
  :func:`shard_columns_for_plan`), so a probe keyed on that column finds all
  of its matches on the shard the key hashes to;
* each join step is preceded by an exchange barrier that moves only the
  outer tuples whose probe key hashes to a foreign shard (a no-op when the
  flowing rows are already partitioned on the key, e.g. the TC delta scan);
  probes on a non-canonical column fall back to broadcasting the outer side;
* head tuples are routed to the head relation's owner shards before
  ``add_new``, so per-shard deduplication / ``populate_delta`` / merge
  compose into their global counterparts (each tuple has one owner);
* the global fixpoint is reached when **all** shards' deltas are empty.

All cross-shard movement goes through the charged ``device_to_device``
kernel (``KernelCost.transfer_bytes`` at the NVLink-class
``DeviceSpec.interconnect_bandwidth_gbps``, recorded under the
``shard_exchange`` profiler phase), mirroring the PCIe boundary rule of the
host transfer edges.  Each shard device accumulates its own simulated time;
a sharded run's elapsed time is the max over shards.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from contextlib import ExitStack

import numpy as np

from ..device.cost import KernelCost
from ..device.device import Device
from ..device.profiler import PHASE_JOIN, PHASE_RECOVERY, PHASE_SHARD_EXCHANGE
from ..errors import (
    EvaluationError,
    ExchangeError,
    FixpointInterrupted,
    TransientDeviceError,
)
from ..relational.checkpoint import CheckpointStore, EvaluationCheckpoint
from ..relational.operators import hash_join, project, select
from ..relational.sharded import ShardedRelation, partition_rows, partition_rows_host
from .planner import DELTA, ProgramPlan, RuleVersion
from .seminaive import EvaluationStats, StratumResult

__all__ = ["ShardedSemiNaiveEvaluator", "shard_columns_for_plan"]


def shard_columns_for_plan(plan: ProgramPlan, arities: dict[str, int]) -> dict[str, int]:
    """Canonical shard column per relation: the most-probed first join column.

    Counts every join *step* across every rule version (not the deduplicated
    index signatures), so a column probed by ten rules outweighs one probed
    through two distinct indexes; partitioning by the most common first join
    column makes the most probes shard-local (ties break toward the smaller
    column; relations the plan never probes default to column 0).
    """
    probe_counts: dict[str, Counter] = defaultdict(Counter)
    for rule_plan in plan.rule_plans.values():
        for version in rule_plan.versions:
            for step in version.joins:
                probe_counts[step.relation][step.join_columns[0]] += 1
    columns: dict[str, int] = {}
    for relation_name, arity in arities.items():
        counter = probe_counts.get(relation_name)
        if counter:
            columns[relation_name] = max(counter.items(), key=lambda item: (item[1], -item[0]))[0]
        else:
            columns[relation_name] = 0
    return columns


class ShardedSemiNaiveEvaluator:
    """Executes a compiled program plan over hash-partitioned relations."""

    def __init__(
        self,
        devices: list[Device],
        plan: ProgramPlan,
        relations: dict[str, ShardedRelation],
        *,
        max_iterations: int = 1_000_000,
        checkpoint_every: int = 0,
        checkpoint_store: CheckpointStore | None = None,
        max_retries: int = 3,
        retry_backoff_seconds: float = 1e-3,
        program_name: str = "",
        program_source: str = "",
    ) -> None:
        self.devices = list(devices)
        self.num_shards = len(self.devices)
        self.plan = plan
        self.relations = relations
        self.max_iterations = int(max_iterations)
        #: snapshot (full, delta) of every shard each N iterations (0 = off)
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_store = checkpoint_store
        self.max_retries = int(max_retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        self.program_name = program_name
        self.program_source = program_source
        self.last_checkpoint: EvaluationCheckpoint | None = None
        #: tuples moved across shards (the exchange volume in rows)
        self.exchange_tuples = 0
        #: join steps whose probe was shard-local after a key repartition
        self.aligned_joins = 0
        #: join steps that had to broadcast the outer side (misaligned probe)
        self.broadcast_joins = 0
        # Recovery counters (surfaced by the engine result).
        self.transient_retries = 0
        self.checkpoints_taken = 0
        self.checkpoint_restores = 0
        self.shard_rebuilds = 0

    @property
    def exchange_bytes(self) -> float:
        """Total interconnect bytes moved (sender-side, no double counting)."""
        return sum(device.profiler.interconnect_bytes for device in self.devices)

    # ------------------------------------------------------------------
    def evaluate(self, idb_facts=None, *, resume_from: EvaluationCheckpoint | None = None) -> EvaluationStats:
        """Run every stratum to its global fixpoint (all shards' deltas empty)."""
        idb_facts = dict(idb_facts or {})
        stats = EvaluationStats()
        analysis = self.plan.analysis

        for stratum in analysis.strata:
            non_recursive, recursive = self.plan.versions_for_stratum(stratum.index)
            idb_in_stratum = sorted(stratum.relations & set(analysis.idb_relations))
            start_iteration = 0

            if resume_from is not None and stratum.index < resume_from.stratum_index:
                # Completed before the checkpoint; its state is inside it.
                stats.strata.append(
                    StratumResult(
                        index=stratum.index,
                        relations=tuple(idb_in_stratum),
                        recursive=stratum.recursive,
                        iterations=0,
                    )
                )
                continue
            if (
                resume_from is not None
                and stratum.index == resume_from.stratum_index
                and not resume_from.metadata.get("pre_init")
            ):
                self.restore_checkpoint(resume_from)
                start_iteration = resume_from.iteration
                resume_from = None
            else:
                stratum_facts = {
                    name: idb_facts.pop(name) for name in idb_in_stratum if name in idb_facts
                }
                if resume_from is not None:
                    # A pre-init snapshot: restore the pre-stratum state and
                    # replay initialization (its staged ground facts travel
                    # in the checkpoint metadata).
                    self.restore_checkpoint(resume_from)
                    for name, rows in resume_from.metadata.get("idb_facts", {}).items():
                        relation = self.relations[name]
                        stratum_facts[name] = np.asarray(rows, dtype=np.int64).reshape(
                            -1, relation.arity
                        )
                    resume_from = None
                elif self.checkpoint_every and self.last_checkpoint is None:
                    # First stratum: snapshot the pre-init state (EDB facts,
                    # empty IDB) so a shard crash while initial parts are
                    # routed has a boundary to roll back to.
                    self.save_checkpoint(
                        stratum.index, 0, pre_init=True, stratum_facts=stratum_facts
                    )
                self._initialize_stratum(
                    stratum.index, idb_in_stratum, non_recursive, stratum_facts
                )

            iterations = 0
            in_place_merges = 0
            rebuild_merges = 0
            if recursive:
                iterations, in_place_merges, rebuild_merges = self._run_fixpoint(
                    stratum.index, idb_in_stratum, recursive, start_iteration=start_iteration
                )
            else:
                for name in idb_in_stratum:
                    self.relations[name].clear_delta()

            stats.strata.append(
                StratumResult(
                    index=stratum.index,
                    relations=tuple(idb_in_stratum),
                    recursive=stratum.recursive,
                    iterations=iterations,
                    in_place_merges=in_place_merges,
                    rebuild_merges=rebuild_merges,
                )
            )
        return stats

    def _initialize_stratum(
        self,
        stratum_index: int,
        idb_in_stratum: list[str],
        non_recursive: list[RuleVersion],
        stratum_facts: dict,
    ) -> None:
        """Initialise the stratum: facts + non-recursive rule results, every
        part already routed to its owner shard.

        Exchange faults (a shard dying while initial parts are routed) are
        recovered here: initialization is a pure function of the stratum's
        ground facts plus the state earlier strata left behind, so the
        crashed device is rebuilt, every shard rolls back to the last
        checkpoint (the first stratum's pre-init snapshot or the previous
        stratum's final one), and the block replays from scratch —
        ``initialize_shard`` replaces state wholesale, so a partial first
        attempt leaves no residue.
        """
        attempts = 0
        while True:
            try:
                initial_parts: dict[str, list[list]] = {
                    name: [[] for _ in range(self.num_shards)] for name in idb_in_stratum
                }
                for name, rows in stratum_facts.items():
                    self._stage_ground_facts(name, rows, initial_parts[name])
                for version in non_recursive:
                    parts = self._retry_transient(
                        lambda version=version: self._execute_version(version),
                        label=f"{version.head_relation}<-{version.initial.relation}",
                    )
                    bucket = initial_parts[version.head_relation]
                    for shard, rows in enumerate(parts):
                        if len(rows):
                            bucket[shard].append(rows)
                for name in idb_in_stratum:
                    relation = self.relations[name]
                    for shard in range(self.num_shards):
                        backend = self.devices[shard].backend
                        parts = initial_parts[name][shard]
                        if not parts:
                            rows = backend.empty((0, relation.arity), dtype=backend.int64)
                        elif len(parts) == 1:
                            rows = parts[0]
                        else:
                            rows = backend.concatenate(parts, axis=0)
                        relation.initialize_shard(shard, rows, device_resident=True)
                return
            except ExchangeError as error:
                attempts += 1
                # Recovery needs a boundary that still holds the rebuilt
                # shard's pre-stratum partitions (EDB facts, earlier strata):
                # the first stratum's pre-init snapshot or the previous
                # stratum's final one.  Without checkpointing there is none.
                if attempts > self.max_retries or self.last_checkpoint is None:
                    raise FixpointInterrupted(
                        f"stratum {stratum_index} initialization: {error}",
                        checkpoint=self.last_checkpoint,
                        cause=error,
                    ) from error
                self._rebuild_crashed_shard(error)
                self.restore_checkpoint(self.last_checkpoint)
                self._charge_backoff(attempts, label="shard_rebuild")

    def _stage_ground_facts(self, name: str, rows, buckets: list[list]) -> None:
        """Partition host ground facts by owner and upload each part (charged H2D)."""
        relation = self.relations[name]
        parts = partition_rows_host(rows, relation.shard_column, self.num_shards)
        for shard, part in enumerate(parts):
            if part.shape[0]:
                device = self.devices[shard]
                buckets[shard].append(
                    device.kernels.from_host(part, dtype=device.backend.int64, label=f"{name}.h2d_facts")
                )

    # ------------------------------------------------------------------
    def _run_fixpoint(
        self,
        stratum_index: int,
        idb_in_stratum: list[str],
        recursive: list[RuleVersion],
        *,
        start_iteration: int = 0,
    ) -> tuple[int, int, int]:
        iteration = start_iteration
        in_place_merges = 0
        rebuild_merges = 0
        restores = 0
        if self.checkpoint_every and iteration == 0:
            # Baseline snapshot right after stratum init, so even an
            # iteration-1 crash has a boundary to roll back to.
            self.save_checkpoint(stratum_index, iteration)
        while True:
            iteration += 1
            if iteration > self.max_iterations:
                raise EvaluationError(
                    f"stratum {stratum_index} exceeded {self.max_iterations} iterations without reaching a fixpoint"
                )
            try:
                with ExitStack() as stack:
                    for device in self.devices:
                        stack.enter_context(device.profiler.iteration(iteration))
                    for version in recursive:
                        # Skip on the *global* delta: a shard with an empty
                        # local delta still receives foreign-keyed rows via
                        # exchange.
                        if self.relations[version.initial.relation].delta_count == 0:
                            continue
                        parts = self._retry_transient(
                            lambda version=version: self._execute_version(version),
                            label=f"{version.head_relation}<-{version.initial.relation}",
                        )
                        head = self.relations[version.head_relation]
                        for shard, rows in enumerate(parts):
                            if len(rows):
                                with self.devices[shard].profiler.phase(PHASE_JOIN):
                                    head.add_new_shard(shard, rows, device_resident=True)
                    total_delta = 0
                    for name in idb_in_stratum:
                        result = self.relations[name].end_iteration()
                        total_delta += result.delta_count
                        in_place_merges += result.in_place_merges
                        rebuild_merges += result.rebuild_merges
            except ExchangeError as error:
                # A shard died mid-exchange.  Its partitions are gone, and
                # the surviving shards may have advanced past the snapshot
                # boundary, so recovery is global: rebuild the dead device,
                # then roll *every* shard back to the last checkpoint.
                restores += 1
                if self.last_checkpoint is None or restores > self.max_retries:
                    raise FixpointInterrupted(
                        f"stratum {stratum_index} iteration {iteration}: {error}",
                        checkpoint=self.last_checkpoint,
                        cause=error,
                    ) from error
                self._rebuild_crashed_shard(error)
                self.restore_checkpoint(self.last_checkpoint)
                self._charge_backoff(restores, label="shard_rebuild")
                iteration = self.last_checkpoint.iteration
                continue
            except TransientDeviceError as error:
                # Per-version retries are exhausted, or the fault hit a
                # non-idempotent step (merge): global rollback and replay.
                restores += 1
                if self.last_checkpoint is None or restores > self.max_retries:
                    raise FixpointInterrupted(
                        f"stratum {stratum_index} iteration {iteration}: {error}",
                        checkpoint=self.last_checkpoint,
                        cause=error,
                    ) from error
                self.restore_checkpoint(self.last_checkpoint)
                self._charge_backoff(restores, label="fixpoint_restore")
                iteration = self.last_checkpoint.iteration
                continue
            if self.checkpoint_every and (
                iteration % self.checkpoint_every == 0 or total_delta == 0
            ):
                # The fixpoint itself is always snapshotted: the next
                # stratum's initialization rolls back to it if a shard
                # crashes while initial parts are routed.
                self.save_checkpoint(stratum_index, iteration)
            if total_delta == 0:
                break
        return iteration, in_place_merges, rebuild_merges

    # ------------------------------------------------------------------
    # Fault recovery
    # ------------------------------------------------------------------
    def save_checkpoint(
        self,
        stratum_index: int,
        iteration: int,
        *,
        pre_init: bool = False,
        stratum_facts: dict | None = None,
    ) -> EvaluationCheckpoint:
        """Snapshot every relation across every shard at an iteration boundary.

        A ``pre_init`` snapshot captures the state *before* the stratum's
        initialization ran; resuming from one replays initialization, so any
        staged IDB ground facts ride along in the metadata.
        """
        metadata: dict = {}
        if pre_init:
            metadata["pre_init"] = True
            metadata["idb_facts"] = {
                name: np.asarray(rows, dtype=np.int64).tolist()
                for name, rows in (stratum_facts or {}).items()
            }
        checkpoint = EvaluationCheckpoint(
            program_name=self.program_name,
            stratum_index=stratum_index,
            iteration=iteration,
            num_shards=self.num_shards,
            relations={
                name: relation.checkpoint_state() for name, relation in self.relations.items()
            },
            program_source=self.program_source,
            metadata=metadata,
        )
        if self.checkpoint_store is not None:
            self.checkpoint_store.save(checkpoint)
        self.last_checkpoint = checkpoint
        self.checkpoints_taken += 1
        return checkpoint

    def restore_checkpoint(self, checkpoint: EvaluationCheckpoint) -> None:
        """Roll every shard of every relation back to the checkpoint boundary."""
        for name, state in checkpoint.relations.items():
            relation = self.relations.get(name)
            if relation is not None:
                relation.restore(state)
        self.last_checkpoint = checkpoint
        self.checkpoint_restores += 1

    def _rebuild_crashed_shard(self, error: ExchangeError) -> None:
        """Replace the device that died mid-exchange with a fresh clone.

        The replacement keeps the crashed device's profiler (the cluster
        time it burned is real) and the shared fault plan (occurrence
        counters are cluster-global), but starts with an empty memory pool —
        the old buffers died with the device.  Every relation swaps in an
        empty shard on the clone; :meth:`restore_checkpoint` then reloads
        its partitions.
        """
        crashed = error.device if error.device in self.devices else self.devices[0]
        index = self.devices.index(crashed)
        replacement = Device(
            crashed.spec,
            memory_capacity_bytes=crashed.pool.capacity_bytes,
            oom_enabled=crashed.pool.oom_enabled,
            backend=crashed.backend,
            profiler=crashed.profiler,
            fault_plan=crashed.fault_plan,
        )
        self.devices[index] = replacement
        for relation in self.relations.values():
            relation.rebuild_shard(index, replacement)
        self.shard_rebuilds += 1

    def _retry_transient(self, attempt, *, label: str):
        """Retry an idempotent step on transient kernel faults with backoff."""
        retries = 0
        while True:
            try:
                return attempt()
            except TransientDeviceError:
                retries += 1
                self.transient_retries += 1
                if retries > self.max_retries:
                    raise
                self._charge_backoff(retries, label=label)

    def _charge_backoff(self, attempt: int, *, label: str) -> None:
        """Record simulated exponential backoff on shard 0 (the coordinator)."""
        seconds = self.retry_backoff_seconds * (2 ** (attempt - 1))
        self.devices[0].profiler.record(
            KernelCost(kernel=f"retry_backoff[{label}]", launches=0),
            seconds,
            phase=PHASE_RECOVERY,
            fixed_seconds=seconds,
        )

    # ------------------------------------------------------------------
    # Rule-version execution (per shard, with exchange barriers)
    # ------------------------------------------------------------------
    def _execute_version(self, version: RuleVersion) -> list:
        """Execute one rule version; returns per-shard head rows, already
        routed to the head relation's owner shards."""
        rows = self._initial_rows(version)
        for step in version.joins:
            if self._total(rows) == 0:
                return self._empties(len(version.head))
            inner = self.relations[step.relation]
            if inner.aligned_with(step.join_columns):
                self.aligned_joins += 1
                rows = self._exchange(
                    rows,
                    key_position=step.outer_key_positions[0],
                    label=f"{version.head_relation}<-{step.relation}.route",
                )
            else:
                self.broadcast_joins += 1
                rows = self._broadcast(rows, label=f"{version.head_relation}<-{step.relation}.bcast")
            next_rows = []
            for shard, shard_rows in enumerate(rows):
                device = self.devices[shard]
                backend = device.backend
                if len(shard_rows) == 0:
                    next_rows.append(backend.empty((0, len(step.schema)), dtype=backend.int64))
                    continue
                with device.profiler.phase(PHASE_JOIN):
                    out = hash_join(
                        device,
                        shard_rows,
                        step.outer_key_positions,
                        inner.shards[shard].index_for(step.join_columns),
                        step.output,
                        comparisons=step.filters,
                        label=f"{version.head_relation}<-{step.relation}",
                    )
                    if step.post_projection is not None and len(out):
                        out = project(device, out, step.post_projection, label=f"{version.head_relation}.trim")
                if len(out) == 0:
                    out = backend.empty((0, len(step.schema)), dtype=backend.int64)
                next_rows.append(out)
            rows = next_rows

        head_parts = []
        for shard, shard_rows in enumerate(rows):
            device = self.devices[shard]
            with device.profiler.phase(PHASE_JOIN):
                if len(shard_rows) and version.final_filters:
                    shard_rows = select(
                        device, shard_rows, version.final_filters, label=f"{version.head_relation}.filter"
                    )
                head_parts.append(self._project_head(version, shard_rows, device))
        head_relation = self.relations[version.head_relation]
        return self._exchange(
            head_parts,
            key_position=head_relation.shard_column,
            label=f"{version.head_relation}.route_new",
        )

    def _initial_rows(self, version: RuleVersion) -> list:
        initial = version.initial
        relation = self.relations[initial.relation]
        out = []
        for shard in range(self.num_shards):
            device = self.devices[shard]
            backend = device.backend
            local = relation.shards[shard]
            rows = local.delta_rows if initial.version == DELTA else local.full_rows()
            if len(rows) == 0:
                out.append(backend.empty((0, len(initial.schema)), dtype=backend.int64))
                continue
            with device.profiler.phase(PHASE_JOIN):
                arity = rows.shape[1]
                if initial.filters:
                    rows = select(device, rows, initial.filters, label=f"{initial.relation}.scan_filter")
                identity = tuple(initial.projection) == tuple(range(arity))
                if not identity and len(rows):
                    rows = project(device, rows, initial.projection, label=f"{initial.relation}.scan_project")
            if len(rows) == 0:
                rows = backend.empty((0, len(initial.schema)), dtype=backend.int64)
            out.append(rows)
        return out

    def _project_head(self, version: RuleVersion, rows, device: Device):
        backend = device.backend
        if len(rows) == 0:
            return backend.empty((0, len(version.head)), dtype=backend.int64)
        columns = []
        for head_column in version.head:
            if head_column.kind == "var":
                columns.append(rows[:, head_column.position])
            else:
                columns.append(backend.full(rows.shape[0], int(head_column.value), dtype=backend.int64))
        result = backend.column_stack(columns).astype(backend.int64)
        device.kernels.transform(
            rows.shape[0],
            bytes_per_item=8.0 * len(version.head),
            ops_per_item=len(version.head),
            label=f"{version.head_relation}.project_head",
        )
        return result

    # ------------------------------------------------------------------
    # Exchange barriers
    # ------------------------------------------------------------------
    def _exchange(self, rows_per_shard: list, key_position: int, label: str) -> list:
        """Repartition flowing rows so each row sits on ``hash(row[key])``.

        Rows already on their key's shard never move — this is the
        "exchange only foreign-keyed tuples" rule.  Each foreign slice
        crosses the interconnect exactly once, charged to the sender.
        """
        if self.num_shards == 1:
            return list(rows_per_shard)
        width = rows_per_shard[0].shape[1]
        slices: list[list] = [[] for _ in range(self.num_shards)]
        for source, rows in enumerate(rows_per_shard):
            if len(rows) == 0:
                continue
            device = self.devices[source]
            with device.profiler.phase(PHASE_SHARD_EXCHANGE):
                parts = partition_rows(
                    device, rows, key_position, self.num_shards, label=f"{label}.partition"
                )
            for target, part in enumerate(parts):
                if len(part) == 0:
                    continue
                if target == source:
                    slices[target].append(part)
                else:
                    slices[target].append(
                        device.kernels.device_to_device(part, self.devices[target], label=f"{label}.d2d")
                    )
                    self.exchange_tuples += int(len(part))
        return [self._gather(target, slices[target], width, label) for target in range(self.num_shards)]

    def _broadcast(self, rows_per_shard: list, label: str) -> list:
        """Send every shard's rows to every other shard (misaligned probe).

        Correct for any partitioning because each *inner* tuple still lives
        on exactly one shard, so every match is produced exactly once.
        """
        if self.num_shards == 1:
            return list(rows_per_shard)
        width = rows_per_shard[0].shape[1]
        slices: list[list] = [[] for _ in range(self.num_shards)]
        for source, rows in enumerate(rows_per_shard):
            if len(rows) == 0:
                continue
            slices[source].append(rows)
            targets = [shard for shard in range(self.num_shards) if shard != source]
            copies = self.devices[source].kernels.broadcast_to(
                rows, [self.devices[target] for target in targets], label=f"{label}.d2d"
            )
            for target, copy in zip(targets, copies):
                slices[target].append(copy)
            self.exchange_tuples += int(len(rows)) * len(targets)
        return [self._gather(target, slices[target], width, label) for target in range(self.num_shards)]

    def _gather(self, shard: int, parts: list, width: int, label: str) -> object:
        device = self.devices[shard]
        if not parts:
            return device.backend.empty((0, width), dtype=device.backend.int64)
        if len(parts) == 1:
            return parts[0]
        with device.profiler.phase(PHASE_SHARD_EXCHANGE):
            return device.kernels.concatenate_rows(parts, label=f"{label}.gather")

    # ------------------------------------------------------------------
    def _total(self, rows_per_shard: list) -> int:
        return sum(len(rows) for rows in rows_per_shard)

    def _empties(self, width: int) -> list:
        return [
            device.backend.empty((0, width), dtype=device.backend.int64) for device in self.devices
        ]
