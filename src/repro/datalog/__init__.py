"""Datalog front-end and the GPUlog engine facade.

The compilation pipeline runs parser → AST → static analysis (dependency
graph, SCC stratification, required-index discovery) → planner (rule
versions: the semi-naïve delta rewrite, cost-based join ordering, WCOJ
selection for cyclic rules) → the semi-naïve evaluator — single-device in
:mod:`.seminaive`, multi-device with charged exchanges in :mod:`.sharded`.
:class:`~repro.datalog.engine.GPULogEngine` is the one-shot facade over all
of it; the resident, incrementally-maintained counterpart lives in
:mod:`repro.serving`.  See ``docs/architecture.md`` for the layer guide.
"""

from .analysis import ProgramAnalysis, Stratum, analyze_program, dependency_graph
from .ast import (
    Atom,
    Comparison,
    Constant,
    Program,
    Rule,
    Term,
    Variable,
    make_term,
    program_from_rules,
)
from .engine import SHARDS_ENV_VAR, EvaluationResult, GPULogEngine, SymbolTable
from .parser import parse_program, parse_rule
from .planner import (
    HeadColumn,
    InitialScan,
    JoinStep,
    Planner,
    ProgramPlan,
    RulePlan,
    RuleVersion,
    plan_program,
)
from .seminaive import EvaluationStats, SemiNaiveEvaluator, StratumResult
from .sharded import ShardedSemiNaiveEvaluator, shard_columns_for_plan

__all__ = [
    "Atom",
    "Comparison",
    "Constant",
    "EvaluationResult",
    "EvaluationStats",
    "GPULogEngine",
    "HeadColumn",
    "InitialScan",
    "JoinStep",
    "Planner",
    "Program",
    "ProgramAnalysis",
    "ProgramPlan",
    "Rule",
    "RulePlan",
    "RuleVersion",
    "SHARDS_ENV_VAR",
    "SemiNaiveEvaluator",
    "ShardedSemiNaiveEvaluator",
    "StratumResult",
    "Stratum",
    "SymbolTable",
    "Term",
    "Variable",
    "analyze_program",
    "dependency_graph",
    "make_term",
    "parse_program",
    "parse_rule",
    "plan_program",
    "program_from_rules",
    "shard_columns_for_plan",
]
