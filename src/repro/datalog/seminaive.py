"""Semi-naïve fixpoint evaluation (Figure 3 of the paper).

The evaluator executes a compiled :class:`~repro.datalog.planner.ProgramPlan`
stratum by stratum.  Within a recursive stratum it repeats:

1. **Join phase** — every recursive rule version joins the *delta* version of
   its chosen atom against the *full* indexes of the other atoms and appends
   the results to the head relation's *new* version.
2. **Populate delta / index delta / merge / clear new** — handled per relation
   by :class:`~repro.relational.relation.Relation.end_iteration`.

The loop terminates when every relation of the stratum produced an empty
delta.  All kernels are charged to the engine's device, tagged with the
fixpoint iteration and phase so that Table 1 and Figure 6 can be regenerated.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..device.device import Device
from ..device.profiler import PHASE_JOIN
from ..errors import EvaluationError
from ..relational.columnbatch import ColumnBatch
from ..relational.operators import RowsLike, fused_nway_join, hash_join, project, select
from ..relational.relation import Relation
from .planner import DELTA, ProgramPlan, RuleVersion


@dataclass
class StratumResult:
    """Evaluation statistics for one stratum."""

    index: int
    relations: tuple[str, ...]
    recursive: bool
    iterations: int
    #: index merges (across relations and iterations) absorbed in place
    in_place_merges: int = 0
    #: index merges that fell back to the legacy scratch rebuild
    rebuild_merges: int = 0


@dataclass
class EvaluationStats:
    """Aggregate statistics produced by :class:`SemiNaiveEvaluator.evaluate`."""

    strata: list[StratumResult] = field(default_factory=list)

    @property
    def total_iterations(self) -> int:
        return sum(result.iterations for result in self.strata)

    @property
    def in_place_merges(self) -> int:
        """Merges the incremental path absorbed without acquiring a buffer."""
        return sum(result.in_place_merges for result in self.strata)

    @property
    def rebuild_merges(self) -> int:
        """Merges that paid the full O(|full|) scratch rebuild."""
        return sum(result.rebuild_merges for result in self.strata)


class SemiNaiveEvaluator:
    """Executes a compiled program plan over a set of relations."""

    def __init__(
        self,
        device: Device,
        plan: ProgramPlan,
        relations: dict[str, Relation],
        *,
        materialize_nway: bool = True,
        columnar: bool = True,
        max_iterations: int = 1_000_000,
    ) -> None:
        self.device = device
        self.plan = plan
        self.relations = relations
        self.materialize_nway = bool(materialize_nway)
        #: columnar (SoA) late-materialization pipeline; ``False`` runs the
        #: legacy row-array pipeline (the ablation baseline).
        self.columnar = bool(columnar)
        self.max_iterations = int(max_iterations)

    # ------------------------------------------------------------------
    def evaluate(self, idb_facts: dict[str, np.ndarray] | None = None) -> EvaluationStats:
        """Run every stratum to its fixpoint.

        ``idb_facts`` optionally supplies ground facts for IDB relations
        (loaded together with the non-recursive rule results when the
        relation's stratum starts).
        """
        idb_facts = dict(idb_facts or {})
        stats = EvaluationStats()
        analysis = self.plan.analysis

        for stratum in analysis.strata:
            non_recursive, recursive = self.plan.versions_for_stratum(stratum.index)
            idb_in_stratum = sorted(stratum.relations & set(analysis.idb_relations))

            # ----------------------------------------------------------
            # Initialise the stratum: facts + non-recursive rule results.
            # ----------------------------------------------------------
            backend = self.device.backend
            initial_rows: dict[str, list] = defaultdict(list)
            for name in idb_in_stratum:
                if name in idb_facts:
                    # Ground IDB facts are host payloads: the stratum-init
                    # edge uploads them through the charged H2D transfer.
                    initial_rows[name].append(
                        self.device.kernels.from_host(
                            idb_facts.pop(name), dtype=backend.int64, label=f"{name}.h2d_facts"
                        )
                    )
            for version in non_recursive:
                result = self._execute_version(version)
                if len(result):
                    if isinstance(result, ColumnBatch):
                        # Stratum initialization is a materialization edge:
                        # the rows feed fact loading, which indexes them all.
                        # Charged as join output (the row pipeline writes the
                        # equivalent tuples inside the join phase); the rows
                        # stay device-resident — no PCIe crossing here.
                        with self.device.profiler.phase(PHASE_JOIN):
                            result = result.as_rows(label=f"{version.head_relation}.materialize_init")
                    initial_rows[version.head_relation].append(result)
            for name in idb_in_stratum:
                relation = self.relations[name]
                parts = initial_rows.get(name, [])
                if parts:
                    rows = backend.concatenate(parts, axis=0)
                else:
                    rows = backend.empty((0, relation.arity), dtype=backend.int64)
                relation.initialize(rows, device_resident=True)

            iterations = 0
            in_place_merges = 0
            rebuild_merges = 0
            if recursive:
                iterations, in_place_merges, rebuild_merges = self._run_fixpoint(
                    stratum.index, idb_in_stratum, recursive
                )
            else:
                # Nothing recursive: clear deltas so later strata see stable fulls.
                for name in idb_in_stratum:
                    self.relations[name].clear_delta()

            stats.strata.append(
                StratumResult(
                    index=stratum.index,
                    relations=tuple(idb_in_stratum),
                    recursive=stratum.recursive,
                    iterations=iterations,
                    in_place_merges=in_place_merges,
                    rebuild_merges=rebuild_merges,
                )
            )
        return stats

    # ------------------------------------------------------------------
    def _run_fixpoint(
        self, stratum_index: int, idb_in_stratum: list[str], recursive: list[RuleVersion]
    ) -> tuple[int, int, int]:
        iteration = 0
        in_place_merges = 0
        rebuild_merges = 0
        while True:
            iteration += 1
            if iteration > self.max_iterations:
                raise EvaluationError(
                    f"stratum {stratum_index} exceeded {self.max_iterations} iterations without reaching a fixpoint"
                )
            with self.device.profiler.iteration(iteration):
                for version in recursive:
                    delta_relation = self.relations[version.initial.relation]
                    if delta_relation.delta_count == 0:
                        continue
                    result = self._execute_version(version)
                    if len(result):
                        # add_new materializes a columnar result's head
                        # columns; that is the join's output write, so it is
                        # attributed to the join phase like the row
                        # pipeline's in-kernel head projection.  Join outputs
                        # are device-resident in both pipelines — no PCIe
                        # crossing at this edge.
                        with self.device.profiler.phase(PHASE_JOIN):
                            self.relations[version.head_relation].add_new(
                                result, device_resident=True
                            )
                total_delta = 0
                for name in idb_in_stratum:
                    result = self.relations[name].end_iteration()
                    total_delta += result.delta_count
                    in_place_merges += result.in_place_merges
                    rebuild_merges += result.rebuild_merges
            if total_delta == 0:
                break
        return iteration, in_place_merges, rebuild_merges

    # ------------------------------------------------------------------
    # Rule-version execution
    # ------------------------------------------------------------------
    def _execute_version(self, version: RuleVersion) -> RowsLike:
        backend = self.device.backend
        with self.device.profiler.phase(PHASE_JOIN):
            rows = self._initial_rows(version)
            if len(rows) == 0:
                return backend.empty((0, len(version.head)), dtype=backend.int64)
            if self.materialize_nway or len(version.joins) <= 1 or not self._fusable(version):
                rows = self._execute_materialized(version, rows)
            else:
                rows = self._execute_fused(version, rows)
            if len(rows) and version.final_filters:
                rows = select(self.device, rows, version.final_filters, label=f"{version.head_relation}.filter")
            return self._project_head(version, rows)

    def _initial_rows(self, version: RuleVersion) -> RowsLike:
        initial = version.initial
        relation = self.relations[initial.relation]
        if self.columnar:
            # Zero-copy columnar scan over the relation's stored columns.
            rows: RowsLike = (
                relation.delta_batch if initial.version == DELTA else relation.full_batch()
            )
            arity = rows.arity
        else:
            rows = relation.delta_rows if initial.version == DELTA else relation.full_rows()
            arity = rows.shape[1]
        if len(rows) == 0:
            backend = self.device.backend
            return backend.empty((0, len(initial.schema)), dtype=backend.int64)
        if initial.filters:
            rows = select(self.device, rows, initial.filters, label=f"{initial.relation}.scan_filter")
        identity = tuple(initial.projection) == tuple(range(arity))
        if not identity:
            rows = project(self.device, rows, initial.projection, label=f"{initial.relation}.scan_project")
        return rows

    def _execute_materialized(self, version: RuleVersion, rows: RowsLike) -> RowsLike:
        """Temporarily-materialized join chain (Section 5.2): one kernel per step.

        In columnar mode each step's "materialization" is a lazy batch —
        balanced per-thread workloads are preserved (one binary join per
        kernel), but only the columns the next step or the head actually
        reads are ever gathered.
        """
        for step in version.joins:
            if len(rows) == 0:
                backend = self.device.backend
                return backend.empty((0, len(step.schema)), dtype=backend.int64)
            inner = self.relations[step.relation].index_for(step.join_columns)
            rows = hash_join(
                self.device,
                rows,
                step.outer_key_positions,
                inner,
                step.output,
                comparisons=step.filters,
                label=f"{version.head_relation}<-{step.relation}",
            )
            if step.post_projection is not None and len(rows):
                rows = project(self.device, rows, step.post_projection, label=f"{version.head_relation}.trim")
        return rows

    def _execute_fused(self, version: RuleVersion, rows: RowsLike) -> np.ndarray:
        """Non-materialized nested n-way join (ablation baseline of Section 5.2)."""
        stages = []
        comparisons = []
        for step in version.joins:
            inner = self.relations[step.relation].index_for(step.join_columns)
            stages.append((step.outer_key_positions, inner, step.output))
        comparisons.extend(version.joins[-1].filters)
        return fused_nway_join(
            self.device,
            rows,
            stages,
            comparisons=comparisons,
            label=f"{version.head_relation}.fused",
        )

    def _fusable(self, version: RuleVersion) -> bool:
        """A version can run fused only if intermediate steps carry no filters."""
        for step in version.joins[:-1]:
            if step.filters or step.post_projection is not None:
                return False
        return version.joins[-1].post_projection is None

    def _project_head(self, version: RuleVersion, rows: RowsLike) -> RowsLike:
        backend = self.device.backend
        if len(rows) == 0:
            return backend.empty((0, len(version.head)), dtype=backend.int64)
        if isinstance(rows, ColumnBatch):
            # Head variables are routed lazily (no copy); only constant
            # columns are written here.
            entries = [
                ("column", head_column.position)
                if head_column.kind == "var"
                else ("constant", int(head_column.value))
                for head_column in version.head
            ]
            return rows.assemble(entries, label=f"{version.head_relation}.project_head")
        columns = []
        for head_column in version.head:
            if head_column.kind == "var":
                columns.append(rows[:, head_column.position])
            else:
                columns.append(backend.full(rows.shape[0], int(head_column.value), dtype=backend.int64))
        result = backend.column_stack(columns).astype(backend.int64)
        self.device.kernels.transform(
            rows.shape[0],
            bytes_per_item=8.0 * len(version.head),
            ops_per_item=len(version.head),
            label=f"{version.head_relation}.project_head",
        )
        return result
