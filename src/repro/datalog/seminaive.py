"""Semi-naïve fixpoint evaluation (Figure 3 of the paper).

The evaluator executes a compiled :class:`~repro.datalog.planner.ProgramPlan`
stratum by stratum.  Within a recursive stratum it repeats:

1. **Join phase** — every recursive rule version joins the *delta* version of
   its chosen atom against the *full* indexes of the other atoms and appends
   the results to the head relation's *new* version.
2. **Populate delta / index delta / merge / clear new** — handled per relation
   by :class:`~repro.relational.relation.Relation.end_iteration`.

The loop terminates when every relation of the stratum produced an empty
delta.  All kernels are charged to the engine's device, tagged with the
fixpoint iteration and phase so that Table 1 and Figure 6 can be regenerated.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..device.cost import KernelCost
from ..device.device import Device
from ..device.profiler import PHASE_JOIN, PHASE_RECOVERY
from ..errors import (
    DeviceOutOfMemoryError,
    EvaluationError,
    FixpointInterrupted,
    TransientDeviceError,
)
from ..relational.checkpoint import CheckpointStore, EvaluationCheckpoint, RelationState
from ..relational.columnbatch import ColumnBatch
from ..relational.operators import RowsLike, fused_nway_join, hash_join, project, select
from ..relational.relation import Relation
from ..relational.wcoj import generic_join
from .planner import DELTA, WCOJ, ProgramPlan, RuleVersion

#: Deepest recursive halving of a rule version's input scan under OOM; at
#: depth 12 a chunk is 1/4096 of the scan and further splitting cannot help.
OOM_CHUNK_MAX_DEPTH = 12


@dataclass
class StratumResult:
    """Evaluation statistics for one stratum."""

    index: int
    relations: tuple[str, ...]
    recursive: bool
    iterations: int
    #: index merges (across relations and iterations) absorbed in place
    in_place_merges: int = 0
    #: index merges that fell back to the legacy scratch rebuild
    rebuild_merges: int = 0


@dataclass
class EvaluationStats:
    """Aggregate statistics produced by :class:`SemiNaiveEvaluator.evaluate`."""

    strata: list[StratumResult] = field(default_factory=list)

    @property
    def total_iterations(self) -> int:
        return sum(result.iterations for result in self.strata)

    @property
    def in_place_merges(self) -> int:
        """Merges the incremental path absorbed without acquiring a buffer."""
        return sum(result.in_place_merges for result in self.strata)

    @property
    def rebuild_merges(self) -> int:
        """Merges that paid the full O(|full|) scratch rebuild."""
        return sum(result.rebuild_merges for result in self.strata)


class SemiNaiveEvaluator:
    """Executes a compiled program plan over a set of relations."""

    def __init__(
        self,
        device: Device,
        plan: ProgramPlan,
        relations: dict[str, Relation],
        *,
        materialize_nway: bool = True,
        columnar: bool = True,
        max_iterations: int = 1_000_000,
        checkpoint_every: int = 0,
        checkpoint_store: CheckpointStore | None = None,
        max_retries: int = 3,
        retry_backoff_seconds: float = 1e-3,
        program_name: str = "",
        program_source: str = "",
        replan_every: int = 0,
        replanner=None,
    ) -> None:
        self.device = device
        self.plan = plan
        self.relations = relations
        self.materialize_nway = bool(materialize_nway)
        #: columnar (SoA) late-materialization pipeline; ``False`` runs the
        #: legacy row-array pipeline (the ablation baseline).
        self.columnar = bool(columnar)
        self.max_iterations = int(max_iterations)
        #: snapshot (full, delta) of every relation each N iterations (0 = off)
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_store = checkpoint_store
        #: transient-fault retries per rule version, and global restores
        self.max_retries = int(max_retries)
        #: simulated backoff before retry k is ``base * 2**(k-1)`` seconds,
        #: recorded under the recovery phase (never a wall-clock sleep)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        self.program_name = program_name
        self.program_source = program_source
        #: adaptively re-plan recursive versions every N fixpoint iterations
        #: (0 = static plans); requires ``replanner``
        self.replan_every = int(replan_every)
        #: callable ``(version) -> RuleVersion | None`` producing a fresh plan
        #: for one rule version against *current* statistics (and building
        #: whatever new indexes the fresh plan probes)
        self.replanner = replanner
        self.last_checkpoint: EvaluationCheckpoint | None = None
        # Recovery counters (surfaced by the engine result).
        self.transient_retries = 0
        self.checkpoints_taken = 0
        self.checkpoint_restores = 0
        self.oom_chunked_joins = 0
        #: recursive versions whose pipeline actually changed on a replan
        self.replans = 0
        #: per-version observed output rows, keyed by (rule identity, delta
        #: atom) so the key survives version swaps; feeds ``explain()`` and
        #: the adaptive replanning drift test
        self.version_observations: dict[tuple[int, int | None], dict] = {}

    # ------------------------------------------------------------------
    def evaluate(
        self,
        idb_facts: dict[str, np.ndarray] | None = None,
        *,
        resume_from: EvaluationCheckpoint | None = None,
    ) -> EvaluationStats:
        """Run every stratum to its fixpoint.

        ``idb_facts`` optionally supplies ground facts for IDB relations
        (loaded together with the non-recursive rule results when the
        relation's stratum starts).  ``resume_from`` skips every stratum the
        checkpoint already completed, restores all relations from its
        snapshot, and continues the checkpointed stratum at the recorded
        iteration boundary.
        """
        idb_facts = dict(idb_facts or {})
        stats = EvaluationStats()
        analysis = self.plan.analysis

        for stratum in analysis.strata:
            non_recursive, recursive = self.plan.versions_for_stratum(stratum.index)
            idb_in_stratum = sorted(stratum.relations & set(analysis.idb_relations))
            start_iteration = 0

            if resume_from is not None and stratum.index < resume_from.stratum_index:
                # Completed before the checkpoint; its state is inside it.
                stats.strata.append(
                    StratumResult(
                        index=stratum.index,
                        relations=tuple(idb_in_stratum),
                        recursive=stratum.recursive,
                        iterations=0,
                    )
                )
                continue
            if resume_from is not None and stratum.index == resume_from.stratum_index:
                self.restore_checkpoint(resume_from)
                start_iteration = resume_from.iteration
                resume_from = None
            else:
                # ------------------------------------------------------
                # Initialise the stratum: facts + non-recursive results.
                # ------------------------------------------------------
                backend = self.device.backend
                initial_rows: dict[str, list] = defaultdict(list)
                for name in idb_in_stratum:
                    if name in idb_facts:
                        # Ground IDB facts are host payloads: the stratum-init
                        # edge uploads them through the charged H2D transfer.
                        initial_rows[name].append(
                            self.device.kernels.from_host(
                                idb_facts.pop(name), dtype=backend.int64, label=f"{name}.h2d_facts"
                            )
                        )
                for version in non_recursive:
                    def stage(result, version=version):
                        if isinstance(result, ColumnBatch):
                            # Stratum initialization is a materialization edge:
                            # the rows feed fact loading, which indexes them
                            # all.  Charged as join output (the row pipeline
                            # writes the equivalent tuples inside the join
                            # phase); the rows stay device-resident — no PCIe
                            # crossing here.
                            with self.device.profiler.phase(PHASE_JOIN):
                                result = result.as_rows(
                                    label=f"{version.head_relation}.materialize_init"
                                )
                        initial_rows[version.head_relation].append(result)

                    self._execute_with_recovery(version, stage)
                for name in idb_in_stratum:
                    relation = self.relations[name]
                    parts = initial_rows.get(name, [])
                    if parts:
                        rows = backend.concatenate(parts, axis=0)
                    else:
                        rows = backend.empty((0, relation.arity), dtype=backend.int64)
                    relation.initialize(rows, device_resident=True)

            iterations = 0
            in_place_merges = 0
            rebuild_merges = 0
            if recursive:
                iterations, in_place_merges, rebuild_merges = self._run_fixpoint(
                    stratum.index, idb_in_stratum, recursive, start_iteration=start_iteration
                )
            else:
                # Nothing recursive: clear deltas so later strata see stable fulls.
                for name in idb_in_stratum:
                    self.relations[name].clear_delta()

            stats.strata.append(
                StratumResult(
                    index=stratum.index,
                    relations=tuple(idb_in_stratum),
                    recursive=stratum.recursive,
                    iterations=iterations,
                    in_place_merges=in_place_merges,
                    rebuild_merges=rebuild_merges,
                )
            )
        return stats

    # ------------------------------------------------------------------
    def delta_fixpoint(
        self,
        versions: list[RuleVersion],
        seeds: dict[str, "np.ndarray"],
        *,
        relation_names: list[str] | None = None,
    ) -> tuple[int, int, int]:
        """Run one delta-seeded semi-naïve fixpoint (a serving epoch).

        ``seeds`` maps relation names to *host* row arrays to inject; each is
        appended through the charged ``add_new`` H2D edge and distilled into
        a delta by ``end_iteration`` (rows already present are filtered by
        populate-delta, so re-inserting a known fact is a no-op).  The loop
        then runs exactly the recursive machinery of :meth:`_run_fixpoint`
        over ``versions`` — the caller supplies delta versions for *every*
        body atom of every rule (EDB atoms included), which is the complete
        incremental-maintenance version set for positive programs: any new
        derivation must use at least one delta tuple in some body position,
        and joint (delta × delta) derivations are covered because every delta
        is merged into its full version at the previous iteration boundary.

        Preconditions (the serving engine maintains them as invariants):
        every relation's delta is empty on entry, and every index any of
        ``versions`` probes was registered before the relation initialized.
        Returns ``(iterations, in_place_merges, rebuild_merges)``; zero
        iterations means every seed was already present.
        """
        names = sorted(relation_names if relation_names is not None else self.relations)
        total_delta = 0
        for name in sorted(seeds):
            rows = seeds[name]
            if len(rows):
                self.relations[name].add_new(rows)
            total_delta += self.relations[name].end_iteration().delta_count
        if total_delta == 0:
            return 0, 0, 0
        # Stratum -1: the epoch fixpoint is joint across strata (sound for
        # the positive programs this engine evaluates — monotonicity makes
        # stratum order a scheduling choice, not a semantic one).
        return self._run_fixpoint(-1, names, list(versions))

    # ------------------------------------------------------------------
    def _run_fixpoint(
        self,
        stratum_index: int,
        idb_in_stratum: list[str],
        recursive: list[RuleVersion],
        *,
        start_iteration: int = 0,
    ) -> tuple[int, int, int]:
        iteration = start_iteration
        in_place_merges = 0
        rebuild_merges = 0
        restores = 0
        if self.checkpoint_every and iteration == 0:
            # Baseline snapshot right after stratum init, so even an
            # iteration-1 fault has a boundary to roll back to.
            self.save_checkpoint(stratum_index, iteration)
        while True:
            iteration += 1
            if iteration > self.max_iterations:
                raise EvaluationError(
                    f"stratum {stratum_index} exceeded {self.max_iterations} iterations without reaching a fixpoint"
                )
            try:
                with self.device.profiler.iteration(iteration):
                    for version in recursive:
                        delta_relation = self.relations[version.initial.relation]
                        if delta_relation.delta_count == 0:
                            continue

                        def append_new(result, version=version):
                            # add_new materializes a columnar result's head
                            # columns; that is the join's output write, so it
                            # is attributed to the join phase like the row
                            # pipeline's in-kernel head projection.  Join
                            # outputs are device-resident in both pipelines —
                            # no PCIe crossing at this edge.
                            with self.device.profiler.phase(PHASE_JOIN):
                                self.relations[version.head_relation].add_new(
                                    result, device_resident=True
                                )

                        self._execute_with_recovery(version, append_new)
                    total_delta = 0
                    for name in idb_in_stratum:
                        result = self.relations[name].end_iteration()
                        total_delta += result.delta_count
                        in_place_merges += result.in_place_merges
                        rebuild_merges += result.rebuild_merges
            except TransientDeviceError as error:
                # Per-version retries are exhausted, or the fault hit a
                # non-idempotent step (merge).  Roll every relation back to
                # the last iteration boundary and replay from there; without
                # a checkpoint the fixpoint cannot be replayed safely.
                restores += 1
                if self.last_checkpoint is None or restores > self.max_retries:
                    raise FixpointInterrupted(
                        f"stratum {stratum_index} iteration {iteration}: {error}",
                        checkpoint=self.last_checkpoint,
                        cause=error,
                    ) from error
                self.restore_checkpoint(self.last_checkpoint)
                self._charge_backoff(restores, label="fixpoint_restore")
                iteration = self.last_checkpoint.iteration
                continue
            if self.checkpoint_every and (
                iteration % self.checkpoint_every == 0 or total_delta == 0
            ):
                # The fixpoint itself is always snapshotted, mirroring the
                # sharded evaluator's stratum-final boundary.
                self.save_checkpoint(stratum_index, iteration)
            if total_delta == 0:
                break
            if (
                self.replanner is not None
                and self.replan_every
                and iteration % self.replan_every == 0
            ):
                recursive[:] = [self._maybe_replan(version) for version in recursive]
        return iteration, in_place_merges, rebuild_merges

    # ------------------------------------------------------------------
    # Adaptive replanning
    # ------------------------------------------------------------------
    @staticmethod
    def _version_key(version: RuleVersion) -> tuple[int, int | None]:
        return (id(version.rule), version.delta_atom_index)

    def _observe_version(self, version: RuleVersion, rows: int) -> None:
        entry = self.version_observations.setdefault(
            self._version_key(version),
            {"version": version, "rows": 0.0, "executions": 0, "window_rows": 0.0, "window_executions": 0},
        )
        entry["version"] = version
        entry["rows"] += float(rows)
        entry["executions"] += 1
        entry["window_rows"] += float(rows)
        entry["window_executions"] += 1

    def _maybe_replan(self, version: RuleVersion) -> RuleVersion:
        """Swap in a fresh plan when observed output drifts ≥ 2x from estimate.

        Drift is measured over the window since the last replan check; a
        version whose average observed output stays within [0.5x, 2x] of its
        estimate keeps its pipeline.  A replacement with the same atom order
        and algorithm only refreshes the estimates (same kernels); a changed
        pipeline counts as a replan.
        """
        entry = self.version_observations.get(self._version_key(version))
        if entry is None or not entry["window_executions"]:
            return version
        estimated = version.estimated_rows
        observed = entry["window_rows"] / entry["window_executions"]
        entry["window_rows"] = 0.0
        entry["window_executions"] = 0
        if estimated is None:
            return version
        ratio = max(observed, 1.0) / max(estimated, 1.0)
        if 0.5 <= ratio <= 2.0:
            return version
        replacement = self.replanner(version)
        if replacement is None:
            return version
        if (replacement.atom_order, replacement.algorithm) != (
            version.atom_order,
            version.algorithm,
        ):
            self.replans += 1
        entry["version"] = replacement
        return replacement

    # ------------------------------------------------------------------
    # Fault recovery
    # ------------------------------------------------------------------
    def save_checkpoint(self, stratum_index: int, iteration: int) -> EvaluationCheckpoint:
        """Snapshot every relation's (full, delta) at an iteration boundary."""
        checkpoint = EvaluationCheckpoint(
            program_name=self.program_name,
            stratum_index=stratum_index,
            iteration=iteration,
            num_shards=1,
            relations={
                name: RelationState(
                    name=name, arity=relation.arity, partitions=[relation.checkpoint_state()]
                )
                for name, relation in self.relations.items()
            },
            program_source=self.program_source,
        )
        if self.checkpoint_store is not None:
            self.checkpoint_store.save(checkpoint)
        self.last_checkpoint = checkpoint
        self.checkpoints_taken += 1
        return checkpoint

    def restore_checkpoint(self, checkpoint: EvaluationCheckpoint) -> None:
        """Roll every relation back to the checkpoint's iteration boundary."""
        for name, state in checkpoint.relations.items():
            relation = self.relations.get(name)
            if relation is not None:
                relation.restore(state.partitions[0])
        self.last_checkpoint = checkpoint
        self.checkpoint_restores += 1

    def _execute_with_recovery(
        self,
        version: RuleVersion,
        consume,
        *,
        part: tuple[int, int] = (0, 1),
        depth: int = 0,
    ) -> None:
        """Execute one rule version and hand its output to ``consume``.

        Transient kernel faults retry the whole (idempotent) version with
        exponential backoff; re-executed appends at worst duplicate tuples
        that deduplication removes.  An out-of-memory failure degrades
        gracefully instead: the version re-executes over halved row ranges
        of its input scan (recursively, down to single rows), each chunk
        consumed independently — every extra pass is charged through the
        cost model, so degradation is visible in the profile.
        """
        label = f"{version.head_relation}<-{version.initial.relation}"
        try:
            retries = 0
            while True:
                try:
                    result = self._execute_version(version, part=part)
                    self._observe_version(version, len(result))
                    if len(result):
                        consume(result)
                    return
                except TransientDeviceError:
                    retries += 1
                    self.transient_retries += 1
                    if retries > self.max_retries:
                        raise
                    self._charge_backoff(retries, label=label)
        except DeviceOutOfMemoryError:
            index, parts = part
            span = self._part_span(version, part)
            if span <= 1 or depth >= OOM_CHUNK_MAX_DEPTH:
                raise
            self.oom_chunked_joins += 1
            self.device.profiler.record(
                KernelCost(kernel=f"oom_degrade[{label}]", launches=0),
                0.0,
                phase=PHASE_RECOVERY,
            )
            self._execute_with_recovery(version, consume, part=(2 * index, 2 * parts), depth=depth + 1)
            self._execute_with_recovery(version, consume, part=(2 * index + 1, 2 * parts), depth=depth + 1)

    def _part_span(self, version: RuleVersion, part: tuple[int, int]) -> int:
        """Rows of the version's input scan covered by chunk ``part``."""
        relation = self.relations[version.initial.relation]
        count = relation.delta_count if version.initial.version == DELTA else relation.full_count
        index, parts = part
        return (count * (index + 1)) // parts - (count * index) // parts

    def _charge_backoff(self, attempt: int, *, label: str) -> None:
        """Record the simulated exponential backoff before retry ``attempt``.

        Deterministic: the wait is charged straight into the profiler under
        the recovery phase — the simulation never sleeps.
        """
        seconds = self.retry_backoff_seconds * (2 ** (attempt - 1))
        self.device.profiler.record(
            KernelCost(kernel=f"retry_backoff[{label}]", launches=0),
            seconds,
            phase=PHASE_RECOVERY,
            fixed_seconds=seconds,
        )

    # ------------------------------------------------------------------
    # Rule-version execution
    # ------------------------------------------------------------------
    def _execute_version(self, version: RuleVersion, *, part: tuple[int, int] = (0, 1)) -> RowsLike:
        backend = self.device.backend
        with self.device.profiler.phase(PHASE_JOIN):
            rows = self._initial_rows(version, part=part)
            if len(rows) == 0:
                return backend.empty((0, len(version.head)), dtype=backend.int64)
            if version.algorithm == WCOJ and self.columnar:
                # Generic join: per-row min-side intersection over the
                # level candidates.  The row pipeline (columnar=False) runs
                # the decomposed expand/check steps below instead — same
                # result set, worst-case-suboptimal work.
                rows = generic_join(
                    self.device,
                    ColumnBatch.wrap(self.device, rows),
                    version.wcoj_levels,
                    self._index_for,
                    label=f"{version.head_relation}.wcoj",
                )
            elif self.materialize_nway or len(version.joins) <= 1 or not self._fusable(version):
                rows = self._execute_materialized(version, rows)
            else:
                rows = self._execute_fused(version, rows)
            if len(rows) and version.final_filters:
                rows = select(self.device, rows, version.final_filters, label=f"{version.head_relation}.filter")
            return self._project_head(version, rows)

    def _initial_rows(self, version: RuleVersion, part: tuple[int, int] = (0, 1)) -> RowsLike:
        initial = version.initial
        relation = self.relations[initial.relation]
        if part != (0, 1):
            # Degraded (OOM) re-execution: one row-range chunk of the input
            # scan, through the row pipeline so the slice is a plain view.
            rows = relation.delta_rows if initial.version == DELTA else relation.full_rows()
            n = rows.shape[0]
            index, parts = part
            rows = rows[(n * index) // parts : (n * (index + 1)) // parts]
            arity = rows.shape[1]
        elif self.columnar:
            # Zero-copy columnar scan over the relation's stored columns.
            rows: RowsLike = (
                relation.delta_batch if initial.version == DELTA else relation.full_batch()
            )
            arity = rows.arity
        else:
            rows = relation.delta_rows if initial.version == DELTA else relation.full_rows()
            arity = rows.shape[1]
        if len(rows) == 0:
            backend = self.device.backend
            return backend.empty((0, len(initial.schema)), dtype=backend.int64)
        if initial.filters:
            rows = select(self.device, rows, initial.filters, label=f"{initial.relation}.scan_filter")
        identity = tuple(initial.projection) == tuple(range(arity))
        if not identity:
            rows = project(self.device, rows, initial.projection, label=f"{initial.relation}.scan_project")
        return rows

    def _execute_materialized(self, version: RuleVersion, rows: RowsLike) -> RowsLike:
        """Temporarily-materialized join chain (Section 5.2): one kernel per step.

        In columnar mode each step's "materialization" is a lazy batch —
        balanced per-thread workloads are preserved (one binary join per
        kernel), but only the columns the next step or the head actually
        reads are ever gathered.
        """
        for step in version.joins:
            if len(rows) == 0:
                backend = self.device.backend
                return backend.empty((0, len(step.schema)), dtype=backend.int64)
            inner = self.relations[step.relation].index_for(step.join_columns)
            rows = hash_join(
                self.device,
                rows,
                step.outer_key_positions,
                inner,
                step.output,
                comparisons=step.filters,
                label=f"{version.head_relation}<-{step.relation}",
            )
            if step.post_projection is not None and len(rows):
                rows = project(self.device, rows, step.post_projection, label=f"{version.head_relation}.trim")
        return rows

    def _execute_fused(self, version: RuleVersion, rows: RowsLike) -> np.ndarray:
        """Non-materialized nested n-way join (ablation baseline of Section 5.2)."""
        stages = []
        comparisons = []
        for step in version.joins:
            inner = self.relations[step.relation].index_for(step.join_columns)
            stages.append((step.outer_key_positions, inner, step.output))
        comparisons.extend(version.joins[-1].filters)
        return fused_nway_join(
            self.device,
            rows,
            stages,
            comparisons=comparisons,
            label=f"{version.head_relation}.fused",
        )

    def _index_for(self, relation: str, columns: tuple[int, ...]):
        return self.relations[relation].index_for(columns)

    def _fusable(self, version: RuleVersion) -> bool:
        """A version can run fused only if intermediate steps carry no filters."""
        for step in version.joins[:-1]:
            if step.filters or step.post_projection is not None:
                return False
        return version.joins[-1].post_projection is None

    def _project_head(self, version: RuleVersion, rows: RowsLike) -> RowsLike:
        backend = self.device.backend
        if len(rows) == 0:
            return backend.empty((0, len(version.head)), dtype=backend.int64)
        if isinstance(rows, ColumnBatch):
            # Head variables are routed lazily (no copy); only constant
            # columns are written here.
            entries = [
                ("column", head_column.position)
                if head_column.kind == "var"
                else ("constant", int(head_column.value))
                for head_column in version.head
            ]
            return rows.assemble(entries, label=f"{version.head_relation}.project_head")
        columns = []
        for head_column in version.head:
            if head_column.kind == "var":
                columns.append(rows[:, head_column.position])
            else:
                columns.append(backend.full(rows.shape[0], int(head_column.value), dtype=backend.int64))
        result = backend.column_stack(columns).astype(backend.int64)
        self.device.kernels.transform(
            rows.shape[0],
            bytes_per_item=8.0 * len(version.head),
            ops_per_item=len(version.head),
            label=f"{version.head_relation}.project_head",
        )
        return result
