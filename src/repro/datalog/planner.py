"""Compilation of Datalog rules into relational-algebra plans.

Each rule is compiled into one or more *rule versions* (one per recursive body
atom, as required by semi-naïve evaluation), and each version becomes a
pipeline::

    initial scan (delta or full/EDB)  ->  join step  ->  ...  ->  head projection

Every join step is a binary hash join against one HISA index, i.e. the
*temporarily materialized* n-way join strategy of Section 5.2: the result of
each binary join is materialized and becomes the outer relation of the next
step, so every kernel launch has a balanced per-thread workload.  The planner
also records which (relation, join columns) indexes the engine must maintain —
Datalog engines index for every query (Section 3, [R1]).

Three planning modes choose the pipeline:

* ``"greedy"`` — the legacy body-literal order: starting from the outer
  (delta) atom, repeatedly append the *lowest body position* atom that shares
  a variable with the atoms already joined.  The tie-break is part of the
  contract: given the same rule, the greedy plan is always the same pipeline,
  so ablations against it are stable.
* ``"cost"`` — cost-based ordering over a statistics view (row counts +
  per-column distinct estimates, see :mod:`repro.relational.stats`).
  Intermediate cardinalities use the standard distinct-value formula
  ``|O ⋈ A| = |O|·|A| / Π_v max(d_O(v), d_A(v))`` over the shared variables;
  the planner minimizes C_out (the sum of intermediate sizes), exhaustively
  for bodies of at most :data:`EXHAUSTIVE_MAX_ATOMS` atoms and greedily by
  cheapest next join beyond.  Delta-scan versions cost the outer scan at the
  relation's *delta* cardinality.
* ``"cost+wcoj"`` — additionally considers the worst-case-optimal generic
  join (:mod:`repro.relational.wcoj`) for *cyclic* rule bodies (GYO
  reduction does not empty the hypergraph).  A WCOJ version binds one new
  variable per level by intersecting every atom that constrains it; its
  AGM-style output bound ``Π_a |R_a|^{w_a}`` (heuristic fractional edge
  cover ``w_a = 1 / max_{v∈a} cover(v)``) is compared against the best
  binary plan's C_out and the cheaper algorithm wins.

A WCOJ version is *decomposed* into ordinary :class:`JoinStep`s — one
expanding join per level plus full-arity membership-check joins for the other
atoms of the level — so every existing executor (row pipeline, fused kernels,
the sharded loop with its exchange barriers and semi-join filters, column
liveness, fault replay) runs it unchanged; the columnar single-device
executor recognizes ``algorithm == "wcoj"`` and instead runs the per-row
min-intersection operator, which computes the same set with worst-case-
optimal work.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass

from ..errors import PlanningError
from ..relational.operators import ColumnComparison, JoinOutput
from ..relational.stats import UniformStats
from .analysis import ProgramAnalysis
from .ast import Atom, Comparison, Constant, Rule, Variable

DELTA = "delta"
FULL = "full"

GREEDY = "greedy"
COST = "cost"
COST_WCOJ = "cost+wcoj"
#: The planner ablation axis surfaced as ``GPULogEngine(planner=...)``.
PLANNERS = (GREEDY, COST, COST_WCOJ)

BINARY = "binary"
WCOJ = "wcoj"

#: Bodies up to this many atoms are ordered by exhaustive permutation search;
#: larger bodies fall back to greedy-by-cheapest-next-join.  6 atoms = at
#: most 120 candidate orders per version, negligible against execution.
EXHAUSTIVE_MAX_ATOMS = 6


def _constant_value(term: Constant) -> int | str:
    """Raw value of a constant term (string constants are interned by the engine)."""
    return term.value


@dataclass(frozen=True)
class InitialScan:
    """The outer relation of a rule version: a (possibly filtered) scan."""

    relation: str
    version: str  # DELTA or FULL
    filters: tuple[ColumnComparison, ...]
    projection: tuple[int, ...]
    schema: tuple[str, ...]


@dataclass(frozen=True)
class JoinStep:
    """One binary hash join against a HISA index of ``relation``'s full version."""

    relation: str
    join_columns: tuple[int, ...]
    outer_key_positions: tuple[int, ...]
    output: tuple[JoinOutput, ...]
    filters: tuple[ColumnComparison, ...]
    post_projection: tuple[int, ...] | None
    schema: tuple[str, ...]


@dataclass(frozen=True)
class HeadColumn:
    """One column of the head projection: a schema position or a constant."""

    kind: str  # "var" or "const"
    position: int | None = None
    value: int | str | None = None


@dataclass(frozen=True)
class WCOJCandidate:
    """One atom constraining a generic-join level's new variable.

    ``join_columns`` are the atom's already-bound natural columns (ascending)
    — the index the intersection probes for match counts and expansions;
    ``outer_key_positions`` are the pre-level schema positions feeding them.
    ``value_column`` is the natural column holding the level variable, and
    ``member_positions`` maps every natural column to its position in the
    *post-expansion* schema, which is what the full-arity membership check
    gathers.
    """

    atom_index: int
    relation: str
    arity: int
    join_columns: tuple[int, ...]
    outer_key_positions: tuple[int, ...]
    value_column: int
    member_positions: tuple[int, ...]


@dataclass(frozen=True)
class WCOJLevel:
    """One variable of the generic join's variable order with its candidates."""

    variable: str
    candidates: tuple[WCOJCandidate, ...]


@dataclass(frozen=True)
class RuleVersion:
    """One semi-naïve version of a rule (fixed choice of the delta atom)."""

    rule: Rule
    head_relation: str
    delta_atom_index: int | None
    initial: InitialScan
    joins: tuple[JoinStep, ...]
    final_filters: tuple[ColumnComparison, ...]
    head: tuple[HeadColumn, ...]
    #: BINARY (hash-join pipeline) or WCOJ (generic join; ``joins`` then holds
    #: the decomposed expand/check steps every non-columnar executor runs).
    algorithm: str = BINARY
    #: Which planner produced this version (ablation bookkeeping).
    planner: str = GREEDY
    #: Body atom indices in execution order (outer atom first).
    atom_order: tuple[int, ...] = ()
    #: Generic-join levels, one per variable beyond the outer atom's.
    wcoj_levels: tuple[WCOJLevel, ...] = ()
    #: Estimated rows flowing out of the initial scan and each join step.
    estimated_step_rows: tuple[float, ...] = ()
    #: Estimated output cardinality (last step) under the stats view used.
    estimated_rows: float | None = None
    #: Estimated total intermediate tuples (C_out for binary, AGM bound for WCOJ).
    estimated_cost: float | None = None

    @property
    def is_recursive(self) -> bool:
        return self.delta_atom_index is not None


@dataclass(frozen=True)
class RulePlan:
    """All versions of one rule plus the indexes they require."""

    rule: Rule
    versions: tuple[RuleVersion, ...]
    required_indexes: tuple[tuple[str, tuple[int, ...]], ...]


@dataclass(frozen=True)
class ProgramPlan:
    """Compiled plan for a whole program, grouped per stratum."""

    analysis: ProgramAnalysis
    rule_plans: dict[Rule, RulePlan]
    planner: str = GREEDY

    def required_indexes(self) -> set[tuple[str, tuple[int, ...]]]:
        indexes: set[tuple[str, tuple[int, ...]]] = set()
        for plan in self.rule_plans.values():
            indexes.update(plan.required_indexes)
        return indexes

    def versions_for_stratum(self, stratum_index: int) -> tuple[list[RuleVersion], list[RuleVersion]]:
        """Return (non_recursive_versions, recursive_versions) for a stratum."""
        stratum = self.analysis.strata[stratum_index]
        non_recursive: list[RuleVersion] = []
        recursive: list[RuleVersion] = []
        for rule in stratum.rules:
            for version in self.rule_plans[rule].versions:
                if version.is_recursive:
                    recursive.append(version)
                else:
                    non_recursive.append(version)
        return non_recursive, recursive


def version_required_indexes(version: RuleVersion) -> set[tuple[str, tuple[int, ...]]]:
    """Every (relation, join columns) index one rule version probes.

    Binary steps probe their own join-column index.  A WCOJ version
    additionally probes *every* candidate's bound-column index (the per-row
    minimum side is chosen at runtime) and every candidate's full-arity
    index (membership checks for the non-expanded sides).
    """
    required: set[tuple[str, tuple[int, ...]]] = set()
    for step in version.joins:
        required.add((step.relation, step.join_columns))
    for level in version.wcoj_levels:
        for candidate in level.candidates:
            required.add((candidate.relation, candidate.join_columns))
            required.add((candidate.relation, tuple(range(candidate.arity))))
    return required


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------

class Planner:
    """Compiles rules of an analysed program into :class:`RulePlan` objects."""

    def __init__(
        self,
        analysis: ProgramAnalysis,
        *,
        planner: str = GREEDY,
        stats=None,
    ) -> None:
        if planner not in PLANNERS:
            raise PlanningError(
                f"unknown planner {planner!r}; expected one of {', '.join(PLANNERS)}"
            )
        self.analysis = analysis
        self.planner = planner
        self.stats = stats if stats is not None else UniformStats()

    def plan_program(self) -> ProgramPlan:
        rule_plans: dict[Rule, RulePlan] = {}
        for stratum in self.analysis.strata:
            for rule in stratum.rules:
                rule_plans[rule] = self.plan_rule(rule)
        return ProgramPlan(analysis=self.analysis, rule_plans=rule_plans, planner=self.planner)

    def plan_rule(self, rule: Rule) -> RulePlan:
        if not rule.body:
            raise PlanningError(f"rule {rule} has no body atoms; facts are loaded, not planned")
        recursive_atoms = self.analysis.recursive_atoms(rule)
        versions: list[RuleVersion] = []
        if recursive_atoms:
            for atom_index in recursive_atoms:
                versions.append(self.plan_version(rule, delta_atom_index=atom_index))
        else:
            versions.append(self.plan_version(rule, delta_atom_index=None))

        required: set[tuple[str, tuple[int, ...]]] = set()
        for version in versions:
            required.update(version_required_indexes(version))
        return RulePlan(rule=rule, versions=tuple(versions), required_indexes=tuple(sorted(required)))

    # ------------------------------------------------------------------
    def plan_version(self, rule: Rule, delta_atom_index: int | None) -> RuleVersion:
        """Plan one semi-naïve version under this planner's mode and stats."""
        body = list(rule.body)
        outer_index = delta_atom_index if delta_atom_index is not None else 0
        version_tag = DELTA if delta_atom_index is not None else FULL

        if self.planner == GREEDY:
            order = self._order_atoms(body, outer_index, rule)
            estimate = self._estimate_order(body, outer_index, order, version_tag)
            step_rows, cost, worst_cost = estimate if estimate is not None else ((), None, None)
        else:
            order, step_rows, cost, worst_cost = self._order_atoms_by_cost(
                body, outer_index, rule, version_tag
            )

        if self.planner == COST_WCOJ:
            wcoj = self._try_plan_wcoj(rule, delta_atom_index, version_tag, binary_cost=worst_cost)
            if wcoj is not None:
                return wcoj

        return self._build_binary_version(
            rule,
            delta_atom_index,
            order,
            step_rows=tuple(step_rows or ()),
            cost=cost,
        )

    def _build_binary_version(
        self,
        rule: Rule,
        delta_atom_index: int | None,
        order: list[int],
        *,
        step_rows: tuple[float, ...],
        cost: float | None,
    ) -> RuleVersion:
        body = list(rule.body)
        pending_comparisons = list(rule.comparisons)
        outer_atom = body[order[0]]
        initial, schema = self._plan_initial(
            outer_atom,
            DELTA if delta_atom_index is not None else FULL,
            pending_comparisons,
        )

        joins: list[JoinStep] = []
        for atom_index in order[1:]:
            step, schema = self._plan_join(body[atom_index], schema, pending_comparisons)
            joins.append(step)

        final_filters = tuple(
            self._comparison_to_schema(comparison, schema)
            for comparison in pending_comparisons
        )

        head = self._plan_head(rule.head, schema, rule)
        return RuleVersion(
            rule=rule,
            head_relation=rule.head.relation,
            delta_atom_index=delta_atom_index,
            initial=initial,
            joins=tuple(joins),
            final_filters=final_filters,
            head=head,
            algorithm=BINARY,
            planner=self.planner,
            atom_order=tuple(order),
            estimated_step_rows=step_rows,
            estimated_rows=step_rows[-1] if step_rows else None,
            estimated_cost=cost,
        )

    def _order_atoms(self, body: list[Atom], outer_index: int, rule: Rule) -> list[int]:
        """Greedy left-to-right ordering starting from the outer atom.

        Each subsequent atom must share at least one variable with the
        variables bound so far (no cross products).  The tie-break is
        explicit and documented: among connectable atoms, the one at the
        *lowest body position* is appended next, so the greedy plan for a
        rule is a pure function of its text — the stable ablation baseline
        every other planner is compared against.  Returns body indices in
        execution order.
        """
        ordered = [outer_index]
        remaining = [index for index in range(len(body)) if index != outer_index]
        bound = set(body[outer_index].variable_names())
        while remaining:
            for position, index in enumerate(remaining):
                if body[index].variable_names() & bound:
                    ordered.append(index)
                    bound |= body[index].variable_names()
                    remaining.pop(position)
                    break
            else:
                raise PlanningError(
                    f"rule {rule} requires a cross product (atom shares no variable with the "
                    "atoms already joined); cross products are not supported"
                )
        return ordered

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def _scan_estimate(
        self, atom: Atom, rows: float
    ) -> tuple[float, dict[str, float], dict[str, int]]:
        """(rows, per-variable distincts, variable->column) of one atom scan."""
        stats = self.stats
        seen: dict[str, int] = {}
        selectivity = 1.0
        for column, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                selectivity /= max(stats.distinct(atom.relation, column), 1.0)
            elif term.name in seen:
                selectivity /= max(stats.distinct(atom.relation, column), 1.0)
            else:
                seen[term.name] = column
        rows = max(rows * selectivity, 1.0)
        distincts = {
            name: max(1.0, min(stats.distinct(atom.relation, column), rows))
            for name, column in seen.items()
        }
        return rows, distincts, seen

    def _atom_rows(self, body: list[Atom], index: int, outer_index: int, version_tag: str) -> float:
        atom = body[index]
        if index == outer_index and version_tag == DELTA:
            return self.stats.delta_rows(atom.relation)
        return self.stats.rows(atom.relation)

    def _estimate_order(
        self, body: list[Atom], outer_index: int, order: list[int], version_tag: str
    ) -> tuple[list[float], float, float] | None:
        """Estimate one join order: per-step rows, C_out, and worst-case C_out.

        Returns ``None`` if the order needs a cross product (an atom joins on
        no shared variable).  The expected C_out uses the distinct-value
        formula (uniformity assumption); the worst-case C_out chains the
        measured maximum key multiplicity per probe — on skewed data (a hub
        vertex) the two diverge by orders of magnitude, and it is the worst
        case that decides binary-vs-WCOJ, bound against bound.
        """
        rows, distincts, _ = self._scan_estimate(
            body[order[0]], self._atom_rows(body, order[0], outer_index, version_tag)
        )
        step_rows = [rows]
        cost = 0.0
        worst = rows
        worst_cost = 0.0
        for index in order[1:]:
            atom = body[index]
            inner_rows, inner_d, inner_columns = self._scan_estimate(
                atom, self._atom_rows(body, index, outer_index, version_tag)
            )
            shared = [name for name in inner_d if name in distincts]
            if not shared:
                return None
            out = rows * inner_rows
            for name in shared:
                out /= max(distincts[name], inner_d[name], 1.0)
            out = max(out, 1.0)
            merged: dict[str, float] = {}
            for name in set(distincts) | set(inner_d):
                if name in distincts and name in inner_d:
                    d = min(distincts[name], inner_d[name])
                else:
                    d = distincts.get(name, inner_d.get(name))
                merged[name] = max(1.0, min(d, out))
            rows, distincts = out, merged
            step_rows.append(rows)
            cost += rows
            join_columns = tuple(sorted(inner_columns[name] for name in shared))
            worst *= self.stats.max_multiplicity(atom.relation, join_columns)
            worst_cost += worst
        return step_rows, cost, worst_cost

    def _order_atoms_by_cost(
        self, body: list[Atom], outer_index: int, rule: Rule, version_tag: str
    ) -> tuple[list[int], list[float], float, float]:
        """Pick the cheapest connected join order by estimated C_out.

        Exhaustive over every connected permutation for small bodies, greedy
        by cheapest-next-intermediate beyond.  Ties break on the
        lexicographically smallest body-index sequence, so equal-cost plans
        (the common case under uniform fallback stats) are deterministic.
        """
        others = [index for index in range(len(body)) if index != outer_index]
        if not others:
            order = [outer_index]
            estimate = self._estimate_order(body, outer_index, order, version_tag)
            step_rows, cost, worst_cost = estimate if estimate is not None else ([], 0.0, 0.0)
            return order, step_rows, cost, worst_cost

        if len(body) <= EXHAUSTIVE_MAX_ATOMS:
            best: tuple[float, tuple[int, ...], list[float], float] | None = None
            for permutation in itertools.permutations(others):
                order = [outer_index, *permutation]
                estimate = self._estimate_order(body, outer_index, order, version_tag)
                if estimate is None:
                    continue
                step_rows, cost, worst_cost = estimate
                if best is None or (cost, permutation) < (best[0], best[1]):
                    best = (cost, permutation, step_rows, worst_cost)
            if best is None:
                raise PlanningError(
                    f"rule {rule} requires a cross product (atom shares no variable with the "
                    "atoms already joined); cross products are not supported"
                )
            cost, permutation, step_rows, worst_cost = best
            return [outer_index, *permutation], step_rows, cost, worst_cost

        # Greedy-by-cost: append whichever connectable atom yields the
        # smallest next intermediate; tie-break on lowest body position.
        order = [outer_index]
        remaining = list(others)
        while remaining:
            scored: list[tuple[float, int]] = []
            for index in remaining:
                estimate = self._estimate_order(body, outer_index, [*order, index], version_tag)
                if estimate is not None:
                    scored.append((estimate[0][-1], index))
            if not scored:
                raise PlanningError(
                    f"rule {rule} requires a cross product (atom shares no variable with the "
                    "atoms already joined); cross products are not supported"
                )
            _, chosen = min(scored)
            order.append(chosen)
            remaining.remove(chosen)
        estimate = self._estimate_order(body, outer_index, order, version_tag)
        assert estimate is not None
        step_rows, cost, worst_cost = estimate
        return order, step_rows, cost, worst_cost

    # ------------------------------------------------------------------
    # Worst-case-optimal generic join
    # ------------------------------------------------------------------
    def _try_plan_wcoj(
        self,
        rule: Rule,
        delta_atom_index: int | None,
        version_tag: str,
        *,
        binary_cost: float | None,
    ) -> RuleVersion | None:
        """Build a generic-join version if the body is cyclic, WCOJ-shaped,
        and the AGM-style bound undercuts the best binary plan's C_out."""
        body = list(rule.body)
        outer_index = delta_atom_index if delta_atom_index is not None else 0
        if len(body) < 3 or not self._is_cyclic(body):
            return None
        for atom in body:
            names = [term.name for term in atom.terms if isinstance(term, Variable)]
            if len(names) != len(atom.terms) or len(set(names)) != len(names):
                return None  # constants / repeated variables: binary handles them

        outer_atom = body[outer_index]
        outer_vars = [term.name for term in outer_atom.terms]
        bound = set(outer_vars)
        for index, atom in enumerate(body):
            if index != outer_index and set(a.name for a in atom.terms) <= bound:
                return None  # an atom fully bound by the outer scan: stay binary

        order_vars = self._wcoj_variable_order(body, outer_index, bound)
        if order_vars is None:
            return None

        bound_value = self._agm_bound(body, outer_index, version_tag)
        if bound_value is None:
            return None
        if binary_cost is not None and bound_value >= binary_cost:
            return None

        schema = tuple(outer_vars)
        initial = InitialScan(
            relation=outer_atom.relation,
            version=version_tag,
            filters=(),
            projection=tuple(range(len(outer_vars))),
            schema=schema,
        )

        joins: list[JoinStep] = []
        levels: list[WCOJLevel] = []
        assigned: set[int] = {outer_index}
        atom_order: list[int] = [outer_index]
        for variable in order_vars:
            candidate_indexes = [
                index
                for index, atom in enumerate(body)
                if index not in assigned
                and variable in {term.name for term in atom.terms}
                and {term.name for term in atom.terms} <= bound | {variable}
            ]
            if not candidate_indexes:
                return None
            post_schema = schema + (variable,)
            schema_positions = {name: position for position, name in enumerate(post_schema)}
            candidates: list[WCOJCandidate] = []
            for index in candidate_indexes:
                atom = body[index]
                value_column = next(
                    column for column, term in enumerate(atom.terms) if term.name == variable
                )
                bound_columns = tuple(
                    column for column in range(len(atom.terms)) if column != value_column
                )
                candidates.append(
                    WCOJCandidate(
                        atom_index=index,
                        relation=atom.relation,
                        arity=len(atom.terms),
                        join_columns=bound_columns,
                        outer_key_positions=tuple(
                            schema_positions[atom.terms[column].name] for column in bound_columns
                        ),
                        value_column=value_column,
                        member_positions=tuple(
                            schema_positions[term.name] for term in atom.terms
                        ),
                    )
                )
                assigned.add(index)
                atom_order.append(index)

            # Decomposed binary steps: expand on the first candidate, then a
            # full-arity membership semi-join per remaining candidate (the
            # full version is deduplicated, so multiplicity is at most one
            # and the decomposition computes the same multiset).
            expand = candidates[0]
            joins.append(
                JoinStep(
                    relation=expand.relation,
                    join_columns=expand.join_columns,
                    outer_key_positions=expand.outer_key_positions,
                    output=tuple(
                        [JoinOutput("outer", position) for position in range(len(schema))]
                        + [JoinOutput("inner", expand.value_column)]
                    ),
                    filters=(),
                    post_projection=None,
                    schema=post_schema,
                )
            )
            for candidate in candidates[1:]:
                joins.append(
                    JoinStep(
                        relation=candidate.relation,
                        join_columns=tuple(range(candidate.arity)),
                        outer_key_positions=candidate.member_positions,
                        output=tuple(
                            JoinOutput("outer", position) for position in range(len(post_schema))
                        ),
                        filters=(),
                        post_projection=None,
                        schema=post_schema,
                    )
                )
            levels.append(WCOJLevel(variable=variable, candidates=tuple(candidates)))
            bound.add(variable)
            schema = post_schema

        if assigned != set(range(len(body))):
            return None
        if not any(len(level.candidates) > 1 for level in levels):
            return None  # every level is a plain binary join: nothing to intersect

        final_filters = tuple(
            self._comparison_to_schema(comparison, schema) for comparison in rule.comparisons
        )
        head = self._plan_head(rule.head, schema, rule)
        return RuleVersion(
            rule=rule,
            head_relation=rule.head.relation,
            delta_atom_index=delta_atom_index,
            initial=initial,
            joins=tuple(joins),
            final_filters=final_filters,
            head=head,
            algorithm=WCOJ,
            planner=self.planner,
            atom_order=tuple(atom_order),
            wcoj_levels=tuple(levels),
            estimated_step_rows=(),
            estimated_rows=bound_value,
            estimated_cost=bound_value,
        )

    @staticmethod
    def _wcoj_variable_order(
        body: list[Atom], outer_index: int, outer_bound: set[str]
    ) -> list[str] | None:
        """Deterministic variable order for the generic join, or ``None``.

        Starting from the outer atom's variables, repeatedly bind the
        variable that completes the most not-yet-assigned atoms (every other
        variable of the atom already bound); ties break on first occurrence
        in the rule body.  Fails (returns ``None``) when some variable can
        never be completed one-at-a-time — those rules stay binary.
        """
        first_seen: dict[str, int] = {}
        for atom in body:
            for term in atom.terms:
                first_seen.setdefault(term.name, len(first_seen))
        bound = set(outer_bound)
        unbound = [name for name in first_seen if name not in bound]
        assigned: set[int] = {outer_index}
        order: list[str] = []
        while unbound:
            scored: list[tuple[int, int, str]] = []
            for name in unbound:
                completes = sum(
                    1
                    for index, atom in enumerate(body)
                    if index not in assigned
                    and name in {term.name for term in atom.terms}
                    and {term.name for term in atom.terms} <= bound | {name}
                )
                if completes:
                    scored.append((-completes, first_seen[name], name))
            if not scored:
                return None
            _, _, chosen = min(scored)
            order.append(chosen)
            bound.add(chosen)
            unbound.remove(chosen)
            for index, atom in enumerate(body):
                if index not in assigned and {term.name for term in atom.terms} <= bound:
                    assigned.add(index)
        return order

    def _agm_bound(self, body: list[Atom], outer_index: int, version_tag: str) -> float | None:
        """AGM-style output bound ``Π_a |R_a|^{w_a}`` for a cyclic body.

        Uses the heuristic fractional edge cover ``w_a = 1 / max_{v∈a}
        cover(v)`` (exact for symmetric patterns like triangles and
        k-cliques, where every variable is covered by the same number of
        atoms) and validates it: if some variable ends up covered with total
        weight below 1 the weights are not a fractional edge cover and no
        bound is claimed.
        """
        atom_vars = [{term.name for term in atom.terms} for atom in body]
        cover = Counter(name for names in atom_vars for name in names)
        weights = [1.0 / max(cover[name] for name in names) for names in atom_vars]
        for name in cover:
            total = sum(weight for names, weight in zip(atom_vars, weights) if name in names)
            if total < 1.0 - 1e-9:
                return None
        bound = 1.0
        for index, weight in enumerate(weights):
            bound *= max(self._atom_rows(body, index, outer_index, version_tag), 1.0) ** weight
        return bound

    @staticmethod
    def _is_cyclic(body: list[Atom]) -> bool:
        """GYO reduction: True when the body hypergraph is *not* α-acyclic."""
        edges = [frozenset(atom.variable_names()) for atom in body]
        edges = [edge for edge in edges if edge]
        changed = True
        while changed and edges:
            changed = False
            for position, edge in enumerate(edges):
                if any(
                    position != other and edge <= edges[other] for other in range(len(edges))
                ):
                    edges.pop(position)
                    changed = True
                    break
            if changed:
                continue
            count = Counter(name for edge in edges for name in edge)
            lonely = {name for name, seen in count.items() if seen == 1}
            if lonely:
                reduced = [frozenset(edge - lonely) for edge in edges]
                if reduced != edges:
                    changed = True
                edges = [edge for edge in reduced if edge]
        return bool(edges)

    # ------------------------------------------------------------------
    def _plan_initial(
        self,
        atom: Atom,
        version: str,
        pending_comparisons: list[Comparison],
    ) -> tuple[InitialScan, tuple[str, ...]]:
        filters: list[ColumnComparison] = []
        first_occurrence: dict[str, int] = {}
        for column, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                filters.append(ColumnComparison("==", column, constant=_constant_value(term)))
            else:
                if term.name in first_occurrence:
                    filters.append(ColumnComparison("==", column, right_column=first_occurrence[term.name]))
                else:
                    first_occurrence[term.name] = column

        schema = tuple(sorted(first_occurrence, key=first_occurrence.get))
        projection = tuple(first_occurrence[name] for name in schema)

        # Comparisons fully bound by this atom are applied on the atom's
        # natural layout before projection.
        for comparison in list(pending_comparisons):
            mapped = self._try_map_comparison(comparison, first_occurrence)
            if mapped is not None:
                filters.append(mapped)
                pending_comparisons.remove(comparison)

        initial = InitialScan(
            relation=atom.relation,
            version=version,
            filters=tuple(filters),
            projection=projection,
            schema=schema,
        )
        return initial, schema

    def _plan_join(
        self,
        atom: Atom,
        schema: tuple[str, ...],
        pending_comparisons: list[Comparison],
    ) -> tuple[JoinStep, tuple[str, ...]]:
        schema_positions = {name: position for position, name in enumerate(schema)}

        first_occurrence: dict[str, int] = {}
        constant_columns: list[tuple[int, int | str]] = []
        repeated_columns: list[tuple[int, int]] = []
        for column, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                constant_columns.append((column, _constant_value(term)))
            else:
                if term.name in first_occurrence:
                    repeated_columns.append((column, first_occurrence[term.name]))
                else:
                    first_occurrence[term.name] = column

        shared = [name for name in first_occurrence if name in schema_positions]
        if not shared:
            raise PlanningError(f"atom {atom} shares no variable with the current pipeline schema")
        # Key order: by inner column index, for a deterministic index signature.
        shared.sort(key=lambda name: first_occurrence[name])
        join_columns = tuple(first_occurrence[name] for name in shared)
        outer_key_positions = tuple(schema_positions[name] for name in shared)

        # Output: every existing schema variable, then the new variables of the atom.
        output: list[JoinOutput] = [JoinOutput("outer", position) for position in range(len(schema))]
        new_schema = list(schema)
        for name, column in first_occurrence.items():
            if name in schema_positions:
                continue
            output.append(JoinOutput("inner", column))
            new_schema.append(name)

        # Temporary columns needed only to evaluate constant / repeated-variable
        # constraints inside the join kernel; projected away afterwards.
        filters: list[ColumnComparison] = []
        temp_columns = 0
        for column, value in constant_columns:
            output.append(JoinOutput("inner", column))
            filters.append(ColumnComparison("==", len(output) - 1, constant=value))
            temp_columns += 1
        for column, first_column in repeated_columns:
            first_name = atom.terms[first_column].name  # type: ignore[union-attr]
            anchor = (
                schema_positions[first_name]
                if first_name in schema_positions
                else new_schema.index(first_name)
            )
            output.append(JoinOutput("inner", column))
            filters.append(ColumnComparison("==", len(output) - 1, right_column=anchor))
            temp_columns += 1

        post_projection: tuple[int, ...] | None = None
        if temp_columns:
            post_projection = tuple(range(len(output) - temp_columns))

        # Comparisons that become fully bound after this join.
        bound_positions = {name: position for position, name in enumerate(new_schema)}
        for comparison in list(pending_comparisons):
            mapped = self._try_map_comparison(comparison, bound_positions)
            if mapped is not None:
                filters.append(mapped)
                pending_comparisons.remove(comparison)

        step = JoinStep(
            relation=atom.relation,
            join_columns=join_columns,
            outer_key_positions=outer_key_positions,
            output=tuple(output),
            filters=tuple(filters),
            post_projection=post_projection,
            schema=tuple(new_schema),
        )
        return step, tuple(new_schema)

    def _plan_head(self, head: Atom, schema: tuple[str, ...], rule: Rule) -> tuple[HeadColumn, ...]:
        positions = {name: position for position, name in enumerate(schema)}
        columns: list[HeadColumn] = []
        for term in head.terms:
            if isinstance(term, Constant):
                columns.append(HeadColumn(kind="const", value=_constant_value(term)))
            else:
                if term.name not in positions:
                    raise PlanningError(
                        f"rule {rule}: head variable {term.name!r} is not bound by the body"
                    )
                columns.append(HeadColumn(kind="var", position=positions[term.name]))
        return tuple(columns)

    # ------------------------------------------------------------------
    @staticmethod
    def _try_map_comparison(
        comparison: Comparison, positions: dict[str, int]
    ) -> ColumnComparison | None:
        """Map an AST comparison onto column positions if all variables are bound."""
        left, right = comparison.left, comparison.right
        if isinstance(left, Variable) and left.name not in positions:
            return None
        if isinstance(right, Variable) and right.name not in positions:
            return None
        if isinstance(left, Constant) and isinstance(right, Constant):
            raise PlanningError(f"comparison {comparison} has no variables")
        if isinstance(left, Constant):
            # Normalise to variable-on-the-left by flipping the operator.
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}[comparison.op]
            return ColumnComparison(flipped, positions[right.name], constant=_constant_value(left))
        if isinstance(right, Constant):
            return ColumnComparison(comparison.op, positions[left.name], constant=_constant_value(right))
        return ColumnComparison(comparison.op, positions[left.name], right_column=positions[right.name])

    @staticmethod
    def _comparison_to_schema(comparison: Comparison, schema: tuple[str, ...]) -> ColumnComparison:
        positions = {name: position for position, name in enumerate(schema)}
        mapped = Planner._try_map_comparison(comparison, positions)
        if mapped is None:
            raise PlanningError(f"comparison {comparison} involves variables not bound by the rule body")
        return mapped


def plan_program(
    analysis: ProgramAnalysis, *, planner: str = GREEDY, stats=None
) -> ProgramPlan:
    """Convenience wrapper: plan every rule of an analysed program."""
    return Planner(analysis, planner=planner, stats=stats).plan_program()


# ----------------------------------------------------------------------
# Column liveness (what the exchange layer may drop)
# ----------------------------------------------------------------------

def version_live_columns(
    version: RuleVersion,
) -> tuple[tuple[frozenset[int], ...], frozenset[int]]:
    """Live schema positions at every exchange point of a rule version.

    Returns ``(live_before_step, live_final)`` where ``live_before_step[i]``
    is the set of flowing-schema positions that step ``i`` or anything after
    it (later joins, final filters, the head projection) still reads, and
    ``live_final`` is the same set for the point after the last join.  A
    position absent from the set at an exchange is *dead*: no downstream
    operator will ever materialize it, so a cross-shard shipment may omit
    the column entirely (the receiver substitutes an unread placeholder).

    The walk is a standard backward liveness pass: seed with the head's
    variable positions and the final filters' columns, then per join step
    (in reverse) map output positions through ``post_projection``, add the
    step's own filter columns, and translate ``"outer"``-sourced output
    entries plus the probe keys back into the pre-step schema.  WCOJ
    versions are decomposed into ordinary expand/check steps, so the same
    walk covers them (membership checks keep every checked column alive via
    their probe keys).
    """
    live: set[int] = set()
    for column in version.head:
        if column.kind == "var":
            live.add(int(column.position))
    for comparison in version.final_filters:
        live.add(comparison.left_column)
        if comparison.right_column is not None:
            live.add(comparison.right_column)
    live_final = frozenset(live)

    live_before: list[frozenset[int]] = [frozenset()] * len(version.joins)
    for index in range(len(version.joins) - 1, -1, -1):
        step = version.joins[index]
        # Lift to the step's pre-post-projection output positions.
        if step.post_projection is not None:
            out_live = {step.post_projection[position] for position in live}
        else:
            out_live = set(live)
        for comparison in step.filters:
            out_live.add(comparison.left_column)
            if comparison.right_column is not None:
                out_live.add(comparison.right_column)
        # Translate to the schema flowing *into* the step: probe keys plus
        # every outer column a live output entry copies.
        previous = set(step.outer_key_positions)
        for position in out_live:
            entry = step.output[position]
            if entry.source == "outer":
                previous.add(entry.column)
        live_before[index] = frozenset(previous)
        live = previous
    return tuple(live_before), live_final


def head_shard_variable(version: RuleVersion, shard_column: int) -> str | None:
    """Name of the variable feeding the head's shard column, or ``None``.

    When the head column the head relation is partitioned on is a constant,
    there is no variable to route by early and the caller falls back to the
    ordinary post-projection head route.
    """
    if not 0 <= shard_column < len(version.head):
        return None
    column = version.head[shard_column]
    if column.kind != "var":
        return None
    final_schema = version.joins[-1].schema if version.joins else version.initial.schema
    return final_schema[column.position]
