"""Compilation of Datalog rules into relational-algebra plans.

Each rule is compiled into one or more *rule versions* (one per recursive body
atom, as required by semi-naïve evaluation), and each version becomes a
pipeline::

    initial scan (delta or full/EDB)  ->  join step  ->  ...  ->  head projection

Every join step is a binary hash join against one HISA index, i.e. the
*temporarily materialized* n-way join strategy of Section 5.2: the result of
each binary join is materialized and becomes the outer relation of the next
step, so every kernel launch has a balanced per-thread workload.  The planner
also records which (relation, join columns) indexes the engine must maintain —
Datalog engines index for every query (Section 3, [R1]).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanningError
from ..relational.operators import ColumnComparison, JoinOutput
from .analysis import ProgramAnalysis
from .ast import Atom, Comparison, Constant, Rule, Variable

DELTA = "delta"
FULL = "full"


def _constant_value(term: Constant) -> int | str:
    """Raw value of a constant term (string constants are interned by the engine)."""
    return term.value


@dataclass(frozen=True)
class InitialScan:
    """The outer relation of a rule version: a (possibly filtered) scan."""

    relation: str
    version: str  # DELTA or FULL
    filters: tuple[ColumnComparison, ...]
    projection: tuple[int, ...]
    schema: tuple[str, ...]


@dataclass(frozen=True)
class JoinStep:
    """One binary hash join against a HISA index of ``relation``'s full version."""

    relation: str
    join_columns: tuple[int, ...]
    outer_key_positions: tuple[int, ...]
    output: tuple[JoinOutput, ...]
    filters: tuple[ColumnComparison, ...]
    post_projection: tuple[int, ...] | None
    schema: tuple[str, ...]


@dataclass(frozen=True)
class HeadColumn:
    """One column of the head projection: a schema position or a constant."""

    kind: str  # "var" or "const"
    position: int | None = None
    value: int | str | None = None


@dataclass(frozen=True)
class RuleVersion:
    """One semi-naïve version of a rule (fixed choice of the delta atom)."""

    rule: Rule
    head_relation: str
    delta_atom_index: int | None
    initial: InitialScan
    joins: tuple[JoinStep, ...]
    final_filters: tuple[ColumnComparison, ...]
    head: tuple[HeadColumn, ...]

    @property
    def is_recursive(self) -> bool:
        return self.delta_atom_index is not None


@dataclass(frozen=True)
class RulePlan:
    """All versions of one rule plus the indexes they require."""

    rule: Rule
    versions: tuple[RuleVersion, ...]
    required_indexes: tuple[tuple[str, tuple[int, ...]], ...]


@dataclass(frozen=True)
class ProgramPlan:
    """Compiled plan for a whole program, grouped per stratum."""

    analysis: ProgramAnalysis
    rule_plans: dict[Rule, RulePlan]

    def required_indexes(self) -> set[tuple[str, tuple[int, ...]]]:
        indexes: set[tuple[str, tuple[int, ...]]] = set()
        for plan in self.rule_plans.values():
            indexes.update(plan.required_indexes)
        return indexes

    def versions_for_stratum(self, stratum_index: int) -> tuple[list[RuleVersion], list[RuleVersion]]:
        """Return (non_recursive_versions, recursive_versions) for a stratum."""
        stratum = self.analysis.strata[stratum_index]
        non_recursive: list[RuleVersion] = []
        recursive: list[RuleVersion] = []
        for rule in stratum.rules:
            for version in self.rule_plans[rule].versions:
                if version.is_recursive:
                    recursive.append(version)
                else:
                    non_recursive.append(version)
        return non_recursive, recursive


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------

class Planner:
    """Compiles rules of an analysed program into :class:`RulePlan` objects."""

    def __init__(self, analysis: ProgramAnalysis) -> None:
        self.analysis = analysis

    def plan_program(self) -> ProgramPlan:
        rule_plans: dict[Rule, RulePlan] = {}
        for stratum in self.analysis.strata:
            for rule in stratum.rules:
                rule_plans[rule] = self.plan_rule(rule)
        return ProgramPlan(analysis=self.analysis, rule_plans=rule_plans)

    def plan_rule(self, rule: Rule) -> RulePlan:
        if not rule.body:
            raise PlanningError(f"rule {rule} has no body atoms; facts are loaded, not planned")
        recursive_atoms = self.analysis.recursive_atoms(rule)
        versions: list[RuleVersion] = []
        if recursive_atoms:
            for atom_index in recursive_atoms:
                versions.append(self._plan_version(rule, delta_atom_index=atom_index))
        else:
            versions.append(self._plan_version(rule, delta_atom_index=None))

        required: set[tuple[str, tuple[int, ...]]] = set()
        for version in versions:
            for step in version.joins:
                required.add((step.relation, step.join_columns))
        return RulePlan(rule=rule, versions=tuple(versions), required_indexes=tuple(sorted(required)))

    # ------------------------------------------------------------------
    def _plan_version(self, rule: Rule, delta_atom_index: int | None) -> RuleVersion:
        body = list(rule.body)
        outer_index = delta_atom_index if delta_atom_index is not None else 0
        ordered = self._order_atoms(body, outer_index, rule)

        pending_comparisons = list(rule.comparisons)
        outer_atom = body[outer_index]
        initial, schema = self._plan_initial(
            outer_atom,
            DELTA if delta_atom_index is not None else FULL,
            pending_comparisons,
        )

        joins: list[JoinStep] = []
        for atom in ordered[1:]:
            step, schema = self._plan_join(atom, schema, pending_comparisons)
            joins.append(step)

        final_filters = tuple(
            self._comparison_to_schema(comparison, schema)
            for comparison in pending_comparisons
        )

        head = self._plan_head(rule.head, schema, rule)
        return RuleVersion(
            rule=rule,
            head_relation=rule.head.relation,
            delta_atom_index=delta_atom_index,
            initial=initial,
            joins=tuple(joins),
            final_filters=final_filters,
            head=head,
        )

    def _order_atoms(self, body: list[Atom], outer_index: int, rule: Rule) -> list[Atom]:
        """Greedy left-to-right ordering starting from the outer atom.

        Each subsequent atom must share at least one variable with the
        variables bound so far (no cross products).
        """
        ordered = [body[outer_index]]
        remaining = [atom for index, atom in enumerate(body) if index != outer_index]
        bound = set(body[outer_index].variable_names())
        while remaining:
            for position, atom in enumerate(remaining):
                if atom.variable_names() & bound:
                    ordered.append(atom)
                    bound |= atom.variable_names()
                    remaining.pop(position)
                    break
            else:
                raise PlanningError(
                    f"rule {rule} requires a cross product (atom shares no variable with the "
                    "atoms already joined); cross products are not supported"
                )
        return ordered

    # ------------------------------------------------------------------
    def _plan_initial(
        self,
        atom: Atom,
        version: str,
        pending_comparisons: list[Comparison],
    ) -> tuple[InitialScan, tuple[str, ...]]:
        filters: list[ColumnComparison] = []
        first_occurrence: dict[str, int] = {}
        for column, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                filters.append(ColumnComparison("==", column, constant=_constant_value(term)))
            else:
                if term.name in first_occurrence:
                    filters.append(ColumnComparison("==", column, right_column=first_occurrence[term.name]))
                else:
                    first_occurrence[term.name] = column

        schema = tuple(sorted(first_occurrence, key=first_occurrence.get))
        projection = tuple(first_occurrence[name] for name in schema)

        # Comparisons fully bound by this atom are applied on the atom's
        # natural layout before projection.
        for comparison in list(pending_comparisons):
            mapped = self._try_map_comparison(comparison, first_occurrence)
            if mapped is not None:
                filters.append(mapped)
                pending_comparisons.remove(comparison)

        initial = InitialScan(
            relation=atom.relation,
            version=version,
            filters=tuple(filters),
            projection=projection,
            schema=schema,
        )
        return initial, schema

    def _plan_join(
        self,
        atom: Atom,
        schema: tuple[str, ...],
        pending_comparisons: list[Comparison],
    ) -> tuple[JoinStep, tuple[str, ...]]:
        schema_positions = {name: position for position, name in enumerate(schema)}

        first_occurrence: dict[str, int] = {}
        constant_columns: list[tuple[int, int | str]] = []
        repeated_columns: list[tuple[int, int]] = []
        for column, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                constant_columns.append((column, _constant_value(term)))
            else:
                if term.name in first_occurrence:
                    repeated_columns.append((column, first_occurrence[term.name]))
                else:
                    first_occurrence[term.name] = column

        shared = [name for name in first_occurrence if name in schema_positions]
        if not shared:
            raise PlanningError(f"atom {atom} shares no variable with the current pipeline schema")
        # Key order: by inner column index, for a deterministic index signature.
        shared.sort(key=lambda name: first_occurrence[name])
        join_columns = tuple(first_occurrence[name] for name in shared)
        outer_key_positions = tuple(schema_positions[name] for name in shared)

        # Output: every existing schema variable, then the new variables of the atom.
        output: list[JoinOutput] = [JoinOutput("outer", position) for position in range(len(schema))]
        new_schema = list(schema)
        for name, column in first_occurrence.items():
            if name in schema_positions:
                continue
            output.append(JoinOutput("inner", column))
            new_schema.append(name)

        # Temporary columns needed only to evaluate constant / repeated-variable
        # constraints inside the join kernel; projected away afterwards.
        filters: list[ColumnComparison] = []
        temp_columns = 0
        for column, value in constant_columns:
            output.append(JoinOutput("inner", column))
            filters.append(ColumnComparison("==", len(output) - 1, constant=value))
            temp_columns += 1
        for column, first_column in repeated_columns:
            first_name = atom.terms[first_column].name  # type: ignore[union-attr]
            anchor = (
                schema_positions[first_name]
                if first_name in schema_positions
                else new_schema.index(first_name)
            )
            output.append(JoinOutput("inner", column))
            filters.append(ColumnComparison("==", len(output) - 1, right_column=anchor))
            temp_columns += 1

        post_projection: tuple[int, ...] | None = None
        if temp_columns:
            post_projection = tuple(range(len(output) - temp_columns))

        # Comparisons that become fully bound after this join.
        bound_positions = {name: position for position, name in enumerate(new_schema)}
        for comparison in list(pending_comparisons):
            mapped = self._try_map_comparison(comparison, bound_positions)
            if mapped is not None:
                filters.append(mapped)
                pending_comparisons.remove(comparison)

        step = JoinStep(
            relation=atom.relation,
            join_columns=join_columns,
            outer_key_positions=outer_key_positions,
            output=tuple(output),
            filters=tuple(filters),
            post_projection=post_projection,
            schema=tuple(new_schema),
        )
        return step, tuple(new_schema)

    def _plan_head(self, head: Atom, schema: tuple[str, ...], rule: Rule) -> tuple[HeadColumn, ...]:
        positions = {name: position for position, name in enumerate(schema)}
        columns: list[HeadColumn] = []
        for term in head.terms:
            if isinstance(term, Constant):
                columns.append(HeadColumn(kind="const", value=_constant_value(term)))
            else:
                if term.name not in positions:
                    raise PlanningError(
                        f"rule {rule}: head variable {term.name!r} is not bound by the body"
                    )
                columns.append(HeadColumn(kind="var", position=positions[term.name]))
        return tuple(columns)

    # ------------------------------------------------------------------
    @staticmethod
    def _try_map_comparison(
        comparison: Comparison, positions: dict[str, int]
    ) -> ColumnComparison | None:
        """Map an AST comparison onto column positions if all variables are bound."""
        left, right = comparison.left, comparison.right
        if isinstance(left, Variable) and left.name not in positions:
            return None
        if isinstance(right, Variable) and right.name not in positions:
            return None
        if isinstance(left, Constant) and isinstance(right, Constant):
            raise PlanningError(f"comparison {comparison} has no variables")
        if isinstance(left, Constant):
            # Normalise to variable-on-the-left by flipping the operator.
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}[comparison.op]
            return ColumnComparison(flipped, positions[right.name], constant=_constant_value(left))
        if isinstance(right, Constant):
            return ColumnComparison(comparison.op, positions[left.name], constant=_constant_value(right))
        return ColumnComparison(comparison.op, positions[left.name], right_column=positions[right.name])

    @staticmethod
    def _comparison_to_schema(comparison: Comparison, schema: tuple[str, ...]) -> ColumnComparison:
        positions = {name: position for position, name in enumerate(schema)}
        mapped = Planner._try_map_comparison(comparison, positions)
        if mapped is None:
            raise PlanningError(f"comparison {comparison} involves variables not bound by the rule body")
        return mapped


def plan_program(analysis: ProgramAnalysis) -> ProgramPlan:
    """Convenience wrapper: plan every rule of an analysed program."""
    return Planner(analysis).plan_program()


# ----------------------------------------------------------------------
# Column liveness (what the exchange layer may drop)
# ----------------------------------------------------------------------

def version_live_columns(
    version: RuleVersion,
) -> tuple[tuple[frozenset[int], ...], frozenset[int]]:
    """Live schema positions at every exchange point of a rule version.

    Returns ``(live_before_step, live_final)`` where ``live_before_step[i]``
    is the set of flowing-schema positions that step ``i`` or anything after
    it (later joins, final filters, the head projection) still reads, and
    ``live_final`` is the same set for the point after the last join.  A
    position absent from the set at an exchange is *dead*: no downstream
    operator will ever materialize it, so a cross-shard shipment may omit
    the column entirely (the receiver substitutes an unread placeholder).

    The walk is a standard backward liveness pass: seed with the head's
    variable positions and the final filters' columns, then per join step
    (in reverse) map output positions through ``post_projection``, add the
    step's own filter columns, and translate ``"outer"``-sourced output
    entries plus the probe keys back into the pre-step schema.
    """
    live: set[int] = set()
    for column in version.head:
        if column.kind == "var":
            live.add(int(column.position))
    for comparison in version.final_filters:
        live.add(comparison.left_column)
        if comparison.right_column is not None:
            live.add(comparison.right_column)
    live_final = frozenset(live)

    live_before: list[frozenset[int]] = [frozenset()] * len(version.joins)
    for index in range(len(version.joins) - 1, -1, -1):
        step = version.joins[index]
        # Lift to the step's pre-post-projection output positions.
        if step.post_projection is not None:
            out_live = {step.post_projection[position] for position in live}
        else:
            out_live = set(live)
        for comparison in step.filters:
            out_live.add(comparison.left_column)
            if comparison.right_column is not None:
                out_live.add(comparison.right_column)
        # Translate to the schema flowing *into* the step: probe keys plus
        # every outer column a live output entry copies.
        previous = set(step.outer_key_positions)
        for position in out_live:
            entry = step.output[position]
            if entry.source == "outer":
                previous.add(entry.column)
        live_before[index] = frozenset(previous)
        live = previous
    return tuple(live_before), live_final


def head_shard_variable(version: RuleVersion, shard_column: int) -> str | None:
    """Name of the variable feeding the head's shard column, or ``None``.

    When the head column the head relation is partitioned on is a constant,
    there is no variable to route by early and the caller falls back to the
    ordinary post-projection head route.
    """
    if not 0 <= shard_column < len(version.head):
        return None
    column = version.head[shard_column]
    if column.kind != "var":
        return None
    final_schema = version.joins[-1].schema if version.joins else version.initial.schema
    return final_schema[column.position]
