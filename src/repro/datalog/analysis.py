"""Static analysis of Datalog programs: dependency graph, SCCs, strata.

Evaluation proceeds stratum by stratum: the predicate dependency graph (an
edge from every body relation to the head relation it helps derive) is
condensed into strongly connected components, and the components are evaluated
in topological order.  Rules whose body mentions a relation in the same SCC as
the head are *recursive* and participate in the semi-naïve fixpoint loop of
that stratum; all other rules fire exactly once when their stratum starts.

The same analysis reports, per rule, which body atoms are recursive — the
planner generates one semi-naïve rule version per recursive atom (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import DatalogError
from .ast import Program, Rule


@dataclass(frozen=True)
class Stratum:
    """One strongly connected component of the predicate dependency graph."""

    index: int
    relations: frozenset[str]
    recursive: bool
    rules: tuple[Rule, ...]

    def __str__(self) -> str:
        kind = "recursive" if self.recursive else "non-recursive"
        return f"Stratum {self.index} ({kind}): {', '.join(sorted(self.relations))}"


@dataclass(frozen=True)
class ProgramAnalysis:
    """Result of analysing a program: strata, EDB/IDB split, arities."""

    program: Program
    strata: tuple[Stratum, ...]
    edb_relations: frozenset[str]
    idb_relations: frozenset[str]
    relation_arities: dict[str, int]
    dependency_graph: nx.DiGraph

    def stratum_of(self, relation: str) -> Stratum | None:
        for stratum in self.strata:
            if relation in stratum.relations:
                return stratum
        return None

    def recursive_atoms(self, rule: Rule) -> list[int]:
        """Indices of body atoms whose relation is in the same SCC as the head."""
        stratum = self.stratum_of(rule.head.relation)
        if stratum is None or not stratum.recursive:
            return []
        return [
            index
            for index, atom in enumerate(rule.body)
            if atom.relation in stratum.relations
        ]

    def is_recursive_rule(self, rule: Rule) -> bool:
        return bool(self.recursive_atoms(rule))


def dependency_graph(program: Program) -> nx.DiGraph:
    """Predicate dependency graph: body relation -> head relation edges."""
    graph = nx.DiGraph()
    for relation in program.relations():
        graph.add_node(relation)
    for rule in program.proper_rules():
        for atom in rule.body:
            graph.add_edge(atom.relation, rule.head.relation)
    return graph


def analyze_program(program: Program) -> ProgramAnalysis:
    """Compute strata (in evaluation order) and classification metadata."""
    graph = dependency_graph(program)
    idb = program.idb_relations()
    edb = program.edb_relations()

    condensation = nx.condensation(graph)
    order = list(nx.topological_sort(condensation))

    strata: list[Stratum] = []
    index = 0
    for component_id in order:
        members = frozenset(condensation.nodes[component_id]["members"])
        idb_members = members & idb
        if not idb_members:
            # Pure-EDB components need no evaluation pass of their own.
            continue
        recursive = _component_is_recursive(graph, members)
        rules = tuple(
            rule
            for rule in program.proper_rules()
            if rule.head.relation in idb_members
        )
        strata.append(Stratum(index=index, relations=members, recursive=recursive, rules=rules))
        index += 1

    _check_rule_coverage(program, strata)
    return ProgramAnalysis(
        program=program,
        strata=tuple(strata),
        edb_relations=frozenset(edb),
        idb_relations=frozenset(idb),
        relation_arities=program.relation_arities(),
        dependency_graph=graph,
    )


def _component_is_recursive(graph: nx.DiGraph, members: frozenset[str]) -> bool:
    if len(members) > 1:
        return True
    member = next(iter(members))
    return graph.has_edge(member, member)


def _check_rule_coverage(program: Program, strata: list[Stratum]) -> None:
    covered = set()
    for stratum in strata:
        covered.update(stratum.rules)
    missing = [rule for rule in program.proper_rules() if rule not in covered]
    if missing:
        raise DatalogError(
            "internal stratification error: rules not assigned to any stratum: "
            + "; ".join(str(rule) for rule in missing)
        )
