"""Abstract syntax for Datalog programs (Section 2 of the paper).

A program is a set of Horn-clause rules ``Head(...) :- Body1(...), ...`` plus
optional ground facts.  The reproduction supports positive Datalog with
comparison constraints (``x != y`` and friends), which covers every query the
paper evaluates (REACH, SG, CSPA) and the DDisasm example of Section 3.
Negation and aggregation are out of scope (the paper lists monotonic
aggregation as future work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from ..errors import DatalogError, SafetyError

COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Variable:
    """A logical variable, e.g. ``x`` in ``reach(x, y)``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha() and self.name[0] != "_":
            raise DatalogError(f"invalid variable name {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A ground constant: an integer or an interned string symbol."""

    value: Union[int, str]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


Term = Union[Variable, Constant]


def make_term(value: Union[Term, int, str]) -> Term:
    """Convenience coercion: ints/strings become constants, terms pass through."""
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, bool):
        raise DatalogError("boolean constants are not supported")
    if isinstance(value, int):
        return Constant(value)
    if isinstance(value, str):
        return Constant(value)
    raise DatalogError(f"cannot convert {value!r} into a Datalog term")


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms, e.g. ``edge(x, 3)``."""

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise DatalogError("atom relation name must be non-empty")
        if not self.terms:
            raise DatalogError(f"atom {self.relation!r} must have at least one argument")
        object.__setattr__(self, "terms", tuple(make_term(t) for t in self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> list[Variable]:
        """Variables in argument order (with repeats)."""
        return [t for t in self.terms if isinstance(t, Variable)]

    def variable_names(self) -> set[str]:
        return {t.name for t in self.terms if isinstance(t, Variable)}

    def is_ground(self) -> bool:
        return all(isinstance(t, Constant) for t in self.terms)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class Comparison:
    """A comparison constraint in a rule body, e.g. ``x != y`` or ``x < 5``."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise DatalogError(f"unsupported comparison operator {self.op!r}")
        object.__setattr__(self, "left", make_term(self.left))
        object.__setattr__(self, "right", make_term(self.right))

    def variable_names(self) -> set[str]:
        names = set()
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                names.add(term.name)
        return names

    def __str__(self) -> str:
        op = "=" if self.op == "==" else self.op
        return f"{self.left} {op} {self.right}"


@dataclass(frozen=True)
class Rule:
    """A Horn clause ``head :- body, comparisons``.

    A rule with an empty body and a ground head is a fact.
    """

    head: Atom
    body: tuple[Atom, ...] = ()
    comparisons: tuple[Comparison, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "comparisons", tuple(self.comparisons))
        self._check_safety()

    def _check_safety(self) -> None:
        bound = set()
        for atom in self.body:
            bound |= atom.variable_names()
        for variable in self.head.variables():
            if variable.name not in bound and self.body:
                raise SafetyError(
                    f"unsafe rule {self}: head variable {variable.name!r} does not occur in the body"
                )
            if not self.body and isinstance(variable, Variable):
                raise SafetyError(f"fact {self.head} must be ground")
        for comparison in self.comparisons:
            for name in comparison.variable_names():
                if name not in bound:
                    raise SafetyError(
                        f"unsafe rule {self}: comparison variable {name!r} does not occur in a body atom"
                    )

    @property
    def is_fact(self) -> bool:
        return not self.body and self.head.is_ground()

    def body_relations(self) -> set[str]:
        return {atom.relation for atom in self.body}

    def variable_names(self) -> set[str]:
        names = self.head.variable_names()
        for atom in self.body:
            names |= atom.variable_names()
        return names

    def __str__(self) -> str:
        if not self.body and not self.comparisons:
            return f"{self.head}."
        parts = [str(atom) for atom in self.body] + [str(c) for c in self.comparisons]
        return f"{self.head} :- {', '.join(parts)}."


@dataclass(frozen=True)
class Program:
    """A Datalog program: rules (including facts) plus declared relations."""

    rules: tuple[Rule, ...]
    name: str = "program"

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        self._check_arities()

    @staticmethod
    def parse(source: str, name: str = "program") -> "Program":
        """Parse a program from Datalog source text (see :mod:`repro.datalog.parser`)."""
        from .parser import parse_program

        return parse_program(source, name=name)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def _check_arities(self) -> None:
        arities: dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                known = arities.get(atom.relation)
                if known is None:
                    arities[atom.relation] = atom.arity
                elif known != atom.arity:
                    raise DatalogError(
                        f"relation {atom.relation!r} used with arities {known} and {atom.arity}"
                    )

    def relation_arities(self) -> dict[str, int]:
        """Arity of every relation mentioned anywhere in the program."""
        arities: dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                arities.setdefault(atom.relation, atom.arity)
        return arities

    def relations(self) -> set[str]:
        return set(self.relation_arities())

    def idb_relations(self) -> set[str]:
        """Relations defined by at least one non-fact rule head."""
        return {rule.head.relation for rule in self.rules if not rule.is_fact}

    def edb_relations(self) -> set[str]:
        """Relations that only ever appear in rule bodies or as facts."""
        return self.relations() - self.idb_relations()

    def facts(self) -> list[Rule]:
        return [rule for rule in self.rules if rule.is_fact]

    def proper_rules(self) -> list[Rule]:
        return [rule for rule in self.rules if not rule.is_fact]

    def rules_for(self, relation: str) -> list[Rule]:
        return [rule for rule in self.proper_rules() if rule.head.relation == relation]

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


def program_from_rules(rules: Iterable[Rule], name: str = "program") -> Program:
    """Build a :class:`Program` from an iterable of rules."""
    return Program(tuple(rules), name=name)
