#!/usr/bin/env python
"""Docs health check: intra-repo links must resolve, code blocks must run.

Two failure modes this catches, both of which used to ship silently:

* **Broken intra-repo links** — every relative ``[text](path)`` target in
  the checked markdown files must exist on disk (URL fragments are
  stripped; external ``http(s):``/``mailto:`` links are ignored).
* **Stale code blocks** — every fenced ```` ```python ```` block is
  executed with ``src/`` on ``sys.path``; a block that raises means the
  documented API drifted from the code.  Blocks that are deliberately
  illustrative (pseudo-code, ``...`` bodies) opt out by placing
  ``<!-- docs: no-run -->`` on the line directly above the fence.

Exit status is non-zero on any failure, so CI can gate on it directly:

    python tools/check_docs.py            # check the default doc set
    python tools/check_docs.py README.md  # or an explicit file list
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documentation surface the CI docs job checks.
DEFAULT_DOCS = ["README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md", "docs"]

#: Markdown inline links: [text](target).  Images ![alt](target) match too
#: via the optional leading "!".  Reference-style links are not used in
#: this repo's docs.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

NO_RUN_MARKER = "<!-- docs: no-run -->"

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def collect_files(arguments: list[str]) -> list[Path]:
    targets = arguments or DEFAULT_DOCS
    files: list[Path] = []
    for target in targets:
        path = REPO_ROOT / target
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"docs check: no such file or directory: {target}", file=sys.stderr)
            return []
    return files


def check_links(path: Path, text: str) -> list[str]:
    failures: list[str] = []
    fenced = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            fenced = not fenced
        if fenced:
            continue  # code blocks may contain [x](y)-shaped strings
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                failures.append(
                    f"{path.relative_to(REPO_ROOT)}:{line_number}: "
                    f"broken link target {target!r}"
                )
    return failures


def extract_python_blocks(text: str) -> list[tuple[int, str, bool]]:
    """Return (start_line, source, runnable) per ```python fence."""
    blocks: list[tuple[int, str, bool]] = []
    lines = text.splitlines()
    index = 0
    previous_content = ""
    while index < len(lines):
        line = lines[index]
        if line.strip().startswith("```"):
            language = line.strip().lstrip("`").strip()
            fence_line = index + 1
            body: list[str] = []
            index += 1
            while index < len(lines) and not lines[index].strip().startswith("```"):
                body.append(lines[index])
                index += 1
            if language == "python":
                runnable = previous_content != NO_RUN_MARKER
                blocks.append((fence_line, "\n".join(body), runnable))
            previous_content = ""
        elif line.strip():
            previous_content = line.strip()
        index += 1
    return blocks


def run_block(path: Path, line: int, source: str) -> list[str]:
    namespace: dict = {"__name__": f"docs_block_{path.stem}_{line}"}
    try:
        exec(compile(source, f"{path}:{line}", "exec"), namespace)
    except Exception:
        trace = traceback.format_exc(limit=3)
        return [
            f"{path.relative_to(REPO_ROOT)}:{line}: python block raised\n"
            + "".join(f"    {l}\n" for l in trace.splitlines())
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    files = collect_files(arguments)
    if not files:
        return 2

    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures: list[str] = []
    blocks_run = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        failures.extend(check_links(path, text))
        for line, source, runnable in extract_python_blocks(text):
            if not runnable:
                continue
            failures.extend(run_block(path, line, source))
            blocks_run += 1

    if failures:
        print("DOCS CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"docs check passed: {len(files)} files, links resolved, "
        f"{blocks_run} python blocks executed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
