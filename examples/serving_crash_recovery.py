#!/usr/bin/env python
"""Epoch-transactional serving: abort invisibly, crash, recover exactly.

A :class:`~repro.serving.ServingEngine` with a disk WAL and a disk
checkpoint store serves a stream of insert/retract epochs over 2 simulated
H100s while this script abuses it:

1. a few epochs commit normally (each one WAL-logged, committed with an
   fsync'd marker, and checkpointed at the epoch boundary);
2. a permanently faulty shard makes one epoch exhaust its retry ladder —
   the epoch aborts, state and snapshot versions roll back, and reads keep
   serving the last committed answer;
3. another batch is acknowledged into the WAL and the process "dies"
   (:meth:`~repro.serving.ServingEngine.crash` drops everything on the
   floor the way a real crash would, resolving nothing);
4. :meth:`~repro.serving.ServingEngine.recover` rebuilds the engine from
   the newest checkpoint, replays the committed WAL groups past its
   horizon, folds the acknowledged-but-uncommitted batch into a catch-up
   epoch, and resumes serving.

The recovered database must be byte-identical to a fault-free engine fed
the same acknowledged history — the script checks exactly that.
"""

import os
import tempfile

import numpy as np

from repro.device import FaultPlan
from repro.errors import EpochAborted
from repro.queries import REACH_SOURCE
from repro.relational import DiskCheckpointStore
from repro.serving import DiskWal, ServingEngine

NUM_SHARDS = 2
CHAIN = [(i, i + 1) for i in range(8)]


def snapshot_bytes(engine):
    return {name: engine.query(name).rows.tobytes() for name in ("edge", "reach")}


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="serving-recovery-")
    wal_path = os.path.join(workdir, "wal.jsonl")
    store = DiskCheckpointStore(os.path.join(workdir, "checkpoints"), keep=2)

    engine = ServingEngine(
        REACH_SOURCE,
        {"edge": CHAIN},
        background=False,
        num_shards=NUM_SHARDS,
        fault_plan="none",
        wal=DiskWal(wal_path),
        checkpoint_store=store,
    )

    # 1. Normal committed epochs: logged, marked, checkpointed.
    engine.submit(inserts={"edge": [(8, 9)]}).result()
    engine.submit(retracts={"edge": [(3, 4)]}).result()
    print(
        f"committed {engine.epoch} epochs: |reach| = {engine.query('reach').count}, "
        f"health = {engine.health()}"
    )

    # 2. A permanent kernel fault aborts one epoch invisibly.
    versions_before = {n: engine.snapshot_version(n) for n in ("edge", "reach")}
    plan = FaultPlan.parse("kernel:*:every=1:times=1000000")
    for device in engine.devices:
        device.fault_plan = plan
    try:
        engine.submit(inserts={"edge": [(50, 51)]}).result()
        raise SystemExit("expected the permanent fault plan to abort the epoch")
    except EpochAborted as abort:
        print(
            f"epoch {abort.epoch} aborted after {abort.attempts} attempts; "
            f"health = {engine.health()}"
        )
    for device in engine.devices:
        device.fault_plan = None
    versions_after = {n: engine.snapshot_version(n) for n in ("edge", "reach")}
    print(f"  snapshot versions unchanged by the abort: {versions_before == versions_after}")

    # 3. Acknowledge one more batch straight into the WAL, then die.
    engine.wal.append_batch({"edge": [(9, 10)]}, {})
    expected_epoch = engine.epoch
    engine.crash()
    print(f"crashed at epoch {expected_epoch} with 1 acknowledged batch pending in the WAL")

    # 4. Recover from the durable artifacts alone.
    recovered = ServingEngine.recover(
        store,
        DiskWal(wal_path),
        background=False,
        fault_plan="none",
    )
    print(
        f"recovered to epoch {recovered.epoch} "
        f"(replayed WAL + 1 catch-up epoch), health = {recovered.health()}"
    )

    # Equivalence: a fault-free engine fed the same acknowledged history.
    clean = ServingEngine(
        REACH_SOURCE,
        {"edge": CHAIN},
        background=False,
        num_shards=NUM_SHARDS,
        fault_plan="none",
    )
    clean.submit(inserts={"edge": [(8, 9)]}).result()
    clean.submit(retracts={"edge": [(3, 4)]}).result()
    clean.submit(inserts={"edge": [(9, 10)]}).result()
    identical = snapshot_bytes(recovered) == snapshot_bytes(clean)
    print(f"recovered snapshots byte-identical to the fault-free history: {identical}")
    assert identical

    # The recovered engine keeps serving.
    result = recovered.submit(inserts={"edge": [(10, 11)]}).result()
    reach = recovered.query("reach").rows
    longest = int(np.max(reach[:, 1] - reach[:, 0]))
    print(
        f"post-recovery epoch {result.epoch} committed: |reach| = {reach.shape[0]}, "
        f"longest path spans {longest} nodes"
    )

    clean.close()
    recovered.close()


if __name__ == "__main__":
    main()
