#!/usr/bin/env python
"""Quickstart: transitive closure with GPUlog on a simulated H100.

Loads a small directed graph, runs the REACH Datalog program, prints the
derived tuples together with the simulated execution profile (phase breakdown,
peak device memory), and cross-checks the answer against NetworkX.
"""

import networkx as nx

from repro import GPULogEngine
from repro.queries import REACH_SOURCE


def main() -> None:
    edges = [
        (0, 1), (0, 2), (1, 3), (1, 4), (2, 4),
        (2, 5), (3, 6), (4, 7), (4, 8), (5, 8),
    ]

    engine = GPULogEngine(device="h100")
    engine.add_facts("edge", edges)
    result = engine.run(REACH_SOURCE)

    print("REACH program:")
    print(REACH_SOURCE.strip())
    print()
    print(f"derived {result.count('reach')} reach tuples in "
          f"{result.total_iterations} semi-naive iterations")
    print(f"simulated time on {result.device_name}: {result.elapsed_seconds * 1e3:.3f} ms")
    print(f"peak simulated device memory: {result.peak_memory_bytes / 1024:.1f} KiB")
    print()
    print("phase breakdown:")
    for phase, seconds in sorted(result.phase_seconds.items(), key=lambda kv: -kv[1]):
        print(f"  {phase:20s} {seconds * 1e6:10.1f} us")
    print()

    graph = nx.DiGraph(edges)
    expected = {(u, v) for u in graph.nodes for v in nx.descendants(graph, u)}
    assert result.relation_set("reach") == expected, "GPUlog disagrees with NetworkX!"
    print("cross-check against NetworkX transitive closure: OK")
    print()
    print("first few tuples:", sorted(result.relation("reach"))[:10])
    engine.close()


if __name__ == "__main__":
    main()
