#!/usr/bin/env python
"""Fault-tolerant fixpoint execution: inject faults, recover, resume.

Runs transitive closure on a random DAG across 2 simulated H100s while a
deterministic :class:`~repro.device.faults.FaultPlan` kills things mid-run:

1. a transient kernel fault absorbed by the version retry loop,
2. a shard crash mid-exchange — the dead device is rebuilt and every shard
   rolls back to the last iteration-boundary checkpoint,
3. a persistent fault that exhausts the retry budget, so the run surrenders
   a resumable :class:`~repro.relational.EvaluationCheckpoint` which a
   fresh, fault-free engine then finishes via ``engine.resume(...)``.

Every recovered run must produce exactly the fault-free answer.  The plans
here are scripted explicitly; a process-wide plan can instead be installed
with ``REPRO_FAULT_PLAN`` (``none`` disables injection, ``ci-default`` is
the CI chaos plan).
"""

import numpy as np

from repro.datalog.engine import GPULogEngine
from repro.errors import FixpointInterrupted
from repro.queries import REACH_SOURCE

NUM_SHARDS = 2


def random_dag(nodes: int = 60, density: float = 0.08, seed: int = 9) -> np.ndarray:
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((nodes, nodes)) < density, k=1)
    src, dst = np.nonzero(upper)
    return np.column_stack([src, dst]).astype(np.int64)


def run_tc(edges, *, fault_plan=None, **engine_kwargs):
    engine = GPULogEngine(
        "h100", num_shards=NUM_SHARDS, fault_plan=fault_plan, **engine_kwargs
    )
    engine.add_fact_array("edge", edges)
    result = engine.run(REACH_SOURCE)
    answer = result.relation_set("reach")
    engine.close()
    return result, answer


def main() -> None:
    edges = random_dag()
    # "none" pins the baseline fault-free even if REPRO_FAULT_PLAN is set.
    baseline, expected = run_tc(edges, fault_plan="none")
    print(f"fault-free: |reach| = {len(expected)} in {baseline.total_iterations} iterations")
    print()

    # 1. Transient kernel fault: the 5th join-chain launch fails once.
    result, answer = run_tc(edges, fault_plan="kernel:*<-*:at=5")
    print("transient kernel fault (kernel:*<-*:at=5):")
    print(f"  retries: {result.transient_retries}, answer identical: {answer == expected}")
    print(
        f"  backoff charged to fault_recovery: "
        f"{result.phase_seconds.get('fault_recovery', 0.0) * 1e3:.3f} device-ms"
    )
    print()

    # 2. Shard crash mid-exchange, recovered from iteration checkpoints.
    result, answer = run_tc(
        edges, fault_plan="exchange:*:at=4", checkpoint_every=2
    )
    print("shard crash mid-exchange (exchange:*:at=4, checkpoint_every=2):")
    print(
        f"  rebuilds: {result.shard_rebuilds}, restores: {result.checkpoint_restores}, "
        f"checkpoints: {result.checkpoints_taken}"
    )
    print(f"  answer identical: {answer == expected}")
    print(
        f"  snapshot D2H charged to checkpoint phase: "
        f"{result.phase_seconds.get('checkpoint', 0.0) * 1e3:.3f} device-ms"
    )
    print()

    # 3. A fault on every join launch defeats the retry budget; the engine
    #    surrenders a checkpoint and a clean engine resumes from it.
    engine = GPULogEngine(
        "h100",
        num_shards=NUM_SHARDS,
        fault_plan="kernel:*<-*:every=1:times=60",
        checkpoint_every=2,
        max_retries=2,
    )
    engine.add_fact_array("edge", edges)
    try:
        engine.run(REACH_SOURCE)
        raise SystemExit("expected the persistent fault plan to interrupt the run")
    except FixpointInterrupted as interrupt:
        checkpoint = interrupt.checkpoint
    engine.close()
    print("persistent faults (kernel:*<-*:every=1:times=60, max_retries=2):")
    print(
        f"  interrupted at stratum {checkpoint.stratum_index} "
        f"iteration {checkpoint.iteration}, snapshot {checkpoint.nbytes} host bytes"
    )

    clean = GPULogEngine("h100", num_shards=NUM_SHARDS, fault_plan="none")
    resumed = clean.resume(checkpoint)  # program text travels in the checkpoint
    answer = resumed.relation_set("reach")
    clean.close()
    print(f"  resumed on a clean engine: answer identical: {answer == expected}")


if __name__ == "__main__":
    main()
