#!/usr/bin/env python
"""Context-sensitive points-to analysis (CSPA) with GPUlog.

Generates a program-shaped synthetic value-flow graph (assignments and
pointer dereferences), runs the Graspan CSPA rules on the simulated H100, and
compares the projected runtime against the Soufflé-like CPU baseline — the
experiment behind Table 4 of the paper, at example scale.
"""

from repro.datalog.engine import GPULogEngine
from repro.datasets import generate_cspa_dataset
from repro.engines import SouffleCPUEngine
from repro.queries import CSPA_SOURCE


def main() -> None:
    dataset = generate_cspa_dataset(
        n_functions=8,
        variables_per_function=24,
        chain_length=4,
        fan_in=1,
        call_chain_length=4,
        seed=42,
        name="example-program",
    )
    print(f"synthetic program: {dataset.n_variables} variables, "
          f"{dataset.assign_count} assignments, {dataset.dereference_count} dereferences")

    engine = GPULogEngine(device="h100", collect_relations=False)
    for relation, rows in dataset.facts().items():
        engine.add_fact_array(relation, rows)
    result = engine.run(CSPA_SOURCE)

    print()
    print("derived relations:")
    for relation in ("valueflow", "valuealias", "memalias"):
        print(f"  {relation:12s} {result.count(relation):8d} tuples")
    print(f"fixpoint reached after {result.total_iterations} iterations")
    print(f"simulated GPUlog time: {result.elapsed_seconds * 1e3:.3f} ms")
    print()

    souffle = SouffleCPUEngine().run(CSPA_SOURCE, dataset.facts())
    print(f"simulated Soufflé (32-core EPYC) time: {souffle.seconds * 1e3:.3f} ms")
    print(f"GPU/CPU speedup at this scale: {souffle.seconds / result.elapsed_seconds:.1f}x")
    print("(the paper's Table 4 reports 34-45x at full scale; run "
          "`python -m repro.experiments table4` for the projected comparison)")
    engine.close()


if __name__ == "__main__":
    main()
