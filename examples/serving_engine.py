#!/usr/bin/env python
"""Streaming incremental serving: one resident fixpoint, many epochs.

A :class:`~repro.serving.ServingEngine` loads a Datalog program once, runs
the bootstrap fixpoint, and then keeps every relation's HISA state resident
on the simulated GPU.  Each ``submit`` batch becomes one *epoch*: inserts
run semi-naïve evaluation seeded from the injected delta only, retracts run
DRed (over-delete, then re-derive survivors), and both cost O(Δ)-shaped
simulated time instead of a full re-fixpoint.  ``query`` serves immutable,
versioned snapshots — readers never see a half-merged epoch.

The walkthrough below streams edges into transitive closure, demonstrates
coalescing (concurrent submissions folded into one epoch), retraction, and
the compiled-program cache, and ends by checking the resident answer is
byte-identical to a from-scratch fixpoint over the same final EDB.
"""

import numpy as np

from repro.queries import REACH_SOURCE
from repro.serving import DEFAULT_PROGRAM_CACHE, ServingEngine


def main() -> None:
    edges = [(i, i + 1) for i in range(30)]  # a 31-node chain
    engine = ServingEngine(REACH_SOURCE, {"edge": edges}, fault_plan="none")
    bootstrap = engine.query("reach")
    print(
        f"bootstrap: |reach| = {bootstrap.count} "
        f"(version {bootstrap.version}, epoch {bootstrap.epoch})"
    )

    # --- insert epoch: extend the chain, maintained from the delta only --
    ticket = engine.submit(inserts={"edge": [(30, 31)]})
    result = ticket.result()  # blocks until the background worker commits
    grown = engine.query("reach")
    print(
        f"insert epoch {result.epoch}: |reach| {bootstrap.count} -> {grown.count} "
        f"in {result.iterations} delta iterations, "
        f"{result.simulated_seconds * 1e3:.3f} simulated ms"
    )

    # --- coalescing: submissions queued together become ONE epoch --------
    first = engine.submit(inserts={"edge": [(31, 32)]})
    second = engine.submit(inserts={"edge": [(32, 33)]})
    a, b = first.result(), second.result()
    assert a is b and a.coalesced == 2
    print(f"coalesced epoch {a.epoch}: 2 submissions, one fixpoint")

    # --- retract epoch: DRed over-deletes, then re-derives survivors -----
    # Add an alternative route 0 -> 100 -> 1, then delete the direct edge:
    # every 0-to-* pair transitively supported by (0, 1) must survive via
    # the detour, which is exactly what DRed's re-derivation phase proves.
    engine.submit(inserts={"edge": [(0, 100), (100, 1)]}).result()
    result = engine.submit(retracts={"edge": [(0, 1)]}).result()
    print(
        f"retract epoch {result.epoch}: over-deleted {result.retracted.get('reach', 0)} "
        f"reach rows, re-derived {result.rederived.get('reach', 0)} survivors "
        f"via the 0 -> 100 -> 1 detour"
    )

    # --- snapshots are versioned and immutable ---------------------------
    snapshot = engine.query("reach")
    assert (0, 1) in snapshot.as_set()  # survived the retraction
    print(
        f"snapshot: |reach| = {snapshot.count} at version {snapshot.version}; "
        f"rows are read-only: writeable={snapshot.rows.flags.writeable}"
    )

    # --- the compiled program is cached by rule-set hash ------------------
    hits_before = DEFAULT_PROGRAM_CACHE.hits
    second_engine = ServingEngine(REACH_SOURCE, {"edge": [(0, 1)]}, fault_plan="none")
    second_engine.close()
    print(
        f"second engine reused the compiled program: "
        f"cache hits {hits_before} -> {DEFAULT_PROGRAM_CACHE.hits}"
    )

    # --- equivalence: epochs must be invisible in the final answer --------
    final_edges = sorted(
        (set(edges) | {(30, 31), (31, 32), (32, 33), (0, 100), (100, 1)}) - {(0, 1)}
    )
    scratch = ServingEngine(REACH_SOURCE, {"edge": final_edges}, fault_plan="none")
    incremental, fresh = engine.query("reach"), scratch.query("reach")
    identical = incremental.rows.tobytes() == fresh.rows.tobytes()
    scratch.close()
    engine.close()
    print(f"incremental == from-scratch fixpoint: {identical}")
    if not identical:
        raise SystemExit("serving engine diverged from the batch fixpoint")

    assert np.array_equal(incremental.rows, fresh.rows)


if __name__ == "__main__":
    main()
