#!/usr/bin/env python
"""Using the lower layers directly: HISA, joins and a custom device.

This example skips the Datalog front-end and shows the building blocks:
defining a custom GPU specification, building a HISA over a relation, running
a hash join (Algorithm 3 of the paper), and inspecting the profiler.
It also demonstrates string-valued facts through the engine's symbol table.
"""

import numpy as np

from repro import GPULogEngine
from repro.device import Device, DeviceSpec
from repro.relational import HISA, JoinOutput, hash_join


def relational_layer_demo() -> None:
    # A hypothetical mid-range accelerator.
    spec = DeviceSpec(
        name="Example Accelerator",
        kind="gpu",
        sm_count=48,
        cores_per_sm=64,
        clock_ghz=1.2,
        memory_bandwidth_gbps=800.0,
        memory_capacity_bytes=16 * 1024**3,
    )
    device = Device(spec)

    # employee(id, department), salary(id, amount)
    employee = np.array([[1, 10], [2, 10], [3, 20], [4, 30]], dtype=np.int64)
    salary = np.array([[1, 90], [2, 70], [3, 85], [4, 60]], dtype=np.int64)

    salary_index = HISA(device, salary, join_columns=(0,), label="salary")
    joined = hash_join(
        device,
        employee,
        outer_join_columns=[0],
        inner=salary_index,
        output=[JoinOutput("outer", 1), JoinOutput("inner", 1)],
        label="employee_salary",
    )
    print("department/salary pairs:")
    print(joined)
    print(f"simulated join time on {spec.name}: {device.elapsed_seconds * 1e6:.2f} us")
    print("kernels executed:", sorted(device.profiler.kernel_seconds()))
    print()


def symbolic_facts_demo() -> None:
    engine = GPULogEngine(device="a100")
    engine.add_facts("manages", [("alice", "bob"), ("bob", "carol"), ("carol", "dave")])
    result = engine.run(
        """
        chain(x, y) :- manages(x, y).
        chain(x, y) :- manages(x, z), chain(z, y).
        """
    )
    print("management chain (string constants are interned transparently):")
    for who, report in sorted(result.relation("chain")):
        print(f"  {who} -> {report}")
    engine.close()


if __name__ == "__main__":
    relational_layer_demo()
    symbolic_facts_demo()
