#!/usr/bin/env python
"""Triangle counting: binary join plans vs the worst-case-optimal generic join.

Builds a hub-heavy graph (one vertex linked both ways to every other, plus a
sparse random remainder), runs the same cyclic triangle rule under all three
planner modes, and prints each run's chosen algorithm, simulated time, and
the planner's estimated vs. observed cardinalities (``engine.explain()``).
The binary plan's first join materializes every *wedge* — the hub inflates
that intermediate hundreds of times past the output — while the generic
join expands only the smallest candidate run per row, so ``cost+wcoj``
wins on simulated time without changing a single tuple.
"""

import numpy as np

from repro import GPULogEngine

TRIANGLE_SOURCE = "triangle(x, y, z) :- edge(x, y), edge(y, z), edge(z, x)."


def hub_graph(n: int = 2000, extra: int | None = None, seed: int = 7) -> np.ndarray:
    if extra is None:
        extra = 2 * n
    rng = np.random.default_rng(seed)
    rows = [(0, v) for v in range(1, n)] + [(v, 0) for v in range(1, n)]
    src = rng.integers(1, n, size=extra)
    dst = rng.integers(1, n, size=extra)
    rows += [(int(a), int(b)) for a, b in zip(src, dst) if a != b]
    return np.unique(np.asarray(rows, dtype=np.int64), axis=0)


def wedge_count(edges: np.ndarray) -> int:
    """Rows the binary plan's first join (edge ⋈ edge on y) materializes."""
    uniques, out_degree = np.unique(edges[:, 0], return_counts=True)
    degree = dict(zip(uniques.tolist(), out_degree.tolist()))
    return sum(degree.get(int(y), 0) for y in edges[:, 1])


def main() -> None:
    edges = hub_graph()
    print("triangle rule:")
    print(f"  {TRIANGLE_SOURCE}")
    print(f"hub graph: {edges.shape[0]} edges, max degree ~{edges.shape[0] // 2}")
    print(f"binary plan's wedge intermediate: {wedge_count(edges)} rows")
    print()

    results = {}
    for planner in ("greedy", "cost", "cost+wcoj"):
        engine = GPULogEngine(device="h100", planner=planner)
        engine.add_fact_array("edge", edges)
        result = engine.run(TRIANGLE_SOURCE)
        results[planner] = result
        (entry,) = [e for e in result.plan_report if e["head"] == "triangle"]
        print(
            f"planner={planner:9s} algorithm={entry['algorithm']:6s} "
            f"triangles={result.count('triangle'):6d} "
            f"simulated={result.elapsed_seconds * 1e3:7.3f} ms"
        )
        print(engine.explain())
        print()
        engine.close()

    greedy, wcoj = results["greedy"], results["cost+wcoj"]
    assert (
        greedy.relation_set("triangle") == wcoj.relation_set("triangle")
    ), "planners must derive identical triangles!"
    speedup = greedy.elapsed_seconds / wcoj.elapsed_seconds
    print(
        f"generic join is {speedup:.2f}x the binary plan's simulated speed "
        f"({wedge_count(edges)} wedges never materialized)"
    )


if __name__ == "__main__":
    main()
