#!/usr/bin/env python
"""Same Generation across data-center GPUs, plus the materialization ablation.

Runs the SG query (a three-way join) on a finite-element-style mesh with
GPUlog, then

1. re-prices the recorded kernel schedule under the H100, A100, MI250 and MI50
   device specifications (the experiment behind Table 5), and
2. re-evaluates the query with the fused (non-materialized) n-way join to show
   why GPUlog materializes temporaries (Section 5.2).
"""

import numpy as np

from repro.datalog.engine import GPULogEngine
from repro.datasets import finite_element_mesh
from repro.device import Device
from repro.experiments import reprice_events
from repro.queries import SG_SOURCE


def run_sg(materialize: bool):
    mesh = finite_element_mesh(30, 6, seed=3, name="example-mesh")
    engine = GPULogEngine(Device("h100"), materialize_nway=materialize, collect_relations=False)
    engine.add_fact_array("edge", mesh.edges)
    result = engine.run(SG_SOURCE)
    events = engine.device.profiler.events
    engine.close()
    return mesh, result, events


def main() -> None:
    mesh, result, events = run_sg(materialize=True)
    print(f"mesh: {mesh.n_nodes} nodes, {mesh.edge_count} edges")
    print(f"SG size: {result.count('sg')} tuples in {result.total_iterations} iterations")
    print()

    print("GPUlog runtime across devices (same kernel schedule, re-priced):")
    for device in ("h100", "a100", "mi250", "mi50"):
        total, _, _ = reprice_events(events, device)
        print(f"  {device.upper():6s} {total * 1e3:8.3f} ms (simulated)")
    print()

    _, fused, _ = run_sg(materialize=False)
    print("temporarily-materialized vs fused n-way join (H100):")
    print(f"  materialized: {result.elapsed_seconds * 1e3:8.3f} ms")
    print(f"  fused:        {fused.elapsed_seconds * 1e3:8.3f} ms")
    print(f"  fused produces the same answer: {fused.count('sg') == result.count('sg')}")


if __name__ == "__main__":
    main()
