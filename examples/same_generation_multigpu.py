#!/usr/bin/env python
"""Same Generation across data-center GPUs: re-pricing, sharding, ablation.

Runs the SG query (a three-way join) on a finite-element-style mesh with
GPUlog, then

1. re-prices the recorded kernel schedule under the H100, A100, MI250 and MI50
   device specifications (the experiment behind Table 5),
2. re-evaluates the query **sharded across 4 simulated H100s**
   (``GPULogEngine(num_shards=4)``): relations hash-partitioned by their
   canonical join column, foreign-keyed delta tuples exchanged over the
   charged NVLink-class interconnect each iteration, and
3. re-evaluates with the fused (non-materialized) n-way join to show why
   GPUlog materializes temporaries (Section 5.2).
"""

from repro.datalog.engine import GPULogEngine
from repro.datasets import finite_element_mesh
from repro.experiments import reprice_events
from repro.queries import SG_SOURCE

NUM_SHARDS = 4


def run_sg(materialize: bool = True, num_shards: int = 1):
    mesh = finite_element_mesh(30, 6, seed=3, name="example-mesh")
    engine = GPULogEngine(
        "h100",
        materialize_nway=materialize,
        collect_relations=False,
        num_shards=num_shards,
    )
    engine.add_fact_array("edge", mesh.edges)
    result = engine.run(SG_SOURCE)
    events = engine.device.profiler.events
    engine.close()  # releases every shard device; double-close is a no-op
    return mesh, result, events


def main() -> None:
    mesh, result, events = run_sg(materialize=True)
    print(f"mesh: {mesh.n_nodes} nodes, {mesh.edge_count} edges")
    print(f"SG size: {result.count('sg')} tuples in {result.total_iterations} iterations")
    print()

    print("GPUlog runtime across devices (same kernel schedule, re-priced):")
    for device in ("h100", "a100", "mi250", "mi50"):
        total, _, _ = reprice_events(events, device)
        print(f"  {device.upper():6s} {total * 1e3:8.3f} ms (simulated)")
    print()

    _, sharded, _ = run_sg(num_shards=NUM_SHARDS)
    print(f"sharded across {NUM_SHARDS} H100s (hash-partitioned, delta exchange):")
    print(f"  single device: {result.elapsed_seconds * 1e3:8.3f} ms (simulated)")
    print(
        f"  {NUM_SHARDS} shards:      {sharded.elapsed_seconds * 1e3:8.3f} ms "
        f"(max over shards, {result.elapsed_seconds / sharded.elapsed_seconds:.2f}x)"
    )
    for shard, seconds in enumerate(sharded.shard_elapsed_seconds):
        peak = sharded.shard_peak_memory_bytes[shard] / 1024**2
        print(f"    shard {shard}: {seconds * 1e3:8.3f} ms, peak {peak:7.2f} MiB")
    exchange_mib = sharded.exchange_bytes / 1024**2
    print(
        f"  exchange volume: {exchange_mib:.2f} MiB / {sharded.exchange_tuples} tuples "
        f"over the NVLink-class interconnect"
    )
    print(
        f"  shard_exchange phase: "
        f"{sharded.phase_seconds.get('shard_exchange', 0.0) * 1e3:.3f} device-ms"
    )
    print(f"  same answer as single device: {sharded.count('sg') == result.count('sg')}")
    print(
        "  (this mesh is tiny and launch-latency-bound, so sharding cannot pay off;\n"
        "   benchmarks/BENCH_sharded.json records the bandwidth-bound 5.4M-tuple SG\n"
        "   curve where 4 shards reach ~2x max-over-shards speedup)"
    )
    print()

    _, fused, _ = run_sg(materialize=False)
    print("temporarily-materialized vs fused n-way join (H100):")
    print(f"  materialized: {result.elapsed_seconds * 1e3:8.3f} ms")
    print(f"  fused:        {fused.elapsed_seconds * 1e3:8.3f} ms")
    print(f"  fused produces the same answer: {fused.count('sg') == result.count('sg')}")


if __name__ == "__main__":
    main()
