#!/usr/bin/env python
"""CI performance-regression gate over the recorded ``BENCH_*`` artifacts.

The bench-smoke job records quick baselines on its own runner and then runs
this script over them; any violated gate makes the script (and therefore the
job) exit non-zero.  The gates, all evaluated on same-machine recordings so
absolute wall-clock noise cancels out:

* **backend dispatch** — the numpy-backend SG fixpoint must stay within
  ``--max-dispatch-ratio`` (default 1.10) of the columnar-pipeline recording
  made moments earlier on the same runner; a bigger ratio means the
  ``ArrayBackend`` indirection started costing real time.
* **incremental merge** — the largest quick microbenchmark's
  rebuild/incremental speedup must stay above ``--min-merge-ratio`` (default
  1.8; the quick 40k shape measures ~3x, the floor is the noise-proof
  recalibration of the full-shape 3.0x gate).  A ratio collapsing toward
  1.0 means the O(Δ) merge path regressed to rebuild-class cost.
* **sharded exchange** — every ``num_shards > 1`` point of the sharded
  scaling curve must report non-zero interconnect traffic and the same
  output size as the single-device baseline; zero exchange bytes means the
  charged ``device_to_device`` boundary was silently bypassed.  On the same
  points, semi-join-filtered exchange bytes must stay at or below
  ``--max-filtered-exchange-ratio`` (default 0.7) of the recorded unfiltered
  ablation arm, and overlap efficiency must be positive — a ratio drifting
  toward 1.0 means the filters stopped pruning, a zero efficiency means the
  double-buffered schedule stopped hiding exchange time.
* **checkpoint overhead** — the SG fixpoint at ``checkpoint_every=50`` must
  stay within ``--max-checkpoint-overhead`` (default 1.10) of the
  checkpoint-free simulated time, actually take checkpoints, and produce
  identical output sizes at every cadence; a bigger ratio means the
  fault-tolerance insurance premium stopped being cheap.
* **join planner** — on the hub-graph triangle workload (binary-plan
  intermediate > 10x the output), the ``cost+wcoj`` generic join must beat
  the greedy binary plan by at least ``--min-wcoj-speedup`` (default 1.5x)
  simulated time with identical output; and the ``cost`` planner's binary
  ordering must never lose more than ``--max-cost-regression`` (default
  1.05x) to the seed's greedy order on TC, SG or CSPA.
* **serving epochs** — on every trickle workload (|Δ|/|EDB| <= 1% per
  epoch), the serving engine's median insert epoch must beat the full
  re-fixpoint over the same final EDB by ``--min-serving-speedup`` (default
  5x) simulated time, the incremental answer must match the re-fixpoint
  count, and the program cache must have compiled each program exactly
  once; a collapsing speedup means epochs stopped being O(Δ)-shaped.  The
  epoch-transactional configuration (WAL + boundary checkpoints) must also
  stay within ``--max-serving-protection-overhead`` (default 1.15x) of the
  unprotected engine's p50 insert epoch, with identical output and at least
  one WAL commit actually exercised.

Each gate is a pure function over the parsed artifact (returning a list of
violation messages) so the logic is unit-testable without touching the
filesystem; the CLI wires files to gates.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default ceiling for numpy-backend / columnar-pipeline dispatch overhead.
MAX_DISPATCH_RATIO = 1.10
#: Default floor for the quick incremental-merge speedup (largest |full|).
MIN_MERGE_RATIO = 1.8
#: Default ceiling for checkpoint_every=50 simulated time vs checkpoint-free.
MAX_CHECKPOINT_OVERHEAD = 1.10
#: The cadence the checkpoint-overhead gate pins (issue: <=10% at 50).
GATED_CHECKPOINT_CADENCE = 50
#: Default ceiling for filtered / unfiltered sharded exchange bytes.
MAX_FILTERED_EXCHANGE_RATIO = 0.7
#: Default floor for the WCOJ / binary triangle speedup (simulated time).
MIN_WCOJ_SPEEDUP = 1.5
#: Default ceiling for cost-planner / greedy-planner simulated time on the
#: paper's acyclic workloads (TC, SG, CSPA).
MAX_COST_REGRESSION = 1.05
#: The intermediate blowup the WCOJ gate requires the workload to exhibit —
#: below this the triangle instance is not binary-hostile enough to gate on.
MIN_INTERMEDIATE_BLOWUP = 10.0
#: Default floor for the serving engine's median insert-epoch speedup over a
#: full re-fixpoint of the same final EDB (simulated time).
MIN_SERVING_SPEEDUP = 5.0
#: The serving gate only means something while epochs stay a trickle: every
#: gated workload must keep |Δ|/|EDB| at or below this per epoch.
MAX_SERVING_DELTA_RATIO = 0.01
#: Default ceiling for the epoch-transactional serving engine (WAL +
#: boundary checkpoints) vs the unprotected engine, p50 insert epoch
#: simulated time.  Durability must stay a small tax on the trickle path.
MAX_SERVING_PROTECTION_OVERHEAD = 1.15


def check_dispatch_ratio(artifact: dict, max_ratio: float = MAX_DISPATCH_RATIO) -> list[str]:
    """Gate the ArrayBackend dispatch overhead recorded in BENCH_backend."""
    sg = artifact.get("sg_two_join_fixpoint") or {}
    ratio = sg.get("numpy_vs_columnar_pipeline")
    if ratio is None:
        return [
            "backend artifact has no numpy_vs_columnar_pipeline ratio — "
            "was the columnar baseline recorded on this runner first?"
        ]
    if ratio > max_ratio:
        return [
            f"backend dispatch ratio {ratio:.3f} exceeds {max_ratio:.2f}: "
            "routing through ArrayBackend got measurably slower than the "
            "same-machine columnar recording"
        ]
    return []


def check_merge_ratio(artifact: dict, min_ratio: float = MIN_MERGE_RATIO) -> list[str]:
    """Gate the incremental-merge speedup recorded in BENCH_relational."""
    merges = artifact.get("single_merge") or []
    if not merges:
        return ["relational artifact has no single_merge entries"]
    largest = max(merges, key=lambda entry: entry.get("n_full", 0))
    speedup = largest.get("speedup")
    if speedup is None:
        return [f"single_merge entry for |full|={largest.get('n_full')} has no speedup"]
    if speedup < min_ratio:
        return [
            f"incremental merge speedup {speedup:.2f}x at |full|={largest['n_full']} "
            f"fell below the {min_ratio:.2f}x floor: the O(Δ) merge path regressed"
        ]
    return []


def check_sharded(
    artifact: dict, max_filtered_ratio: float = MAX_FILTERED_EXCHANGE_RATIO
) -> list[str]:
    """Gate the sharded scaling curve recorded in BENCH_sharded."""
    scaling = artifact.get("sg_sharded_scaling") or {}
    curve = scaling.get("curve") or []
    if not curve:
        return ["sharded artifact has no scaling curve"]
    failures: list[str] = []
    baseline = curve[0]
    if baseline.get("num_shards") != 1:
        failures.append("sharded curve must start at the num_shards=1 ablation baseline")
    for entry in curve:
        shards = entry.get("num_shards")
        if entry.get("sg_count") != baseline.get("sg_count"):
            failures.append(
                f"sharded run at N={shards} produced |sg|={entry.get('sg_count')}, "
                f"baseline produced {baseline.get('sg_count')}"
            )
        if shards and shards > 1 and not entry.get("exchange_bytes"):
            failures.append(
                f"sharded run at N={shards} reports zero exchange bytes — the "
                "charged device_to_device boundary was bypassed"
            )
        if not shards or shards <= 1:
            continue
        unfiltered = entry.get("unfiltered_exchange_bytes")
        if unfiltered is None:
            failures.append(
                f"sharded run at N={shards} has no unfiltered_exchange_bytes — "
                "the semi-join ablation arm was not recorded"
            )
        elif unfiltered and entry.get("exchange_bytes", 0) > max_filtered_ratio * unfiltered:
            ratio = entry.get("exchange_bytes", 0) / unfiltered
            failures.append(
                f"filtered exchange at N={shards} moved {ratio:.3f}x the unfiltered "
                f"bytes, above the {max_filtered_ratio:.2f}x ceiling: semi-join "
                "filtering stopped pruning the exchange volume"
            )
        efficiency = entry.get("overlap_efficiency")
        if efficiency is None:
            failures.append(
                f"sharded run at N={shards} has no overlap_efficiency — the "
                "overlap schedule was not recorded"
            )
        elif efficiency <= 0:
            failures.append(
                f"overlap efficiency at N={shards} is {efficiency} — the "
                "double-buffered exchange schedule hid no exchange time"
            )
    return failures


def check_robustness(
    artifact: dict, max_overhead: float = MAX_CHECKPOINT_OVERHEAD
) -> list[str]:
    """Gate the checkpoint-overhead curve recorded in BENCH_robustness."""
    sg = artifact.get("sg_checkpoint_overhead") or {}
    curve = sg.get("curve") or []
    if not curve:
        return ["robustness artifact has no sg_checkpoint_overhead curve"]
    failures: list[str] = []
    baseline = curve[0]
    if baseline.get("checkpoint_every") != 0:
        failures.append(
            "checkpoint-overhead curve must start at the checkpoint_every=0 baseline"
        )
    gated = None
    for entry in curve:
        cadence = entry.get("checkpoint_every")
        if entry.get("sg_count") != baseline.get("sg_count"):
            failures.append(
                f"checkpointed run at checkpoint_every={cadence} produced "
                f"|sg|={entry.get('sg_count')}, baseline produced {baseline.get('sg_count')}"
            )
        if cadence and not entry.get("checkpoints_taken"):
            failures.append(
                f"run at checkpoint_every={cadence} took no checkpoints — the "
                "snapshot path was silently skipped, so the overhead number is vacuous"
            )
        if cadence == GATED_CHECKPOINT_CADENCE:
            gated = entry
    if gated is None:
        failures.append(
            f"robustness curve has no checkpoint_every={GATED_CHECKPOINT_CADENCE} "
            "entry — nothing to gate"
        )
        return failures
    ratio = gated.get("overhead_vs_uncheckpointed")
    if ratio is None:
        failures.append(
            f"checkpoint_every={GATED_CHECKPOINT_CADENCE} entry has no "
            "overhead_vs_uncheckpointed ratio"
        )
    elif ratio > max_overhead:
        failures.append(
            f"checkpoint overhead {ratio:.3f}x at "
            f"checkpoint_every={GATED_CHECKPOINT_CADENCE} exceeds {max_overhead:.2f}x: "
            "iteration-boundary snapshots got measurably more expensive"
        )
    return failures


def check_planner(
    artifact: dict,
    min_wcoj_speedup: float = MIN_WCOJ_SPEEDUP,
    max_cost_regression: float = MAX_COST_REGRESSION,
) -> list[str]:
    """Gate the join-planner baseline recorded in BENCH_planner."""
    triangle = artifact.get("triangle_wcoj") or {}
    if not triangle:
        return ["planner artifact has no triangle_wcoj section"]
    failures: list[str] = []

    binary = triangle.get("binary") or {}
    wcoj = triangle.get("wcoj") or {}
    if binary.get("triangle_count") != wcoj.get("triangle_count"):
        failures.append(
            f"wcoj triangle run produced |triangle|={wcoj.get('triangle_count')}, "
            f"binary produced {binary.get('triangle_count')} — the generic join "
            "changed the output"
        )
    if wcoj.get("head_algorithm") != "wcoj":
        failures.append(
            f"cost+wcoj run executed algorithm={wcoj.get('head_algorithm')!r} for "
            "the triangle rule — the planner stopped selecting the generic join "
            "on a binary-hostile cyclic workload"
        )
    blowup = triangle.get("intermediate_blowup")
    if blowup is None:
        failures.append("triangle_wcoj has no intermediate_blowup — nothing to gate")
    elif blowup < MIN_INTERMEDIATE_BLOWUP:
        failures.append(
            f"triangle workload's binary intermediate is only {blowup:.1f}x the "
            f"output (< {MIN_INTERMEDIATE_BLOWUP:.0f}x) — the instance is not "
            "binary-hostile enough for the speedup gate to mean anything"
        )
    speedup = triangle.get("wcoj_speedup")
    if speedup is None:
        failures.append("triangle_wcoj has no wcoj_speedup — nothing to gate")
    elif speedup < min_wcoj_speedup:
        failures.append(
            f"wcoj speedup {speedup:.2f}x over the binary plan fell below the "
            f"{min_wcoj_speedup:.2f}x floor: the generic join stopped paying for "
            "itself on the hub triangle workload"
        )

    no_regression = artifact.get("cost_no_regression") or {}
    if not no_regression:
        failures.append("planner artifact has no cost_no_regression section")
    for key, entry in sorted(no_regression.items()):
        ratio = entry.get("cost_vs_greedy")
        if ratio is None:
            failures.append(f"cost_no_regression[{key}] has no cost_vs_greedy ratio")
        elif ratio > max_cost_regression:
            failures.append(
                f"cost planner is {ratio:.3f}x the greedy simulated time on {key}, "
                f"above the {max_cost_regression:.2f}x ceiling: the cost-based "
                "ordering regressed a paper workload"
            )
    return failures


def check_serving(
    artifact: dict,
    min_speedup: float = MIN_SERVING_SPEEDUP,
    max_protection_overhead: float = MAX_SERVING_PROTECTION_OVERHEAD,
) -> list[str]:
    """Gate the incremental-serving epochs recorded in BENCH_serving."""
    workloads = artifact.get("workloads") or {}
    if not workloads:
        return ["serving artifact has no workloads section"]
    failures: list[str] = []
    for key, entry in sorted(workloads.items()):
        ratio = entry.get("delta_ratio")
        if ratio is None:
            failures.append(f"workloads[{key}] has no delta_ratio — nothing to gate")
            continue
        if ratio > MAX_SERVING_DELTA_RATIO:
            failures.append(
                f"workloads[{key}] trickles {ratio * 100:.2f}% of the EDB per epoch "
                f"(> {MAX_SERVING_DELTA_RATIO * 100:.0f}%) — the workload is not a "
                "trickle, so the epoch-speedup gate would be vacuous"
            )
        epochs = (entry.get("insert_epoch_simulated_seconds") or {}).get("samples") or []
        if not epochs:
            failures.append(f"workloads[{key}] recorded no insert epochs")
            continue
        speedup = entry.get("incremental_speedup")
        if speedup is None:
            failures.append(f"workloads[{key}] has no incremental_speedup")
        elif speedup < min_speedup:
            failures.append(
                f"serving epoch speedup {speedup:.2f}x on {key} fell below the "
                f"{min_speedup:.2f}x floor: the median insert epoch stopped being "
                "O(Δ)-shaped relative to a full re-fixpoint"
            )
    cache = artifact.get("program_cache") or {}
    misses = cache.get("misses")
    if misses is None:
        failures.append("serving artifact has no program_cache stats")
    elif misses > len(workloads):
        failures.append(
            f"program cache compiled {misses} times for {len(workloads)} programs — "
            "the compiled-program cache stopped deduplicating rule sets"
        )
    protection = artifact.get("protection_overhead")
    if protection is None:
        failures.append(
            "serving artifact has no protection_overhead section — the WAL + "
            "epoch-checkpoint cost went unmeasured"
        )
    else:
        overhead = protection.get("overhead_ratio")
        if overhead is None:
            failures.append("protection_overhead has no overhead_ratio")
        elif overhead > max_protection_overhead:
            failures.append(
                f"epoch-transactional serving costs {overhead:.3f}x the unprotected "
                f"trickle epoch, above the {max_protection_overhead:.2f}x ceiling: "
                "durability stopped being a small tax on the serving path"
            )
        protected = protection.get("protected") or {}
        unprotected = protection.get("unprotected") or {}
        if (
            protected.get("reach_count") is not None
            and protected.get("reach_count") != unprotected.get("reach_count")
        ):
            failures.append(
                "protected and unprotected serving runs diverged: "
                f"|reach|={protected.get('reach_count')} vs "
                f"{unprotected.get('reach_count')}"
            )
        if protected and not protected.get("wal_commits"):
            failures.append(
                "protected serving arm recorded no WAL commits — the overhead "
                "measurement did not exercise the durability path"
            )
    return failures


def run_gates(
    backend_artifact: dict | None,
    merge_artifact: dict | None,
    sharded_artifact: dict | None,
    robustness_artifact: dict | None = None,
    planner_artifact: dict | None = None,
    serving_artifact: dict | None = None,
    *,
    max_dispatch_ratio: float = MAX_DISPATCH_RATIO,
    min_merge_ratio: float = MIN_MERGE_RATIO,
    max_checkpoint_overhead: float = MAX_CHECKPOINT_OVERHEAD,
    max_filtered_exchange_ratio: float = MAX_FILTERED_EXCHANGE_RATIO,
    min_wcoj_speedup: float = MIN_WCOJ_SPEEDUP,
    max_cost_regression: float = MAX_COST_REGRESSION,
    min_serving_speedup: float = MIN_SERVING_SPEEDUP,
    max_serving_protection_overhead: float = MAX_SERVING_PROTECTION_OVERHEAD,
) -> list[str]:
    """Evaluate every gate whose artifact was supplied; returns all violations."""
    failures: list[str] = []
    if backend_artifact is not None:
        failures += check_dispatch_ratio(backend_artifact, max_dispatch_ratio)
    if merge_artifact is not None:
        failures += check_merge_ratio(merge_artifact, min_merge_ratio)
    if sharded_artifact is not None:
        failures += check_sharded(sharded_artifact, max_filtered_exchange_ratio)
    if robustness_artifact is not None:
        failures += check_robustness(robustness_artifact, max_checkpoint_overhead)
    if planner_artifact is not None:
        failures += check_planner(planner_artifact, min_wcoj_speedup, max_cost_regression)
    if serving_artifact is not None:
        failures += check_serving(
            serving_artifact, min_serving_speedup, max_serving_protection_overhead
        )
    return failures


def _load(path: Path | None) -> dict | None:
    if path is None:
        return None
    return json.loads(Path(path).read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend-json", type=Path, default=None, help="BENCH_backend artifact")
    parser.add_argument("--merge-json", type=Path, default=None, help="BENCH_relational artifact")
    parser.add_argument("--sharded-json", type=Path, default=None, help="BENCH_sharded artifact")
    parser.add_argument(
        "--robustness-json", type=Path, default=None, help="BENCH_robustness artifact"
    )
    parser.add_argument("--planner-json", type=Path, default=None, help="BENCH_planner artifact")
    parser.add_argument("--serving-json", type=Path, default=None, help="BENCH_serving artifact")
    parser.add_argument("--max-dispatch-ratio", type=float, default=MAX_DISPATCH_RATIO)
    parser.add_argument("--min-merge-ratio", type=float, default=MIN_MERGE_RATIO)
    parser.add_argument(
        "--max-checkpoint-overhead", type=float, default=MAX_CHECKPOINT_OVERHEAD
    )
    parser.add_argument(
        "--max-filtered-exchange-ratio", type=float, default=MAX_FILTERED_EXCHANGE_RATIO
    )
    parser.add_argument("--min-wcoj-speedup", type=float, default=MIN_WCOJ_SPEEDUP)
    parser.add_argument("--max-cost-regression", type=float, default=MAX_COST_REGRESSION)
    parser.add_argument("--min-serving-speedup", type=float, default=MIN_SERVING_SPEEDUP)
    parser.add_argument(
        "--max-serving-protection-overhead",
        type=float,
        default=MAX_SERVING_PROTECTION_OVERHEAD,
    )
    args = parser.parse_args(argv)
    if (
        args.backend_json is None
        and args.merge_json is None
        and args.sharded_json is None
        and args.robustness_json is None
        and args.planner_json is None
        and args.serving_json is None
    ):
        parser.error("supply at least one artifact to gate")

    failures = run_gates(
        _load(args.backend_json),
        _load(args.merge_json),
        _load(args.sharded_json),
        _load(args.robustness_json),
        _load(args.planner_json),
        _load(args.serving_json),
        max_dispatch_ratio=args.max_dispatch_ratio,
        min_merge_ratio=args.min_merge_ratio,
        max_checkpoint_overhead=args.max_checkpoint_overhead,
        max_filtered_exchange_ratio=args.max_filtered_exchange_ratio,
        min_wcoj_speedup=args.min_wcoj_speedup,
        max_cost_regression=args.max_cost_regression,
        min_serving_speedup=args.min_serving_speedup,
        max_serving_protection_overhead=args.max_serving_protection_overhead,
    )
    if failures:
        print("PERF REGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
