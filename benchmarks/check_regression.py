#!/usr/bin/env python
"""CI performance-regression gate over the recorded ``BENCH_*`` artifacts.

The bench-smoke job records quick baselines on its own runner and then runs
this script over them; any violated gate makes the script (and therefore the
job) exit non-zero.  The gates, all evaluated on same-machine recordings so
absolute wall-clock noise cancels out:

* **backend dispatch** — the numpy-backend SG fixpoint must stay within
  ``--max-dispatch-ratio`` (default 1.10) of the columnar-pipeline recording
  made moments earlier on the same runner; a bigger ratio means the
  ``ArrayBackend`` indirection started costing real time.
* **incremental merge** — the largest quick microbenchmark's
  rebuild/incremental speedup must stay above ``--min-merge-ratio`` (default
  1.8; the quick 40k shape measures ~3x, the floor is the noise-proof
  recalibration of the full-shape 3.0x gate).  A ratio collapsing toward
  1.0 means the O(Δ) merge path regressed to rebuild-class cost.
* **sharded exchange** — every ``num_shards > 1`` point of the sharded
  scaling curve must report non-zero interconnect traffic and the same
  output size as the single-device baseline; zero exchange bytes means the
  charged ``device_to_device`` boundary was silently bypassed.  On the same
  points, semi-join-filtered exchange bytes must stay at or below
  ``--max-filtered-exchange-ratio`` (default 0.7) of the recorded unfiltered
  ablation arm, and overlap efficiency must be positive — a ratio drifting
  toward 1.0 means the filters stopped pruning, a zero efficiency means the
  double-buffered schedule stopped hiding exchange time.
* **checkpoint overhead** — the SG fixpoint at ``checkpoint_every=50`` must
  stay within ``--max-checkpoint-overhead`` (default 1.10) of the
  checkpoint-free simulated time, actually take checkpoints, and produce
  identical output sizes at every cadence; a bigger ratio means the
  fault-tolerance insurance premium stopped being cheap.

Each gate is a pure function over the parsed artifact (returning a list of
violation messages) so the logic is unit-testable without touching the
filesystem; the CLI wires files to gates.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default ceiling for numpy-backend / columnar-pipeline dispatch overhead.
MAX_DISPATCH_RATIO = 1.10
#: Default floor for the quick incremental-merge speedup (largest |full|).
MIN_MERGE_RATIO = 1.8
#: Default ceiling for checkpoint_every=50 simulated time vs checkpoint-free.
MAX_CHECKPOINT_OVERHEAD = 1.10
#: The cadence the checkpoint-overhead gate pins (issue: <=10% at 50).
GATED_CHECKPOINT_CADENCE = 50
#: Default ceiling for filtered / unfiltered sharded exchange bytes.
MAX_FILTERED_EXCHANGE_RATIO = 0.7


def check_dispatch_ratio(artifact: dict, max_ratio: float = MAX_DISPATCH_RATIO) -> list[str]:
    """Gate the ArrayBackend dispatch overhead recorded in BENCH_backend."""
    sg = artifact.get("sg_two_join_fixpoint") or {}
    ratio = sg.get("numpy_vs_columnar_pipeline")
    if ratio is None:
        return [
            "backend artifact has no numpy_vs_columnar_pipeline ratio — "
            "was the columnar baseline recorded on this runner first?"
        ]
    if ratio > max_ratio:
        return [
            f"backend dispatch ratio {ratio:.3f} exceeds {max_ratio:.2f}: "
            "routing through ArrayBackend got measurably slower than the "
            "same-machine columnar recording"
        ]
    return []


def check_merge_ratio(artifact: dict, min_ratio: float = MIN_MERGE_RATIO) -> list[str]:
    """Gate the incremental-merge speedup recorded in BENCH_relational."""
    merges = artifact.get("single_merge") or []
    if not merges:
        return ["relational artifact has no single_merge entries"]
    largest = max(merges, key=lambda entry: entry.get("n_full", 0))
    speedup = largest.get("speedup")
    if speedup is None:
        return [f"single_merge entry for |full|={largest.get('n_full')} has no speedup"]
    if speedup < min_ratio:
        return [
            f"incremental merge speedup {speedup:.2f}x at |full|={largest['n_full']} "
            f"fell below the {min_ratio:.2f}x floor: the O(Δ) merge path regressed"
        ]
    return []


def check_sharded(
    artifact: dict, max_filtered_ratio: float = MAX_FILTERED_EXCHANGE_RATIO
) -> list[str]:
    """Gate the sharded scaling curve recorded in BENCH_sharded."""
    scaling = artifact.get("sg_sharded_scaling") or {}
    curve = scaling.get("curve") or []
    if not curve:
        return ["sharded artifact has no scaling curve"]
    failures: list[str] = []
    baseline = curve[0]
    if baseline.get("num_shards") != 1:
        failures.append("sharded curve must start at the num_shards=1 ablation baseline")
    for entry in curve:
        shards = entry.get("num_shards")
        if entry.get("sg_count") != baseline.get("sg_count"):
            failures.append(
                f"sharded run at N={shards} produced |sg|={entry.get('sg_count')}, "
                f"baseline produced {baseline.get('sg_count')}"
            )
        if shards and shards > 1 and not entry.get("exchange_bytes"):
            failures.append(
                f"sharded run at N={shards} reports zero exchange bytes — the "
                "charged device_to_device boundary was bypassed"
            )
        if not shards or shards <= 1:
            continue
        unfiltered = entry.get("unfiltered_exchange_bytes")
        if unfiltered is None:
            failures.append(
                f"sharded run at N={shards} has no unfiltered_exchange_bytes — "
                "the semi-join ablation arm was not recorded"
            )
        elif unfiltered and entry.get("exchange_bytes", 0) > max_filtered_ratio * unfiltered:
            ratio = entry.get("exchange_bytes", 0) / unfiltered
            failures.append(
                f"filtered exchange at N={shards} moved {ratio:.3f}x the unfiltered "
                f"bytes, above the {max_filtered_ratio:.2f}x ceiling: semi-join "
                "filtering stopped pruning the exchange volume"
            )
        efficiency = entry.get("overlap_efficiency")
        if efficiency is None:
            failures.append(
                f"sharded run at N={shards} has no overlap_efficiency — the "
                "overlap schedule was not recorded"
            )
        elif efficiency <= 0:
            failures.append(
                f"overlap efficiency at N={shards} is {efficiency} — the "
                "double-buffered exchange schedule hid no exchange time"
            )
    return failures


def check_robustness(
    artifact: dict, max_overhead: float = MAX_CHECKPOINT_OVERHEAD
) -> list[str]:
    """Gate the checkpoint-overhead curve recorded in BENCH_robustness."""
    sg = artifact.get("sg_checkpoint_overhead") or {}
    curve = sg.get("curve") or []
    if not curve:
        return ["robustness artifact has no sg_checkpoint_overhead curve"]
    failures: list[str] = []
    baseline = curve[0]
    if baseline.get("checkpoint_every") != 0:
        failures.append(
            "checkpoint-overhead curve must start at the checkpoint_every=0 baseline"
        )
    gated = None
    for entry in curve:
        cadence = entry.get("checkpoint_every")
        if entry.get("sg_count") != baseline.get("sg_count"):
            failures.append(
                f"checkpointed run at checkpoint_every={cadence} produced "
                f"|sg|={entry.get('sg_count')}, baseline produced {baseline.get('sg_count')}"
            )
        if cadence and not entry.get("checkpoints_taken"):
            failures.append(
                f"run at checkpoint_every={cadence} took no checkpoints — the "
                "snapshot path was silently skipped, so the overhead number is vacuous"
            )
        if cadence == GATED_CHECKPOINT_CADENCE:
            gated = entry
    if gated is None:
        failures.append(
            f"robustness curve has no checkpoint_every={GATED_CHECKPOINT_CADENCE} "
            "entry — nothing to gate"
        )
        return failures
    ratio = gated.get("overhead_vs_uncheckpointed")
    if ratio is None:
        failures.append(
            f"checkpoint_every={GATED_CHECKPOINT_CADENCE} entry has no "
            "overhead_vs_uncheckpointed ratio"
        )
    elif ratio > max_overhead:
        failures.append(
            f"checkpoint overhead {ratio:.3f}x at "
            f"checkpoint_every={GATED_CHECKPOINT_CADENCE} exceeds {max_overhead:.2f}x: "
            "iteration-boundary snapshots got measurably more expensive"
        )
    return failures


def run_gates(
    backend_artifact: dict | None,
    merge_artifact: dict | None,
    sharded_artifact: dict | None,
    robustness_artifact: dict | None = None,
    *,
    max_dispatch_ratio: float = MAX_DISPATCH_RATIO,
    min_merge_ratio: float = MIN_MERGE_RATIO,
    max_checkpoint_overhead: float = MAX_CHECKPOINT_OVERHEAD,
    max_filtered_exchange_ratio: float = MAX_FILTERED_EXCHANGE_RATIO,
) -> list[str]:
    """Evaluate every gate whose artifact was supplied; returns all violations."""
    failures: list[str] = []
    if backend_artifact is not None:
        failures += check_dispatch_ratio(backend_artifact, max_dispatch_ratio)
    if merge_artifact is not None:
        failures += check_merge_ratio(merge_artifact, min_merge_ratio)
    if sharded_artifact is not None:
        failures += check_sharded(sharded_artifact, max_filtered_exchange_ratio)
    if robustness_artifact is not None:
        failures += check_robustness(robustness_artifact, max_checkpoint_overhead)
    return failures


def _load(path: Path | None) -> dict | None:
    if path is None:
        return None
    return json.loads(Path(path).read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend-json", type=Path, default=None, help="BENCH_backend artifact")
    parser.add_argument("--merge-json", type=Path, default=None, help="BENCH_relational artifact")
    parser.add_argument("--sharded-json", type=Path, default=None, help="BENCH_sharded artifact")
    parser.add_argument(
        "--robustness-json", type=Path, default=None, help="BENCH_robustness artifact"
    )
    parser.add_argument("--max-dispatch-ratio", type=float, default=MAX_DISPATCH_RATIO)
    parser.add_argument("--min-merge-ratio", type=float, default=MIN_MERGE_RATIO)
    parser.add_argument(
        "--max-checkpoint-overhead", type=float, default=MAX_CHECKPOINT_OVERHEAD
    )
    parser.add_argument(
        "--max-filtered-exchange-ratio", type=float, default=MAX_FILTERED_EXCHANGE_RATIO
    )
    args = parser.parse_args(argv)
    if (
        args.backend_json is None
        and args.merge_json is None
        and args.sharded_json is None
        and args.robustness_json is None
    ):
        parser.error("supply at least one artifact to gate")

    failures = run_gates(
        _load(args.backend_json),
        _load(args.merge_json),
        _load(args.sharded_json),
        _load(args.robustness_json),
        max_dispatch_ratio=args.max_dispatch_ratio,
        min_merge_ratio=args.min_merge_ratio,
        max_checkpoint_overhead=args.max_checkpoint_overhead,
        max_filtered_exchange_ratio=args.max_filtered_exchange_ratio,
    )
    if failures:
        print("PERF REGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
