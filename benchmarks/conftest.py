"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper on the scaled
synthetic datasets ("bench" profile).  Expensive GPUlog runs and workload
traces are cached across benchmarks by :mod:`repro.experiments.runner`, so the
suite shares work where the paper's tables share underlying runs.  Benchmarks
are executed once (``rounds=1``): each regeneration is itself a long,
deterministic simulation, and the quantity of interest is the table content,
not the harness wall-clock variance.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once and return its result."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
