"""Benchmarks regenerating Tables 1-6 of the paper.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark prints the
regenerated table (visible with ``-s``) and asserts the directional claims the
paper makes about it; EXPERIMENTS.md records a full paper-vs-measured
comparison.
"""

from __future__ import annotations


from repro.experiments import (
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)


def _parse_seconds(cell: str) -> float:
    if cell in ("OOM", "n/a"):
        return float("inf")
    return float(cell)


def test_table1_eager_buffer_management(once):
    table = once(run_table1)
    print("\n" + table.format())
    for row in table.rows:
        normal_seconds, eager_seconds = float(row[3]), float(row[4])
        memory_ratio = float(row[8].rstrip("x"))
        assert eager_seconds <= normal_seconds, f"EBM slower on {row[0]}"
        assert memory_ratio >= 1.0


def test_table2_reach_engine_comparison(once):
    table = once(run_table2)
    print("\n" + table.format())
    oom_cells = 0
    for row in table.rows:
        gpulog = _parse_seconds(row[2])
        souffle = _parse_seconds(row[3])
        gpujoin = _parse_seconds(row[4])
        cudf = _parse_seconds(row[5])
        assert gpulog < souffle, f"GPUlog not faster than Souffle on {row[0]}"
        assert gpulog < gpujoin, f"GPUlog not faster than GPUJoin on {row[0]}"
        assert gpulog < cudf, f"GPUlog not faster than cuDF on {row[0]}"
        assert souffle / gpulog > 5, f"Souffle speedup too small on {row[0]}"
        oom_cells += int(row[4] == "OOM") + int(row[5] == "OOM")
    assert oom_cells >= 3, "expected several OOM cells as in the paper's Table 2"


def test_table3_sg_engine_comparison(once):
    table = once(run_table3)
    print("\n" + table.format())
    for row in table.rows:
        gpulog = _parse_seconds(row[2])
        hip = _parse_seconds(row[3])
        souffle = _parse_seconds(row[4])
        cudf = _parse_seconds(row[5])
        assert gpulog < hip < souffle, f"expected GPUlog < HIP < Souffle on {row[0]}"
        assert gpulog < cudf


def test_table4_cspa_speedup(once):
    table = once(run_table4)
    print("\n" + table.format())
    for row in table.rows:
        gpulog = _parse_seconds(row[6])
        souffle = _parse_seconds(row[7])
        speedup = souffle / gpulog
        assert speedup > 10, f"CSPA speedup {speedup:.1f}x too small on {row[0]}"


def test_table5_hardware_sweep(once):
    table = once(run_table5)
    print("\n" + table.format())
    for row in table.rows:
        h100, a100, mi250, mi50 = (float(cell) for cell in row[2:6])
        assert h100 <= a100 <= mi250 <= mi50, f"device ordering violated on {row[1]}"


def test_table6_microbenchmarks(once):
    table = once(run_table6)
    print("\n" + table.format())
    for row in table.rows:
        tuples = int(row[0].replace(",", ""))
        sort_ratio = float(row[3].rstrip("x"))
        merge_ratio = float(row[6].rstrip("x"))
        # The GPU wins at every size; at the smallest size (1M tuples) launch
        # overhead narrows the gap — the paper's own Table 6 shows the same
        # effect (merge: 0.03s vs 0.06s there).
        assert sort_ratio > 1.0 and merge_ratio > 1.0, f"GPU slower at {row[0]}"
        if tuples >= 10_000_000:
            assert sort_ratio > 3, f"GPU sort advantage too small at {row[0]}"
            assert merge_ratio > 2.5, f"GPU merge advantage too small at {row[0]}"
        if tuples >= 100_000_000:
            # At the largest sizes the bandwidth gap dominates completely.
            assert sort_ratio > 6, f"GPU sort advantage too small at {row[0]}"
            assert merge_ratio > 5, f"GPU merge advantage too small at {row[0]}"
